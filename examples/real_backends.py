#!/usr/bin/env python3
"""Run the parallel compiler on real OS threads and OS processes.

Every figure in the paper reproduction runs on the deterministic simulated cluster;
this example runs the *same* distributed protocol — same parser, evaluators, string
librarian, same messages — on the two real substrates and checks that all three agree
byte-for-byte on the generated code, printing wall-clock timings for each.

Run with::

    PYTHONPATH=src python examples/real_backends.py
"""

import multiprocessing

from repro.experiments.workload import default_workload

MACHINES = 4


def main() -> None:
    workload = default_workload()
    print(
        f"workload: {workload.source_lines} Pascal source lines, "
        f"{workload.statistics.node_count} parse-tree nodes, {MACHINES} machines"
    )

    backends = ["simulated", "threads"]
    if "fork" in multiprocessing.get_all_start_methods():
        backends.append("processes")
    else:
        print("(processes backend skipped: no fork start method on this platform)")

    reports = {}
    for backend in backends:
        reports[backend] = workload.compile_tree(MACHINES, backend=backend)

    print()
    header = f"{'backend':<10} {'workers':>7} {'evaluation':>12} {'wall total':>11} {'messages':>9}"
    print(header)
    print("-" * len(header))
    for backend, report in reports.items():
        unit = "s sim" if backend == "simulated" else "s wall"
        print(
            f"{backend:<10} {report.worker_count:>7} "
            f"{report.evaluation_time:>8.3f}{unit:<4} "
            f"{report.wall_time_seconds:>10.3f}s {report.network_messages:>9}"
        )

    reference = reports[backends[0]].code_text("code")
    agree = all(reports[b].code_text("code") == reference for b in backends[1:])
    print()
    print(f"generated code: {len(reference)} bytes, "
          f"{'byte-identical across all backends' if agree else 'MISMATCH BETWEEN BACKENDS'}")
    if not agree:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
