"""A loopback compile cluster that survives losing a worker mid-compile.

Starts the ``sockets`` substrate — evaluator workers as *separate host
processes* reached over TCP, exactly what ``python -m repro.cluster.worker
--connect HOST:PORT`` would join from another machine — and compiles the
paper-sized Pascal workload on a three-worker fleet.  Then it does it again,
this time SIGKILLing whichever worker is busiest halfway through: the
coordinator notices the dead connection, re-runs the orphaned regions on the
survivors (replaying their mailbox logs), suppresses any duplicate outputs, and
the compile finishes with **byte-identical** generated code.

The same substrate drives real multi-host fleets: construct
``SocketsSubstrate(manage_workers=False)``, print its ``address``, and start
workers by hand on any machines that can reach it.

Run with::

    PYTHONPATH=src python examples/compile_cluster.py
"""

from __future__ import annotations

import threading
import time

from repro import Session
from repro.backends.sockets import SocketsSubstrate
from repro.pascal import generate_program

MACHINES = 6
WORKERS = 3


def kill_one_busy_worker(pool: SocketsSubstrate, report: list) -> None:
    """Wait until some worker is evaluating regions, then kill its OS process."""
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        busy = pool.worker_ids(with_work=True)
        if busy and pool.kill_worker(busy[0]):
            report.append(busy[0])
            return
        time.sleep(0.01)


def main() -> int:
    source = generate_program(procedures=24, statements_per_procedure=6, seed=7)
    print(f"workload: {source.count(chr(10))} lines of Pascal, {MACHINES} machines")

    pool = SocketsSubstrate(workers=WORKERS, receive_timeout=120.0)
    try:
        pool.start()
        host, port = pool.address
        print(f"cluster up: {WORKERS} local workers on {host}:{port}")
        print("  (external machines would join with: "
              f"python -m repro.cluster.worker --connect {host}:{port})")

        with Session(substrate=pool) as session:
            compiler = session.compiler("pascal", machines=MACHINES)

            started = time.perf_counter()
            healthy = compiler.compile(source)
            print(f"\nhealthy compile: {time.perf_counter() - started:.2f}s wall, "
                  f"{healthy.report.decomposition.region_count} regions")

            killed: list = []
            assassin = threading.Thread(
                target=kill_one_busy_worker, args=(pool, killed), daemon=True
            )
            assassin.start()
            started = time.perf_counter()
            survivor = compiler.compile(source)
            assassin.join(timeout=30.0)
            print(f"compile under fire: {time.perf_counter() - started:.2f}s wall"
                  + (f", worker {killed[0]} SIGKILLed mid-evaluation" if killed
                     else " (workers finished before the assassin struck)"))

        identical = survivor.value == healthy.value
        print(f"\ngenerated code byte-identical after the kill: {identical}")
        print(pool.cluster_stats().summary())
        if not identical:
            return 1
    finally:
        pool.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
