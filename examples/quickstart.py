#!/usr/bin/env python3
"""Quickstart: the paper's appendix expression grammar, evaluated three ways.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CombinedEvaluator,
    DynamicEvaluator,
    StaticEvaluator,
    expression_grammar,
    parse_expression,
)
from repro.analysis.visit_sequences import build_evaluation_plan


def main() -> None:
    source = "let x = 3 in 1 + 2 * x ni"
    grammar = expression_grammar()
    print(grammar.summary())

    # Grammar-time analysis: the ordered-evaluation plan (visit sequences).
    plan = build_evaluation_plan(grammar)
    block_production = next(p for p in grammar.productions if p.label.startswith("block"))
    print()
    print(plan.sequences[block_production.index].describe(block_production))

    # Evaluate the appendix example with all three evaluators.
    print()
    for name, evaluator in (
        ("static  ", StaticEvaluator(grammar)),
        ("dynamic ", DynamicEvaluator(grammar)),
        ("combined", CombinedEvaluator(grammar)),
    ):
        tree = parse_expression(source, grammar)
        statistics = evaluator.evaluate(tree)
        print(
            f"{name} evaluator: {source!r} = {tree.get_attribute('value')} "
            f"({statistics.rules_evaluated} rules, "
            f"{statistics.dynamic_fraction * 100:.0f}% scheduled dynamically)"
        )


if __name__ == "__main__":
    main()
