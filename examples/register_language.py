#!/usr/bin/env python3
"""Register your own language: a toy workload through the front door.

The point of the :mod:`repro.api` registry is that a new workload needs *zero*
changes to ``repro`` internals: define an attribute grammar and a tokenizer, wrap
them in a :class:`~repro.GrammarLanguage`, register, and compile on any substrate —
simulated cluster, OS threads or forked OS processes — through the same
``Compiler``/``Session`` front door the built-in ``pascal`` and ``exprlang``
languages use.

The toy language here is ``sumlang``: a whitespace-separated list of integers whose
"compilation result" is their sum, with ``neg`` negating the number that follows
(``"1 2 neg 3"`` → 0).  The ``tail`` nonterminal is marked splittable, so long
inputs genuinely decompose across evaluator regions.

Run with::

    PYTHONPATH=src python examples/register_language.py
"""

from __future__ import annotations

import random

from repro import Compiler, GrammarBuilder, GrammarLanguage, Rule, Session, register_language
from repro.parsing import Lexer, TokenSpec


# Semantic functions live at module level so grammar bundles pickle cleanly for the
# pooled processes substrate (the same rule the built-in grammars follow).
def _to_int(text: str) -> int:
    return int(text)


def _neg_int(text: str) -> int:
    return -int(text)


def _add(left: int, right: int) -> int:
    return left + right


def sumlang_grammar():
    builder = GrammarBuilder("sumlang")
    builder.name_terminals("NUMBER", value_attribute="string")
    builder.keywords("NEG")
    builder.nonterminal("program", synthesized=["total"])
    builder.nonterminal("tail", synthesized=["total"], split=True, min_split_size=40)
    builder.nonterminal("item", synthesized=["amount"])
    builder.production(
        "program -> tail",
        Rule("$$.total", ["$1.total"]),
    )
    builder.production(
        "tail -> item",
        Rule("$$.total", ["$1.amount"]),
    )
    builder.production(
        "tail -> tail item",
        Rule("$$.total", ["$1.total", "$2.amount"], _add, name="add"),
    )
    builder.production(
        "item -> NUMBER",
        Rule("$$.amount", ["$1.string"], _to_int, name="to_int"),
    )
    builder.production(
        "item -> NEG NUMBER",
        Rule("$$.amount", ["$2.string"], _neg_int, name="neg_int"),
    )
    return builder.build(start="program")


_TOKENS = [
    TokenSpec("whitespace", r"[ \t\r\n]+", skip=True),
    TokenSpec("NEG", r"neg\b"),
    TokenSpec("NUMBER", r"[0-9]+"),
]


def tokenize_sumlang(source: str):
    return Lexer(_TOKENS).tokenize(source)


def main() -> None:
    language = register_language(
        GrammarLanguage(
            "sumlang",
            sumlang_grammar,
            tokenize=tokenize_sumlang,
            result_attribute="total",
            error_attribute=None,
        ),
        replace=True,  # keep the example re-runnable in one process
    )
    print(f"registered {language.name!r}")

    rng = random.Random(7)
    numbers = [rng.randint(-50, 50) for _ in range(400)]
    source = " ".join(
        f"neg {abs(value)}" if value < 0 else str(value) for value in numbers
    )
    expected = sum(numbers)

    # One-shot on the simulated cluster (deterministic modelled timings).
    result = Compiler("sumlang", machines=4).compile(source)
    print(
        f"simulated: total={result.value} over {result.report.decomposition.region_count} "
        f"regions — {result.summary()}"
    )
    assert result.value == expected, (result.value, expected)

    # The same language on a persistent threads pool via the Session front door.
    with Session(backend="threads", machines=4) as session:
        pooled = session.compile("sumlang", source)
        print(f"threads pool: total={pooled.value} — {pooled.summary()}")
        assert pooled.value == expected

    print("sumlang compiled identically on both substrates, no repro internals touched")


if __name__ == "__main__":
    main()
