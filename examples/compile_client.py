"""An editing client for the HTTP compile server, speaking pure stdlib HTTP.

Drives a running ``repro.server`` instance end to end, exactly as an editor
integration would:

1. one-shot compile of an expression-language source (``POST /compile``);
2. a burst of *identical* Pascal compiles from worker threads — the server
   coalesces them into one underlying compilation and every client receives
   byte-identical bytes;
3. a server-held editing session (``POST /documents``): open a paper-sized
   Pascal program, recompile cold, splice in a one-character edit, recompile
   warm — and print how many regions the incremental engine reused;
4. deadline propagation: a compile carrying an ``X-Repro-Deadline-Ms`` budget
   of zero must come back as a clean ``504 Gateway Timeout``, and a generous
   budget must not change the answer;
5. the ``/stats`` snapshot: service counters, admission, coalescing, documents.

Every costly request goes through a :class:`repro.resilience.RetryPolicy` loop
that honors the server's ``Retry-After`` hint on ``429`` — the client-side half
of the admission contract.

Start a server first (any port; ``--port 0`` prints the one it picked)::

    PYTHONPATH=src python -m repro.server --port 8765

then run this client against it::

    PYTHONPATH=src python examples/compile_client.py --port 8765

Exits non-zero if any step misbehaves, so CI can use it as a smoke test.
"""

from __future__ import annotations

import argparse
import http.client
import json
import re
import sys
import threading
import time

DEFAULT_BURST = 24

EXPR_SOURCE = "let x = 3 in 1 + 2 * x ni"


def request(host, port, method, path, payload=None, timeout=30.0, headers=None):
    """One request on a fresh connection; returns (status, body_dict, headers)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        send_headers = dict(headers or {})
        if body:
            send_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body=body, headers=send_headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw), dict(response.getheaders()), raw
    finally:
        conn.close()


def retrying_request(host, port, method, path, payload=None, *,
                     policy=None, deadline_ms=None, timeout=30.0):
    """``request`` under a RetryPolicy that honors the server's Retry-After.

    A ``429`` means the server refused on purpose and told us when to come
    back: wait the *larger* of the hint and the policy's own backoff for this
    attempt, then try again, up to ``policy.max_attempts``.  Any other status is
    the answer — retrying a 4xx/5xx that is not an admission refusal would just
    repeat it.
    """
    from repro.resilience import RetryPolicy

    policy = policy or RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=5.0)
    headers = {}
    if deadline_ms is not None:
        headers["X-Repro-Deadline-Ms"] = str(deadline_ms)
    outcome = None
    for attempt in policy.attempts():
        outcome = request(host, port, method, path, payload,
                          timeout=timeout, headers=headers)
        status, _, response_headers, _ = outcome
        if status != 429 or attempt >= policy.max_attempts:
            return outcome
        hint = float(response_headers.get("Retry-After", 0) or 0)
        time.sleep(min(max(hint, policy.delay(attempt)), policy.max_delay))
    return outcome


def wait_for_server(host, port, attempts=50, delay=0.1):
    for _ in range(attempts):
        try:
            status, body, _, _ = request(host, port, "GET", "/healthz", timeout=2.0)
            if status == 200 and body.get("status") == "ok":
                return
        except OSError:
            pass
        time.sleep(delay)
    raise SystemExit(f"no compile server answering on {host}:{port}")


def one_shot(host, port):
    status, body, headers, _ = retrying_request(
        host, port, "POST", "/compile",
        {"language": "exprlang", "source": EXPR_SOURCE},
    )
    assert status == 200 and body["ok"], body
    print(f"one-shot exprlang: value={body['value']} "
          f"({body['wall_compile_ms']:.2f} ms compile, "
          f"coalesced={headers['X-Repro-Coalesced']})")
    assert body["value"] == 7


def coalescing_burst(host, port, burst):
    from repro.pascal.programs import generate_program

    source = generate_program(procedures=4, statements_per_procedure=3, seed=3)
    payload = {"language": "pascal", "source": source, "machines": 4}
    outcomes = [None] * burst
    barrier = threading.Barrier(burst)

    def submit(index):
        barrier.wait()
        outcomes[index] = retrying_request(host, port, "POST", "/compile", payload)

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    statuses = [status for status, _, _, _ in outcomes]
    assert statuses == [200] * burst, statuses
    distinct_bodies = {raw for _, _, _, raw in outcomes}
    roles = [headers["X-Repro-Coalesced"] for _, _, headers, _ in outcomes]
    leaders = roles.count("leader")
    print(f"coalescing burst: {burst} identical submissions -> "
          f"{leaders} compile(s), {burst - leaders} coalesced, "
          f"{len(distinct_bodies)} distinct response body (byte-identical)")
    assert len(distinct_bodies) == 1, "coalesced waiters diverged"
    assert leaders == 1, roles


def editing_session(host, port):
    from repro.pascal.programs import generate_program

    source = generate_program(procedures=6, statements_per_procedure=3, seed=11)
    status, body, _, _ = request(
        host, port, "POST", "/documents",
        {"language": "pascal", "source": source, "machines": 4},
    )
    assert status == 201, body
    sid = body["document"]
    print(f"opened document {sid} ({body['chars']} chars, "
          f"idle ttl {body['idle_ttl']:.0f}s)")

    status, cold, _, _ = retrying_request(
        host, port, "POST", f"/documents/{sid}/recompile"
    )
    assert status == 200 and cold["ok"], cold
    inc = cold["incremental"]
    print(f"  cold recompile: {inc['regions_evaluated']}/{inc['regions_total']} "
          f"regions evaluated ({inc['frontend']} front end, "
          f"{cold['wall_compile_ms']:.2f} ms)")

    match = list(re.finditer(r":= (\d)[;\n]", source))[-1]
    replacement = "9" if match.group(1) != "9" else "8"
    status, body, _, _ = request(
        host, port, "POST", f"/documents/{sid}/edit",
        {"edits": [[match.start(1), match.end(1), replacement]]},
    )
    assert status == 200, body

    status, warm, _, _ = retrying_request(
        host, port, "POST", f"/documents/{sid}/recompile"
    )
    assert status == 200 and warm["ok"], warm
    inc = warm["incremental"]
    print(f"  warm recompile after a 1-char edit: "
          f"{inc['regions_reused']}/{inc['regions_total']} regions reused "
          f"({inc['frontend']} front end, {warm['wall_compile_ms']:.2f} ms)")
    assert warm["value"] != cold["value"], "the edit should change the output"

    status, body, _, _ = request(host, port, "DELETE", f"/documents/{sid}")
    assert status == 200 and body["closed"], body


def deadline_demo(host, port):
    # A fresh source (never compiled above), so the zero-budget request cannot
    # be served out of the coalescer's cache of completed answers.
    source = "let y = 5 in y * y + 1 ni"
    status, body, _, _ = request(
        host, port, "POST", "/compile",
        {"language": "exprlang", "source": source},
        headers={"X-Repro-Deadline-Ms": "0"},
    )
    assert status == 504, (status, body)
    print(f"deadline: 0 ms budget -> 504 ({body['error']})")
    status, body, _, _ = retrying_request(
        host, port, "POST", "/compile",
        {"language": "exprlang", "source": source},
        deadline_ms=30_000,
    )
    assert status == 200 and body["value"] == 26, (status, body)
    print(f"deadline: 30 s budget -> 200, value={body['value']}")


def show_stats(host, port):
    status, stats, _, _ = request(host, port, "GET", "/stats")
    assert status == 200
    service = stats["service"]
    print("server stats:")
    print(f"  service:    {service['jobs_completed']} completed, "
          f"{service['jobs_coalesced']} coalesced, "
          f"{service['jobs_queued']} queued, "
          f"{service['jobs_rejected']} rejected "
          f"(p50 {service['latency_p50'] * 1000:.2f} ms)")
    print(f"  admission:  {stats['admission']['admitted']} admitted, "
          f"peak pending {stats['admission']['peak_pending']}")
    print(f"  coalescing: {stats['coalescing']['leaders']} leaders, "
          f"{stats['coalescing']['coalesced']} coalesced "
          f"({stats['coalescing']['cached_results']} results cached)")
    print(f"  documents:  {stats['documents']['opened']} opened, "
          f"{stats['documents']['live']} live, "
          f"{stats['documents']['evicted']} evicted")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--burst", type=int, default=DEFAULT_BURST,
                        help="identical submissions in the coalescing burst")
    args = parser.parse_args(argv)

    wait_for_server(args.host, args.port)
    one_shot(args.host, args.port)
    coalescing_burst(args.host, args.port, args.burst)
    editing_session(args.host, args.port)
    deadline_demo(args.host, args.port)
    show_stats(args.host, args.port)
    print("all client checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
