#!/usr/bin/env python3
"""Compile Pascal programs to VAX-style assembly, sequentially and in parallel.

Run with::

    python examples/pascal_compiler.py
"""

from repro import Compiler
from repro.pascal import PascalCompiler, SAMPLE_PROGRAMS


def main() -> None:
    compiler = PascalCompiler()

    # Sequential compilation of a small sample with the static (ordered) evaluator.
    result = compiler.compile(SAMPLE_PROGRAMS["factorial"], evaluator="static")
    print("=== factorial.p (static evaluator) ===")
    print(f"errors: {result.errors or 'none'}")
    print("\n".join(result.code.splitlines()[:25]))
    print(f"... ({result.code.count(chr(10))} lines of assembly in total)")

    # Semantic errors are collected in the root 'errs' attribute, as in the paper.
    broken = "program broken; var x: integer; begin x := true; y := 1 end."
    diagnostics = compiler.compile(broken, evaluator="static")
    print("\n=== diagnostics for a broken program ===")
    for message in diagnostics.errors:
        print(f"  error: {message}")

    # Parallel compilation of the sorting sample on a simulated 4-machine cluster,
    # through the front door (the 'pascal' language is registered at import).
    result = Compiler("pascal", machines=4).compile(SAMPLE_PROGRAMS["sorting"])
    print("\n=== sorting.p on 4 simulated machines ===")
    print(result.report.summary())


if __name__ == "__main__":
    main()
