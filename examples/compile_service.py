"""One pooled compilation service, a mixed Pascal + expression-language workload.

Opens a single :class:`repro.Session` on a persistent worker pool, pushes a
heterogeneous ``(language, source)`` job stream through its
:class:`~repro.service.CompilationService` (Pascal programs and expression-language
sources interleaved on the same long-lived workers), and compares sustained
compiles/sec against the ephemeral baseline that builds and tears down a backend
for every compilation.

On the ``processes`` substrate the difference is dramatic: the ephemeral path forks
a fresh set of OS processes per compilation, while the pool forks once, ships each
language's grammar bundle to each worker once (keyed by registry name), and then
streams jobs to warm workers — and because forked workers evaluate without a shared
GIL, in-flight jobs genuinely overlap.  (Falls back to ``threads`` on platforms
without ``fork``.)

Run with::

    PYTHONPATH=src python examples/compile_service.py
"""

from __future__ import annotations

import multiprocessing
import time

from repro import CompilationJob, Session, get_language
from repro.exprlang import random_expression_source
from repro.pascal import generate_program


def pick_backend() -> str:
    return (
        "processes"
        if "fork" in multiprocessing.get_all_start_methods()
        else "threads"
    )


def build_workload():
    """A mixed stream of small compilations: 24 expression + 6 Pascal jobs."""
    jobs = [
        CompilationJob(
            language="exprlang",
            source=random_expression_source(16, seed=seed, nesting=5),
            machines=4,
            label=f"expr-{seed}",
        )
        for seed in range(24)
    ]
    for seed in range(6):
        jobs.append(
            CompilationJob(
                language="pascal",
                source=generate_program(
                    procedures=2, statements_per_procedure=2, seed=seed
                ),
                machines=4,
                label=f"pascal-{seed}",
            )
        )
    return jobs


def ephemeral_baseline(jobs, backend: str) -> float:
    """Compile the stream serially, one fresh backend (spawn + teardown) per job."""
    started = time.perf_counter()
    for job in jobs:
        engine, tree = job.resolve()
        engine.compile_tree(tree, job.machines, backend=backend)
    elapsed = time.perf_counter() - started
    return len(jobs) / elapsed


def pooled_serial(jobs, backend: str) -> float:
    """The same stream, same serial order, on one persistent pool."""
    with Session(backend=backend) as session:
        job = jobs[0]  # warm the pool (fork workers, ship grammar bundles)
        engine, tree = job.resolve()
        engine.compile_tree(tree, job.machines, substrate=session.substrate)
        started = time.perf_counter()
        for job in jobs:
            engine, tree = job.resolve()
            engine.compile_tree(tree, job.machines, substrate=session.substrate)
        elapsed = time.perf_counter() - started
    return len(jobs) / elapsed


def pooled_service(jobs, backend: str) -> float:
    """The stream through one pooled service, four jobs in flight."""
    with Session(backend=backend) as session:
        with session.service(max_in_flight=4) as service:
            service.compile_many(jobs[:4])  # warm the pool before timing
            started = time.perf_counter()
            reports = service.compile_many(jobs)
            elapsed = time.perf_counter() - started
            print(f"  {service.stats().summary()}")
            kinds = {}
            for job, report in zip(jobs, reports):
                kind = job.label.split("-")[0]
                kinds[kind] = kinds.get(kind, 0) + 1
            mix = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
            print(f"  job mix on one pool: {mix}")
            # Every report still carries its language's payload:
            value = get_language("exprlang").result(reports[0])
            code = get_language("pascal").result(reports[-1])
            print(f"  spot check: expr-0 = {value}, pascal-5 emitted {len(code)} bytes")
    return len(jobs) / elapsed


def main() -> None:
    backend = pick_backend()
    jobs = build_workload()
    print(
        f"workload: {len(jobs)} compilations (Pascal + exprlang), "
        f"4 machines each, {backend} substrate"
    )

    print("\nephemeral baseline (fresh backend per compile):")
    baseline = ephemeral_baseline(jobs, backend)
    print(f"  {baseline:.1f} compiles/s")

    print("\npooled substrate (persistent workers, same serial order):")
    serial = pooled_serial(jobs, backend)
    print(f"  {serial:.1f} compiles/s")

    print("\npooled service (one persistent pool, 4 in flight):")
    concurrent = pooled_service(jobs, backend)
    print(f"  {concurrent:.1f} compiles/s")

    print(
        f"\npooled-serial/ephemeral: {serial / baseline:.2f}x, "
        f"service/ephemeral: {concurrent / baseline:.2f}x"
    )


if __name__ == "__main__":
    main()
