"""One pooled compilation service, a mixed Pascal + expression-language workload.

Spins up a single :class:`repro.service.CompilationService` on a persistent worker
pool, pushes a heterogeneous job stream through it concurrently (Pascal programs and
expression-language trees interleaved on the same long-lived workers), and compares
sustained compiles/sec against the ephemeral baseline that builds and tears down a
backend for every compilation.

On the ``processes`` substrate the difference is dramatic: the ephemeral path forks a
fresh set of OS processes per compilation, while the pool forks once, ships each
grammar bundle to each worker once, and then streams jobs to warm workers — and
because forked workers evaluate without a shared GIL, in-flight jobs genuinely
overlap.  (Falls back to ``threads`` on platforms without ``fork``.)

Run with::

    PYTHONPATH=src python examples/compile_service.py
"""

from __future__ import annotations

import multiprocessing
import time

from repro import CompilationJob, CompilationService, ParallelCompiler, create_substrate
from repro.exprlang import parse_expression, random_expression_source
from repro.exprlang.grammar import expression_grammar
from repro.pascal import PascalCompiler, generate_program


def pick_backend() -> str:
    return (
        "processes"
        if "fork" in multiprocessing.get_all_start_methods()
        else "threads"
    )


def build_workload():
    """A mixed stream of small compilations: 24 expression + 6 Pascal jobs."""
    grammar = expression_grammar(min_split_size=8)
    expr_compiler = ParallelCompiler(grammar)
    jobs = [
        CompilationJob(
            expr_compiler,
            tree=parse_expression(
                random_expression_source(16, seed=seed, nesting=5), grammar
            ),
            machines=4,
            label=f"expr-{seed}",
        )
        for seed in range(24)
    ]
    pascal = PascalCompiler()
    pascal_compiler = ParallelCompiler(pascal.grammar, plan=pascal.plan)
    for seed in range(6):
        source = generate_program(procedures=2, statements_per_procedure=2, seed=seed)
        jobs.append(
            CompilationJob(
                pascal_compiler,
                tree=pascal.parse(source),
                machines=4,
                label=f"pascal-{seed}",
            )
        )
    return jobs


def ephemeral_baseline(jobs, backend: str) -> float:
    """Compile the stream serially, one fresh backend (spawn + teardown) per job."""
    started = time.perf_counter()
    for job in jobs:
        job.compiler.compile_tree(job.resolve_tree(), job.machines, backend=backend)
    elapsed = time.perf_counter() - started
    return len(jobs) / elapsed


def pooled_serial(jobs, backend: str) -> float:
    """The same stream, same serial order, on one persistent pool."""
    with create_substrate(backend) as pool:
        job = jobs[0]  # warm the pool (fork workers, ship grammar bundles)
        job.compiler.compile_tree(job.resolve_tree(), job.machines, substrate=pool)
        started = time.perf_counter()
        for job in jobs:
            job.compiler.compile_tree(job.resolve_tree(), job.machines, substrate=pool)
        elapsed = time.perf_counter() - started
    return len(jobs) / elapsed


def pooled_service(jobs, backend: str) -> float:
    """The stream through one pooled service, four jobs in flight."""
    with CompilationService(backend, max_in_flight=4) as service:
        service.compile_many(jobs[:4])  # warm the pool before timing
        started = time.perf_counter()
        reports = service.compile_many(jobs)
        elapsed = time.perf_counter() - started
        print(f"  {service.stats().summary()}")
        kinds = {}
        for job, report in zip(jobs, reports):
            kind = job.label.split("-")[0]
            kinds[kind] = kinds.get(kind, 0) + 1
        mix = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        print(f"  job mix on one pool: {mix}")
    return len(jobs) / elapsed


def main() -> None:
    backend = pick_backend()
    jobs = build_workload()
    print(
        f"workload: {len(jobs)} compilations (Pascal + exprlang), "
        f"4 machines each, {backend} substrate"
    )

    print("\nephemeral baseline (fresh backend per compile):")
    baseline = ephemeral_baseline(jobs, backend)
    print(f"  {baseline:.1f} compiles/s")

    print("\npooled substrate (persistent workers, same serial order):")
    serial = pooled_serial(jobs, backend)
    print(f"  {serial:.1f} compiles/s")

    print("\npooled service (one persistent pool, 4 in flight):")
    concurrent = pooled_service(jobs, backend)
    print(f"  {concurrent:.1f} compiles/s")

    print(
        f"\npooled-serial/ephemeral: {serial / baseline:.2f}x, "
        f"service/ephemeral: {concurrent / baseline:.2f}x"
    )


if __name__ == "__main__":
    main()
