"""Incremental recompilation: an editor keystroke stream over one document.

Opens a Pascal document on a pooled substrate, then simulates a short editing
session — typing a statement into one procedure a few keystrokes at a time, with
a recompile after every "pause" — and prints what each recompile actually did:
which regions were dirty, how many were replayed from the content-addressed
artifact cache, and how the front end obtained the tree (token splice + subtree
reparse vs full parse).

Run with:
    PYTHONPATH=src python examples/incremental_editing.py
"""

from __future__ import annotations

import time

from repro import Session
from repro.pascal.programs import generate_program

SOURCE = generate_program(procedures=16, statements_per_procedure=5, seed=4)

#: The keystroke stream: a statement typed into the main program body in bursts
#: (each burst is what lands between two recompiles — think debounced editor).
#: Mid-typing states are usually not parseable yet; the loop below keeps the last
#: good build, exactly as an IDE would.
BURSTS = ["\n  g1 :", "= g1", " + 40", " div 2;"]


def main() -> None:
    # Insert right after the final "begin" of the main program body.
    insert_at = SOURCE.rindex("begin") + len("begin")

    with Session(backend="threads", machines=6) as session:
        doc = session.open("pascal", SOURCE, machines=6)

        started = time.perf_counter()
        cold = doc.recompile()
        cold_ms = (time.perf_counter() - started) * 1000
        print(f"cold build: {cold_ms:7.1f}ms  {cold.incremental.summary()}")

        from repro.parsing.parser import ParseError

        position = insert_at
        result = cold
        for burst in BURSTS:
            doc.insert(position, burst)
            position += len(burst)
            started = time.perf_counter()
            try:
                result = doc.recompile()
            except ParseError as error:
                # Mid-keystroke states are often not yet parseable — a real editor
                # keeps the last good build and waits for more input.
                warm_ms = (time.perf_counter() - started) * 1000
                print(f"typed {burst!r:12} {warm_ms:7.1f}ms  [syntax error, kept last build: {error}]")
                continue
            warm_ms = (time.perf_counter() - started) * 1000
            ok = "ok" if result.ok else f"{len(result.errors)} error(s)"
            print(f"typed {burst!r:12} {warm_ms:7.1f}ms  [{ok}]  {result.incremental.summary()}")

        # The mid-burst states above were syntactically valid but the stream as a
        # whole changed generated code: prove the final state matches a cold build.
        from repro import Compiler

        reference = Compiler("pascal", machines=6, backend="threads").compile(doc.text)
        assert result.value == reference.value, "incremental result != cold compile"
        assert result.errors == reference.errors
        print("final recompile is byte-identical to a cold compile of the edited text")

        grew = len(result.value.splitlines()) - len(cold.value.splitlines())
        print(f"generated code grew by {grew} instruction line(s) from the typed statement")


if __name__ == "__main__":
    main()
