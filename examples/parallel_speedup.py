#!/usr/bin/env python3
"""Reproduce the paper's headline experiment interactively (Figure 5, 6 and 7).

Compiles a synthetic ~1100-line, 46-procedure Pascal program on 1..6 simulated
workstations with both the parallel dynamic and the parallel combined evaluators,
prints the running-time table, the 5-machine activity timeline, and the source
program decomposition.

Run with::

    python examples/parallel_speedup.py
"""

from repro.experiments import (
    default_workload,
    run_figure5,
    run_figure6,
    run_figure7,
    run_dynamic_fraction,
)


def main() -> None:
    workload = default_workload()
    print(
        f"workload: {workload.source_lines} source lines, "
        f"{workload.statistics.node_count} parse-tree nodes"
    )

    print()
    print(run_figure5(workload).describe())

    print()
    print(run_figure6(workload, machines=5).ascii_timeline())

    print()
    print(run_figure7(workload, machines=5).describe())

    print()
    print(run_dynamic_fraction(workload).describe())


if __name__ == "__main__":
    main()
