#!/usr/bin/env python3
"""Define a new translator from scratch with the textual grammar format.

The paper argues that attribute grammars cover "a wide variety of language translation
problems ... text formatting, proof checking etc."; this example builds a tiny
report-formatting language (sections, bullet items) whose translation target is plain
text with numbered headings — a miniature text formatter — and evaluates documents both
sequentially and with the combined evaluator.

Run with::

    python examples/custom_translator.py
"""

from repro import CombinedEvaluator, StaticEvaluator, parse_grammar_spec
from repro.parsing.lexer import Lexer, TokenSpec
from repro.parsing.parser import Parser

SPEC = """
%name TEXT
%keyword SECTION ITEM END
%nosplit document syn(output)
%split 40 section syn(output) inh(number)
%nosplit sections syn(output) inh(number)
%nosplit items syn(output) inh(prefix)
%nosplit item syn(output) inh(prefix)
%start document
%%
document : sections
    $1.number = one()
    $$.output = $1.output
;
sections : sections section
    $1.number = $$.number
    $2.number = next_number($$.number, $1.output)
    $$.output = concat($1.output, $2.output)
;
sections : section
    $1.number = $$.number
    $$.output = $1.output
;
section : SECTION TEXT items END
    $3.prefix = bullet_prefix($$.number)
    $$.output = format_section($$.number, $2.string, $3.output)
;
items : items item
    $1.prefix = $$.prefix
    $2.prefix = $$.prefix
    $$.output = concat($1.output, $2.output)
;
items : item
    $1.prefix = $$.prefix
    $$.output = $1.output
;
item : ITEM TEXT
    $$.output = format_item($$.prefix, $2.string)
;
"""

ENVIRONMENT = {
    "one": lambda: 1,
    "next_number": lambda number, earlier: number + earlier.count("\n== "),
    "concat": lambda left, right: left + right,
    "bullet_prefix": lambda number: f"  {number}.",
    "format_section": lambda number, title, body: f"\n== {number}. {title.strip()} ==\n{body}",
    "format_item": lambda prefix, text: f"{prefix} {text.strip()}\n",
}

DOCUMENT = """
section "Motivation"
  item "compilation is slow"
  item "workstations are idle"
end
section "Approach"
  item "express translation as attribute evaluation"
  item "split the tree at grammar-designated nonterminals"
  item "combine static and dynamic evaluation"
end
section "Results"
  item "speedup of about four on five machines"
end
"""

TOKENS = [
    TokenSpec("whitespace", r"[ \t\r\n]+", skip=True),
    TokenSpec("TEXT", r'"[^"]*"'),
    TokenSpec("IDENTIFIER", r"[A-Za-z_]+"),
]
KEYWORDS = {"section": "SECTION", "item": "ITEM", "end": "END"}


def main() -> None:
    grammar = parse_grammar_spec(SPEC, environment=ENVIRONMENT, name="report-formatter")
    print(grammar.summary())

    lexer = Lexer(TOKENS, keywords=KEYWORDS)
    tokens = [
        token if token.kind != "TEXT" else type(token)(
            token.kind, token.text.strip('"'), token.line, token.column
        )
        for token in lexer.tokenize(DOCUMENT)
    ]
    tree = Parser(grammar).parse(tokens)

    StaticEvaluator(grammar).evaluate(tree)
    formatted_static = tree.get_attribute("output")

    tree2 = Parser(grammar).parse(tokens)
    CombinedEvaluator(grammar).evaluate(tree2)
    assert tree2.get_attribute("output") == formatted_static

    print(formatted_static)


if __name__ == "__main__":
    main()
