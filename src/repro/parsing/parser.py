"""The LALR(1) parse-table driver.

Builds :class:`repro.tree.node.ParseTreeNode` trees whose interior nodes reference the
grammar's :class:`~repro.grammar.productions.Production` objects, so the resulting tree
can be handed directly to any of the attribute evaluators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.grammar.grammar import AttributeGrammar
from repro.grammar.symbols import Terminal
from repro.parsing.lalr import EOF, Action, LALRTable, build_lalr_table
from repro.parsing.lexer import Token
from repro.tree.node import ParseTreeNode, make_node, make_terminal


class ParseError(Exception):
    """Raised when the token stream is not derivable from the grammar."""

    def __init__(self, message: str, token: Optional[Token] = None,
                 expected: Optional[Sequence[str]] = None):
        location = ""
        if token is not None:
            location = f" at line {token.line}, column {token.column}"
        expectation = ""
        if expected:
            shown = ", ".join(sorted(expected)[:8])
            expectation = f" (expected one of: {shown})"
        super().__init__(f"{message}{location}{expectation}")
        self.token = token
        self.expected = list(expected or [])


class Parser:
    """LALR(1) parser for an attribute grammar's context-free backbone.

    The table is built once per parser instance; reuse the parser across compilations
    (the paper's generator likewise builds the parser once from the grammar).
    """

    def __init__(self, grammar: AttributeGrammar, table: Optional[LALRTable] = None):
        self.grammar = grammar
        self.table = table or build_lalr_table(grammar)

    def parse(self, tokens: Sequence[Token]) -> ParseTreeNode:
        """Parse a token stream (no EOF token required) into a parse tree."""
        action_table = self.table.action
        goto_table = self.table.goto
        state_stack: List[int] = [0]
        node_stack: List[ParseTreeNode] = []

        stream = list(tokens) + [Token(EOF, "", _end_line(tokens), 0)]
        position = 0
        while True:
            state = state_stack[-1]
            token = stream[position]
            entry = action_table[state].get(token.kind)
            if entry is None:
                raise ParseError(
                    f"unexpected token {token.kind!r} ({token.text!r})",
                    token,
                    expected=list(action_table[state]),
                )
            if entry.kind == "shift":
                terminal = self._terminal(token.kind)
                node_stack.append(make_terminal(terminal, token.text))
                state_stack.append(entry.target)
                position += 1
                continue
            if entry.kind == "reduce":
                production = self.grammar.productions[entry.target]
                arity = len(production.rhs)
                children = node_stack[len(node_stack) - arity :] if arity else []
                del node_stack[len(node_stack) - arity :]
                del state_stack[len(state_stack) - arity :]
                node = make_node(production, list(children))
                node_stack.append(node)
                goto_state = goto_table[state_stack[-1]].get(production.lhs.name)
                if goto_state is None:
                    raise ParseError(
                        f"internal parser error: no GOTO for {production.lhs.name!r}",
                        token,
                    )
                state_stack.append(goto_state)
                continue
            # accept
            if len(node_stack) != 1:
                raise ParseError("internal parser error: accept with non-unit stack")
            return node_stack[0]

    def _terminal(self, name: str) -> Terminal:
        terminal = self.grammar.terminals.get(name)
        if terminal is None:
            raise ParseError(f"token kind {name!r} is not a grammar terminal")
        return terminal


def _end_line(tokens: Sequence[Token]) -> int:
    if not tokens:
        return 1
    return tokens[-1].line
