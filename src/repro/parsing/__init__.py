"""Parsing substrate: lexer generator and LALR(1) parser generator.

The paper uses YACC to produce the (sequential) parser that builds the syntax tree the
attribute evaluators work on.  This package plays the same role: a grammar's
context-free backbone is compiled into an LALR(1) parse table (with YACC-style
precedence/associativity conflict resolution), and the resulting
:class:`~repro.parsing.parser.Parser` builds :class:`repro.tree.node.ParseTreeNode`
trees directly usable by the evaluators.
"""

from repro.parsing.lexer import Token, TokenSpec, Lexer, LexerError
from repro.parsing.lalr import LALRTable, LALRConflict, build_lalr_table
from repro.parsing.parser import Parser, ParseError

__all__ = [
    "Token",
    "TokenSpec",
    "Lexer",
    "LexerError",
    "LALRTable",
    "LALRConflict",
    "build_lalr_table",
    "Parser",
    "ParseError",
]
