"""LALR(1) parse-table construction.

The construction follows the classical route: LR(0) item sets, then LALR(1) lookaheads
by spontaneous generation and propagation (the dragon book's "determining lookaheads"
algorithm), then table construction with YACC-style precedence/associativity conflict
resolution.  Conflicts that cannot be resolved by precedence are recorded in
:attr:`LALRTable.conflicts` and resolved the way YACC does (prefer shift; prefer the
earlier production), so grammar authors can inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.grammar.grammar import AttributeGrammar
from repro.grammar.symbols import Nonterminal, Symbol, Terminal

EOF = "$end"
_DUMMY = "#"

# Internal production representation: (lhs name, rhs tuple of (is_terminal, name)).
_Sym = Tuple[bool, str]  # (is_terminal, name)
_Item = Tuple[int, int]  # (internal production index, dot position)


@dataclass(frozen=True)
class Action:
    """One ACTION-table entry."""

    kind: str                      # "shift" | "reduce" | "accept"
    target: int = -1               # shift: next state; reduce: grammar production index

    def __repr__(self) -> str:
        if self.kind == "shift":
            return f"s{self.target}"
        if self.kind == "reduce":
            return f"r{self.target}"
        return "acc"


@dataclass
class LALRConflict:
    """A conflict that had to be resolved by default rules rather than precedence."""

    state: int
    token: str
    kind: str                      # "shift/reduce" | "reduce/reduce"
    chosen: Action
    rejected: Action

    def __str__(self) -> str:
        return (
            f"{self.kind} conflict in state {self.state} on {self.token!r}: "
            f"chose {self.chosen!r} over {self.rejected!r}"
        )


@dataclass
class LALRTable:
    """The generated parse table."""

    action: List[Dict[str, Action]]
    goto: List[Dict[str, int]]
    state_count: int
    conflicts: List[LALRConflict] = field(default_factory=list)
    eof: str = EOF

    def describe(self) -> str:
        lines = [f"LALR(1) table: {self.state_count} states, {len(self.conflicts)} conflicts"]
        for conflict in self.conflicts:
            lines.append(f"  {conflict}")
        return "\n".join(lines)


class _Builder:
    def __init__(self, grammar: AttributeGrammar, start: Optional[str] = None):
        if start is not None:
            if start not in grammar.nonterminals:
                raise ValueError(f"start override {start!r} is not a grammar nonterminal")
            self.start_name = start
        else:
            if grammar.start is None:
                raise ValueError("grammar has no start symbol")
            self.start_name = grammar.start.name
        self.grammar = grammar
        # Internal production 0 is the augmented start production $accept -> start $end.
        self.productions: List[Tuple[str, Tuple[_Sym, ...]]] = [
            ("$accept", ((False, self.start_name),))
        ]
        for production in grammar.productions:
            rhs = tuple((symbol.is_terminal, symbol.name) for symbol in production.rhs)
            self.productions.append((production.lhs.name, rhs))
        self.by_lhs: Dict[str, List[int]] = {}
        for index, (lhs, _) in enumerate(self.productions):
            self.by_lhs.setdefault(lhs, []).append(index)
        self.terminal_names = set(grammar.terminals) | {EOF}
        self.nonterminal_names = set(grammar.nonterminals) | {"$accept"}
        self._first: Dict[str, Set[str]] = {}
        self._nullable: Set[str] = set()
        self._compute_first()
        self._precedence = self._compute_precedence()

    # ------------------------------------------------------------------- FIRST

    def _compute_first(self) -> None:
        for name in self.terminal_names:
            self._first[name] = {name}
        for name in self.nonterminal_names:
            self._first[name] = set()
        changed = True
        while changed:
            changed = False
            for lhs, rhs in self.productions:
                first = self._first[lhs]
                before = len(first)
                nullable_prefix = True
                for is_terminal, name in rhs:
                    first |= self._first[name] if not is_terminal else {name}
                    if is_terminal or name not in self._nullable:
                        nullable_prefix = False
                        break
                if nullable_prefix and lhs not in self._nullable:
                    self._nullable.add(lhs)
                    changed = True
                if len(first) != before:
                    changed = True

    def first_of_sequence(self, symbols: Sequence[_Sym], lookahead: str) -> Set[str]:
        """FIRST(symbols lookahead) where ``lookahead`` is a single terminal name."""
        result: Set[str] = set()
        for is_terminal, name in symbols:
            if is_terminal:
                result.add(name)
                return result
            result |= self._first[name]
            if name not in self._nullable:
                return result
        result.add(lookahead)
        return result

    # -------------------------------------------------------------- precedence

    def _compute_precedence(self) -> Dict[str, Tuple[int, str]]:
        table: Dict[str, Tuple[int, str]] = {}
        for level, (assoc, tokens) in enumerate(self.grammar.precedence, start=1):
            for token in tokens:
                table[token] = (level, assoc)
        return table

    def production_precedence(self, internal_index: int) -> Optional[Tuple[int, str]]:
        if internal_index == 0:
            return None
        production = self.grammar.productions[internal_index - 1]
        if production.precedence is not None:
            return self._precedence.get(production.precedence)
        for symbol in reversed(production.rhs):
            if symbol.is_terminal:
                return self._precedence.get(symbol.name)
        return None

    # ------------------------------------------------------------ LR(0) states

    def lr0_closure(self, kernel: FrozenSet[_Item]) -> FrozenSet[_Item]:
        closure = set(kernel)
        frontier = list(kernel)
        while frontier:
            prod_index, dot = frontier.pop()
            rhs = self.productions[prod_index][1]
            if dot >= len(rhs):
                continue
            is_terminal, name = rhs[dot]
            if is_terminal:
                continue
            for candidate in self.by_lhs.get(name, ()):
                item = (candidate, 0)
                if item not in closure:
                    closure.add(item)
                    frontier.append(item)
        return frozenset(closure)

    def lr0_goto(self, closure: FrozenSet[_Item], symbol: _Sym) -> FrozenSet[_Item]:
        kernel = set()
        for prod_index, dot in closure:
            rhs = self.productions[prod_index][1]
            if dot < len(rhs) and rhs[dot] == symbol:
                kernel.add((prod_index, dot + 1))
        return frozenset(kernel)

    def build_states(self) -> Tuple[List[FrozenSet[_Item]], Dict[Tuple[int, _Sym], int]]:
        initial_kernel = frozenset({(0, 0)})
        kernels: List[FrozenSet[_Item]] = [initial_kernel]
        index_of: Dict[FrozenSet[_Item], int] = {initial_kernel: 0}
        transitions: Dict[Tuple[int, _Sym], int] = {}
        frontier = [0]
        while frontier:
            state = frontier.pop()
            closure = self.lr0_closure(kernels[state])
            symbols: Set[_Sym] = set()
            for prod_index, dot in closure:
                rhs = self.productions[prod_index][1]
                if dot < len(rhs):
                    symbols.add(rhs[dot])
            for symbol in sorted(symbols):
                kernel = self.lr0_goto(closure, symbol)
                if not kernel:
                    continue
                if kernel not in index_of:
                    index_of[kernel] = len(kernels)
                    kernels.append(kernel)
                    frontier.append(index_of[kernel])
                transitions[(state, symbol)] = index_of[kernel]
        return kernels, transitions

    # --------------------------------------------------------- LALR lookaheads

    def lr1_closure(
        self, items: Set[Tuple[_Item, str]]
    ) -> Set[Tuple[_Item, str]]:
        closure = set(items)
        frontier = list(items)
        while frontier:
            (prod_index, dot), lookahead = frontier.pop()
            rhs = self.productions[prod_index][1]
            if dot >= len(rhs):
                continue
            is_terminal, name = rhs[dot]
            if is_terminal:
                continue
            rest = rhs[dot + 1 :]
            lookaheads = self.first_of_sequence(rest, lookahead)
            for candidate in self.by_lhs.get(name, ()):
                for la in lookaheads:
                    entry = ((candidate, 0), la)
                    if entry not in closure:
                        closure.add(entry)
                        frontier.append(entry)
        return closure

    def compute_lookaheads(
        self,
        kernels: List[FrozenSet[_Item]],
        transitions: Dict[Tuple[int, _Sym], int],
    ) -> List[Dict[_Item, Set[str]]]:
        lookaheads: List[Dict[_Item, Set[str]]] = [
            {item: set() for item in kernel} for kernel in kernels
        ]
        lookaheads[0][(0, 0)].add(EOF)
        propagation: Dict[Tuple[int, _Item], List[Tuple[int, _Item]]] = {}

        for state, kernel in enumerate(kernels):
            for item in kernel:
                closure = self.lr1_closure({(item, _DUMMY)})
                for (prod_index, dot), lookahead in closure:
                    rhs = self.productions[prod_index][1]
                    if dot >= len(rhs):
                        continue
                    symbol = rhs[dot]
                    target_state = transitions.get((state, symbol))
                    if target_state is None:
                        continue
                    target_item = (prod_index, dot + 1)
                    if lookahead == _DUMMY:
                        propagation.setdefault((state, item), []).append(
                            (target_state, target_item)
                        )
                    else:
                        lookaheads[target_state][target_item].add(lookahead)

        changed = True
        while changed:
            changed = False
            for (state, item), targets in propagation.items():
                source = lookaheads[state][item]
                if not source:
                    continue
                for target_state, target_item in targets:
                    target = lookaheads[target_state][target_item]
                    before = len(target)
                    target |= source
                    if len(target) != before:
                        changed = True
        return lookaheads

    # -------------------------------------------------------------------- table

    def build(self) -> LALRTable:
        kernels, transitions = self.build_states()
        lookaheads = self.compute_lookaheads(kernels, transitions)
        state_count = len(kernels)
        action: List[Dict[str, Action]] = [dict() for _ in range(state_count)]
        goto: List[Dict[str, int]] = [dict() for _ in range(state_count)]
        conflicts: List[LALRConflict] = []

        for (state, (is_terminal, name)), target in transitions.items():
            if is_terminal:
                action[state][name] = Action("shift", target)
            else:
                goto[state][name] = target

        for state, kernel in enumerate(kernels):
            seeded = {
                (item, la)
                for item in kernel
                for la in lookaheads[state][item]
            }
            closure = self.lr1_closure(seeded)
            for (prod_index, dot), lookahead in closure:
                rhs = self.productions[prod_index][1]
                if dot != len(rhs):
                    continue
                if prod_index == 0:
                    if lookahead == EOF:
                        action[state][EOF] = Action("accept")
                    continue
                reduce_action = Action("reduce", prod_index - 1)
                existing = action[state].get(lookahead)
                if existing is None:
                    action[state][lookahead] = reduce_action
                    continue
                if existing == reduce_action or existing.kind == "accept":
                    continue
                resolved, conflict = self._resolve_conflict(
                    state, lookahead, existing, reduce_action, prod_index
                )
                action[state][lookahead] = resolved
                if conflict is not None:
                    conflicts.append(conflict)

        return LALRTable(action, goto, state_count, conflicts)

    def _resolve_conflict(
        self,
        state: int,
        token: str,
        existing: Action,
        reduce_action: Action,
        internal_index: int,
    ) -> Tuple[Action, Optional[LALRConflict]]:
        if existing.kind == "shift":
            token_precedence = self._precedence.get(token)
            production_precedence = self.production_precedence(internal_index)
            if token_precedence and production_precedence:
                if production_precedence[0] > token_precedence[0]:
                    return reduce_action, None
                if production_precedence[0] < token_precedence[0]:
                    return existing, None
                assoc = token_precedence[1]
                if assoc == "left":
                    return reduce_action, None
                if assoc == "right":
                    return existing, None
                # nonassoc: neither action is legal; keep the shift but flag it.
                return existing, LALRConflict(
                    state, token, "shift/reduce", existing, reduce_action
                )
            # YACC default: prefer shift.
            return existing, LALRConflict(
                state, token, "shift/reduce", existing, reduce_action
            )
        # reduce/reduce: prefer the earlier production (YACC default).
        if existing.kind == "reduce" and existing.target <= reduce_action.target:
            chosen, rejected = existing, reduce_action
        else:
            chosen, rejected = reduce_action, existing
        return chosen, LALRConflict(state, token, "reduce/reduce", chosen, rejected)


def build_lalr_table(grammar: AttributeGrammar, start: Optional[str] = None) -> LALRTable:
    """Build the LALR(1) parse table for ``grammar``'s context-free backbone.

    ``start`` overrides the grammar's start symbol: the table then accepts exactly
    the sentences derivable from that nonterminal.  Incremental reparsing uses such
    *subtree tables* to re-parse only the damaged subtree of an edited document
    (production indices in the table are the grammar's own either way, so the
    resulting trees plug straight back into the full parse tree).
    """
    return _Builder(grammar, start=start).build()
