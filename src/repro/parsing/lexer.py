"""A small table-driven lexer generator.

A lexer is described by an ordered list of :class:`TokenSpec` regular-expression rules
plus an optional keyword table (identifiers whose text matches a keyword are re-tagged
with the keyword's token kind, the usual trick for Pascal-like languages).  The
generated :class:`Lexer` produces :class:`Token` objects with line/column positions and
raises :class:`LexerError` on unrecognisable input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set


class LexerError(Exception):
    """Raised when the input contains a character no rule matches."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One scanned token."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


@dataclass(frozen=True)
class TokenSpec:
    """One lexical rule.

    :param name: token kind produced (ignored when ``skip`` is true).
    :param pattern: regular expression (anchored at the current position).
    :param skip: when true, matching text is discarded (whitespace, comments).
    """

    name: str
    pattern: str
    skip: bool = False


class Lexer:
    """Compiled scanner for a list of :class:`TokenSpec` rules.

    Rules are tried in order at each position; the first match wins (so keywords given
    as literal rules must precede a generic identifier rule, or use ``keywords``).

    All rules are additionally compiled into one alternation regex, so the common case
    is a *single-pass* scan: one C-level ``match`` per token instead of one Python
    loop iteration per rule per position.  Alternation order equals rule order, which
    preserves first-match-wins semantics; the only case the combined pattern cannot
    express — a rule matching the empty string, which the per-rule loop skips in
    favour of later rules — falls back to the original loop at that position.
    """

    def __init__(
        self,
        specs: Sequence[TokenSpec],
        keywords: Optional[Dict[str, str]] = None,
        keyword_source: str = "IDENTIFIER",
    ):
        if not specs:
            raise ValueError("a lexer needs at least one token rule")
        self._specs = list(specs)
        self._compiled = [(spec, re.compile(spec.pattern)) for spec in self._specs]
        self._keywords = dict(keywords or {})
        self._keyword_source = keyword_source
        self._combined: Optional[re.Pattern] = None
        self._spec_by_group: List[Optional[TokenSpec]] = []
        self._compile_combined()

    def _compile_combined(self) -> None:
        """Build the single-pass alternation ``(rule1)|(rule2)|...``.

        Each rule becomes one outer capturing group; rules may contain their own
        groups, so the winning rule is identified by mapping ``match.lastindex``
        (the highest group number that matched) back to the enclosing outer group.
        Rules whose pattern does not compose (e.g. inline flags) disable the
        combined scan and the per-rule loop handles everything, exactly as before.
        """
        pieces = []
        spec_by_group: List[Optional[TokenSpec]] = [None]  # group numbers are 1-based
        for spec, compiled in self._compiled:
            if re.search(r"\\\d", spec.pattern):
                return  # numeric backreferences would renumber under composition
            pieces.append(f"({spec.pattern})")
            # The outer group and every inner group of this rule map back to it, so
            # ``match.lastindex`` resolves the winning rule in one list index.
            spec_by_group.extend([spec] * (1 + compiled.groups))
        try:
            combined = re.compile("|".join(pieces))
        except re.error:
            return
        if combined.groups != len(spec_by_group) - 1:
            return  # a pattern's group count changed under composition; stay safe
        self._combined = combined
        self._spec_by_group = spec_by_group

    def tokenize(self, text: str) -> List[Token]:
        """Scan the whole input and return the token list (no EOF token appended)."""
        return list(self.iter_tokens(text))

    def scan(
        self,
        text: str,
        position: int = 0,
        line: int = 1,
        line_start: int = 0,
        resync_offsets: Optional[Set[int]] = None,
        resync_min: int = 0,
    ):
        """Scan like :meth:`tokenize` but also return per-token text spans.

        Returns ``(tokens, spans, stopped_at)`` where ``spans[i] = (scan_start,
        start, end)``: ``scan_start`` is the offset where scanning for token ``i``
        began (the end of token ``i-1``, so skipped text — whitespace, comments —
        between tokens belongs to the *following* token's span), ``start``/``end``
        delimit the lexeme itself.  The span intervals tile the input, which is what
        incremental re-lexing needs to find safe restart and resynchronisation
        points.  ``position``/``line``/``line_start`` allow restarting a scan
        mid-text at a known-safe boundary; when a token boundary at or past
        ``resync_min`` lands exactly on an offset in ``resync_offsets``, scanning
        stops there and ``stopped_at`` is that offset (``None`` when the scan ran to
        the end of the text).

        Kept separate from :meth:`iter_tokens` on purpose: the plain scan is the
        compiler's hot path and must not pay for span bookkeeping.
        """
        tokens: List[Token] = []
        spans: List[tuple] = []
        anchor = position
        length = len(text)
        combined = self._combined
        keywords = self._keywords
        keyword_source = self._keyword_source
        while position < length:
            if (
                resync_offsets is not None
                and position == anchor
                and position >= resync_min
                and position in resync_offsets
            ):
                return tokens, spans, position
            if combined is not None:
                match = combined.match(text, position)
                if match is not None and match.end() > position:
                    lexeme = match.group(0)
                    spec = self._spec_by_group[match.lastindex or 1]
                    if not spec.skip:
                        kind = spec.name
                        if kind == keyword_source and lexeme.lower() in keywords:
                            kind = keywords[lexeme.lower()]
                        tokens.append(
                            Token(kind, lexeme, line, position - line_start + 1)
                        )
                        spans.append((anchor, position, match.end()))
                        anchor = match.end()
                    newlines = lexeme.count("\n")
                    if newlines:
                        line += newlines
                        line_start = position + lexeme.rfind("\n") + 1
                    position = match.end()
                    continue
                if match is None:
                    column = position - line_start + 1
                    raise LexerError(
                        f"unexpected character {text[position]!r}", line, column
                    )
            for spec, pattern in self._compiled:
                match = pattern.match(text, position)
                if match is None or match.end() == position:
                    continue
                lexeme = match.group(0)
                column = position - line_start + 1
                if not spec.skip:
                    kind = spec.name
                    if kind == self._keyword_source and lexeme.lower() in self._keywords:
                        kind = self._keywords[lexeme.lower()]
                    tokens.append(Token(kind, lexeme, line, column))
                    spans.append((anchor, position, match.end()))
                    anchor = match.end()
                newlines = lexeme.count("\n")
                if newlines:
                    line += newlines
                    line_start = position + lexeme.rfind("\n") + 1
                position = match.end()
                break
            else:
                column = position - line_start + 1
                raise LexerError(f"unexpected character {text[position]!r}", line, column)
        return tokens, spans, None

    def iter_tokens(self, text: str) -> Iterator[Token]:
        position = 0
        line = 1
        line_start = 0
        length = len(text)
        combined = self._combined
        keywords = self._keywords
        keyword_source = self._keyword_source
        while position < length:
            if combined is not None:
                match = combined.match(text, position)
                if match is not None and match.end() > position:
                    lexeme = match.group(0)
                    spec = self._spec_by_group[match.lastindex or 1]
                    if not spec.skip:
                        kind = spec.name
                        if kind == keyword_source and lexeme.lower() in keywords:
                            kind = keywords[lexeme.lower()]
                        yield Token(kind, lexeme, line, position - line_start + 1)
                    newlines = lexeme.count("\n")
                    if newlines:
                        line += newlines
                        line_start = position + lexeme.rfind("\n") + 1
                    position = match.end()
                    continue
                if match is None:
                    column = position - line_start + 1
                    raise LexerError(
                        f"unexpected character {text[position]!r}", line, column
                    )
                # Zero-width combined match: only the per-rule loop can express
                # "skip this rule and try the next one at the same position".
            for spec, pattern in self._compiled:
                match = pattern.match(text, position)
                if match is None or match.end() == position:
                    continue
                lexeme = match.group(0)
                column = position - line_start + 1
                if not spec.skip:
                    kind = spec.name
                    if kind == self._keyword_source and lexeme.lower() in self._keywords:
                        kind = self._keywords[lexeme.lower()]
                    yield Token(kind, lexeme, line, column)
                newlines = lexeme.count("\n")
                if newlines:
                    line += newlines
                    line_start = position + lexeme.rfind("\n") + 1
                position = match.end()
                break
            else:
                column = position - line_start + 1
                raise LexerError(f"unexpected character {text[position]!r}", line, column)
