"""A small table-driven lexer generator.

A lexer is described by an ordered list of :class:`TokenSpec` regular-expression rules
plus an optional keyword table (identifiers whose text matches a keyword are re-tagged
with the keyword's token kind, the usual trick for Pascal-like languages).  The
generated :class:`Lexer` produces :class:`Token` objects with line/column positions and
raises :class:`LexerError` on unrecognisable input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence


class LexerError(Exception):
    """Raised when the input contains a character no rule matches."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One scanned token."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


@dataclass(frozen=True)
class TokenSpec:
    """One lexical rule.

    :param name: token kind produced (ignored when ``skip`` is true).
    :param pattern: regular expression (anchored at the current position).
    :param skip: when true, matching text is discarded (whitespace, comments).
    """

    name: str
    pattern: str
    skip: bool = False


class Lexer:
    """Compiled scanner for a list of :class:`TokenSpec` rules.

    Rules are tried in order at each position; the first match wins (so keywords given
    as literal rules must precede a generic identifier rule, or use ``keywords``).
    """

    def __init__(
        self,
        specs: Sequence[TokenSpec],
        keywords: Optional[Dict[str, str]] = None,
        keyword_source: str = "IDENTIFIER",
    ):
        if not specs:
            raise ValueError("a lexer needs at least one token rule")
        self._specs = list(specs)
        self._compiled = [(spec, re.compile(spec.pattern)) for spec in self._specs]
        self._keywords = dict(keywords or {})
        self._keyword_source = keyword_source

    def tokenize(self, text: str) -> List[Token]:
        """Scan the whole input and return the token list (no EOF token appended)."""
        return list(self.iter_tokens(text))

    def iter_tokens(self, text: str) -> Iterator[Token]:
        position = 0
        line = 1
        line_start = 0
        length = len(text)
        while position < length:
            for spec, pattern in self._compiled:
                match = pattern.match(text, position)
                if match is None or match.end() == position:
                    continue
                lexeme = match.group(0)
                column = position - line_start + 1
                if not spec.skip:
                    kind = spec.name
                    if kind == self._keyword_source and lexeme.lower() in self._keywords:
                        kind = self._keywords[lexeme.lower()]
                    yield Token(kind, lexeme, line, column)
                newlines = lexeme.count("\n")
                if newlines:
                    line += newlines
                    line_start = position + lexeme.rfind("\n") + 1
                position = match.end()
                break
            else:
                column = position - line_start + 1
                raise LexerError(f"unexpected character {text[position]!r}", line, column)
