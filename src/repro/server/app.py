"""The asyncio HTTP/JSON front door over :class:`repro.service.CompilationService`.

This is the piece that turns the in-process compile stack into something
"millions of users" can hit: a stdlib-only HTTP/1.1 server (``asyncio.start_server``,
keep-alive, JSON bodies) that is pure protocol and policy — every compilation
still runs through the existing service layer on one persistent substrate.

Endpoints::

    POST   /compile                  one-shot compile (admitted + coalesced)
    POST   /documents                open a server-held editing session
    POST   /documents/{sid}/edit     splice edits into the session source
    POST   /documents/{sid}/recompile  incremental recompile (admitted)
    DELETE /documents/{sid}          close the session
    GET    /stats                    ServiceStats.to_dict() + server counters
    GET    /healthz                  readiness (503 while draining)

Policy, in order, for every costly request:

1. **Coalescing** — an identical one-shot ``(language, source, machines,
   evaluator)`` already in flight (or freshly completed) is joined, not
   recompiled; every sharer receives byte-identical response bytes.
2. **Admission** — per-tenant token-bucket quotas plus a server-wide bounded
   pending count; a refusal is an immediate ``429`` with ``Retry-After``, never
   an unbounded queue.
3. **Execution** — one-shots go to the ``CompilationService``; document
   recompiles run the PR-5 incremental path on a per-document lock.

On SIGTERM the server *drains*: the listener closes, new work is refused with
``503``, in-flight requests finish (bounded by ``drain_grace``), then the
service and substrate shut down and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from math import ceil
from typing import Any, Dict, Optional, Set, Tuple

from repro.api.language import UnknownLanguageError, get_language
from repro.backends import create_substrate
from repro.faults import plan as _faults
from repro.incremental.cache import ArtifactCache
from repro.parsing.lexer import LexerError
from repro.parsing.parser import ParseError
from repro.resilience import Deadline, DeadlineExceeded
from repro.server.admission import AdmissionController, AdmissionError
from repro.server.coalescing import Coalescer, content_key
from repro.server.routing import RouteError, Router
from repro.server.schemas import (
    CompileRequest,
    EditRequest,
    OpenRequest,
    SchemaError,
    compile_result_payload,
    error_payload,
)
from repro.server.sessions import (
    DocumentLimitError,
    DocumentStore,
    UnknownDocumentError,
)
from repro.service import CompilationJob, CompilationService, ServiceError

#: Largest accepted request body, bytes.  Requests above it get a 413.
MAX_BODY_BYTES = 8 * 1024 * 1024

_Response = Tuple[int, Dict[str, Any], Dict[str, str]]

_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Request header carrying the client's compile budget in milliseconds.  The
#: server turns it into a :class:`repro.resilience.Deadline` and hands the
#: *object* down (service → substrate receive bound → cluster job timeout); an
#: exhausted budget surfaces as ``504 Gateway Timeout``.
DEADLINE_HEADER = "x-repro-deadline-ms"


@dataclass
class ServerConfig:
    """Everything one :class:`CompileServer` needs, with serve-small defaults."""

    host: str = "127.0.0.1"
    port: int = 8080                #: 0 picks a free port (see ``CompileServer.port``)
    backend: str = "threads"        #: substrate name; see ``repro.backends``
    workers: int = 0                #: initial pool size (pools grow on demand)
    machines: int = 2               #: default machine count per compilation
    max_in_flight: int = 8          #: concurrent compilations on the substrate
    max_pending: int = 64           #: admitted-but-unfinished bound (then 429)
    quota_rate: float = 50.0        #: per-tenant sustained requests/second
    quota_burst: float = 100.0      #: per-tenant burst capacity
    max_documents: int = 512        #: live editing sessions (then 429)
    idle_ttl: float = 300.0         #: seconds before an idle session is evicted
    coalesce_capacity: int = 256    #: completed one-shot results kept for sharing
    drain_grace: float = 10.0       #: seconds to wait for in-flight work on drain
    store: Optional[Any] = None     #: persistent artifact store — path or ArtifactStore
    store_max_bytes: Optional[int] = None  #: store size budget (gc target), bytes


class CompileServer:
    """One HTTP front door bound to one substrate, service and artifact cache.

    Lifecycle: ``await start()`` then ``await serve_forever()`` (or use
    :func:`serve_in_thread` from synchronous code).  All request handling runs
    on the event loop; compilations hop to the service's dispatch threads and
    document operations to a small executor, so the loop itself never blocks.
    """

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.router = Router()
        self.router.add("POST", "/compile", self._handle_compile)
        self.router.add("POST", "/documents", self._handle_open)
        self.router.add("POST", "/documents/{sid}/edit", self._handle_edit)
        self.router.add("POST", "/documents/{sid}/recompile", self._handle_recompile)
        self.router.add("DELETE", "/documents/{sid}", self._handle_close_document)
        self.router.add("GET", "/stats", self._handle_stats)
        self.router.add("GET", "/healthz", self._handle_health)

        self._http: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None
        self._substrate = None
        self._service: Optional[CompilationService] = None
        self._doc_pool: Optional[ThreadPoolExecutor] = None
        self._sweeper: Optional["asyncio.Task[None]"] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._connection_tasks: Set["asyncio.Task[None]"] = set()
        self._drain_requested: Optional[asyncio.Event] = None
        self._draining = False
        self._stopped = False
        self._active_requests = 0
        self.requests_served = 0
        self._started_at = 0.0

        cfg = self.config
        if cfg.store is not None:
            # The persistent tier under the server's shared cache: a restarted
            # server mounting the same path replays regions recorded by its
            # previous life (GET /stats shows store_hits > 0 on the first build).
            from repro.store import open_store

            self.cache = ArtifactCache(
                store=open_store(cfg.store, max_bytes=cfg.store_max_bytes)
            )
        else:
            self.cache = ArtifactCache()
        self.admission = AdmissionController(
            quota_rate=cfg.quota_rate,
            quota_burst=cfg.quota_burst,
            max_pending=cfg.max_pending,
            queued_threshold=cfg.max_in_flight,
        )
        self.coalescer = Coalescer(capacity=cfg.coalesce_capacity)
        self.documents = DocumentStore(
            max_documents=cfg.max_documents, idle_ttl=cfg.idle_ttl
        )

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> "CompileServer":
        cfg = self.config
        self._drain_requested = asyncio.Event()
        self._substrate = create_substrate(cfg.backend, workers=cfg.workers)
        self._substrate.start()
        self._service = CompilationService(
            self._substrate,
            max_in_flight=cfg.max_in_flight,
            artifact_cache=self.cache,
        )
        self._service.start()
        self._doc_pool = ThreadPoolExecutor(
            max_workers=cfg.max_in_flight, thread_name_prefix="repro-server-doc"
        )
        self._http = await asyncio.start_server(
            self._client_connected, cfg.host, cfg.port
        )
        self._port = self._http.sockets[0].getsockname()[1]
        self._sweeper = asyncio.get_running_loop().create_task(self._sweep_idle())
        self._started_at = time.monotonic()
        return self

    @property
    def port(self) -> int:
        """The bound port (survives shutdown, so late clients can still ask)."""
        assert self._port is not None, "server has not started"
        return self._port

    @property
    def service(self) -> CompilationService:
        assert self._service is not None
        return self._service

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; also wired to SIGTERM/SIGINT)."""
        assert self._drain_requested is not None
        self._drain_requested.set()

    async def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Serve until a drain is requested, then drain and stop."""
        assert self._drain_requested is not None
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._drain_requested.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-unix loop: drain via request_drain() only
        await self._drain_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """Refuse new work, finish in-flight requests, then tear everything down."""
        if self._draining:
            return
        self._draining = True
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        await self.stop()

    async def stop(self) -> None:
        """Immediate teardown (drain calls this; tests may call it directly)."""
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
        for writer in list(self._connections):
            writer.close()
        # Closed transports feed EOF to their readers; give the connection
        # coroutines a moment to observe it and exit, so nothing is destroyed
        # mid-await when the loop closes.
        current = asyncio.current_task()
        pending = {
            task
            for task in self._connection_tasks
            if not task.done() and task is not current
        }
        if pending:
            await asyncio.wait(pending, timeout=1.0)
        if self._doc_pool is not None:
            self._doc_pool.shutdown(wait=True)
        if self._service is not None:
            self._service.close()
        if self._substrate is not None:
            self._substrate.shutdown()
        # Settle the write-behind queue so a successor process mounting the same
        # store finds every artifact this life recorded.
        self.cache.close()

    async def _sweep_idle(self) -> None:
        interval = max(0.05, min(self.config.idle_ttl / 4, 30.0))
        while True:
            await asyncio.sleep(interval)
            self.documents.evict_idle()

    # ----------------------------------------------------------------- HTTP layer

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while not self._stopped:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, headers, body = request
                close = (
                    headers.get("connection", "").lower() == "close" or self._draining
                )
                self._active_requests += 1
                try:
                    status, payload, extra = await self._dispatch(
                        method, path, headers, body
                    )
                finally:
                    self._active_requests -= 1
                self._write_response(writer, status, payload, extra, close=close)
                await writer.drain()
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise
            return None  # clean EOF between keep-alive requests
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            self._write_response(
                writer, 400, error_payload("malformed request line"), {}, close=True
            )
            return None
        method, path = parts[0], parts[1].split("?", 1)[0]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            self._write_response(
                writer,
                400,
                error_payload("chunked request bodies are not supported"),
                {},
                close=True,
            )
            return None
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            self._write_response(
                writer,
                413,
                error_payload(f"body of {length} bytes exceeds {MAX_BODY_BYTES}"),
                {},
                close=True,
            )
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Dict[str, str],
        *,
        close: bool,
    ) -> None:
        # sort_keys makes serialization deterministic, which is what lets every
        # coalesced waiter receive byte-identical body bytes for a shared payload.
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)

    # ------------------------------------------------------------------ dispatch

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> _Response:
        self.requests_served += 1
        if self._draining and method.upper() != "GET":
            # Reads stay up for observability during the drain window; work does
            # not — a queued deadline-bearing request gets this clean 503 rather
            # than burning its budget waiting for a server that will not serve it.
            return 503, error_payload("server is draining"), {}
        if _faults.ACTIVE is not None:
            hit = _faults.ACTIVE.check("server.request", f"{method} {path}")
            if hit is not None:
                if hit.action in ("delay", "stall"):
                    # Asyncio edge: stall the *request*, never the event loop.
                    await asyncio.sleep(hit.delay)
                else:
                    return (
                        500,
                        error_payload(
                            f"injected fault at 'server.request': {hit.action}"
                        ),
                        {},
                    )
        deadline: Optional[Deadline] = None
        raw_budget = headers.get(DEADLINE_HEADER)
        if raw_budget:
            try:
                budget_ms = float(raw_budget)
                if budget_ms < 0:
                    raise ValueError
            except ValueError:
                return (
                    400,
                    error_payload(
                        f"{DEADLINE_HEADER} must be a non-negative number of "
                        f"milliseconds, got {raw_budget!r}"
                    ),
                    {},
                )
            deadline = Deadline.after(budget_ms / 1000.0, label="http")
        try:
            handler, params = self.router.resolve(method, path)
        except RouteError as exc:
            extra = {"Allow": ", ".join(exc.allowed)} if exc.allowed else {}
            return exc.status, error_payload(str(exc)), extra
        payload: Any = None
        if body:
            try:
                payload = json.loads(body)
            except ValueError:
                return 400, error_payload("request body is not valid JSON"), {}
        try:
            return await handler(params, payload, deadline)
        except SchemaError as exc:
            return 400, error_payload(str(exc)), {}
        except UnknownLanguageError as exc:
            return 400, error_payload(str(exc)), {}
        except (LexerError, ParseError) as exc:
            return 400, error_payload(f"{type(exc).__name__}: {exc}"), {}
        except UnknownDocumentError as exc:
            sid = exc.args[0] if exc.args else "?"
            return (
                404,
                error_payload(
                    f"no document {sid!r} (closed, evicted after "
                    f"{self.config.idle_ttl:g}s idle, or never opened)"
                ),
                {},
            )
        except AdmissionError as exc:
            self.service.note_rejected()
            return (
                429,
                error_payload(str(exc), reason=exc.reason,
                              retry_after=exc.retry_after),
                {"Retry-After": str(max(1, ceil(exc.retry_after)))},
            )
        except DocumentLimitError as exc:
            self.service.note_rejected()
            retry = max(1.0, min(self.config.idle_ttl / 4, 30.0))
            return (
                429,
                error_payload(str(exc), reason="documents", retry_after=retry),
                {"Retry-After": str(ceil(retry))},
            )
        except DeadlineExceeded as exc:
            return 504, error_payload(str(exc), reason="deadline"), {}
        except ServiceError as exc:
            return 503, error_payload(str(exc)), {}
        except Exception as exc:  # noqa: BLE001 — the edge must not crash the loop
            return 500, error_payload(f"{type(exc).__name__}: {exc}"), {}

    # ------------------------------------------------------------------ handlers

    async def _handle_compile(
        self,
        params: Dict[str, str],
        payload: Any,
        deadline: Optional[Deadline] = None,
    ) -> _Response:
        request = CompileRequest.from_payload(payload)
        key = content_key(*request.coalescing_key())

        async def compute() -> _Response:
            # The leader's deadline governs the shared compute; sharers join the
            # same answer (their budgets are not tightened onto someone else's
            # compile — a 504 is never cached, so a fresh leader retries).
            return await self._run_one_shot(request, deadline)

        if self.coalescer.peek(key):
            response, how = await self.coalescer.get_or_compute(key, compute)
        else:
            # Leader path: this submission pays admission before compiling;
            # sharers above skipped it because they add no work of their own.
            straight = self.admission.admit(request.tenant)
            if not straight:
                self.service.note_queued()
            started = time.monotonic()
            try:
                response, how = await self.coalescer.get_or_compute(
                    key, compute, cache_result=lambda r: r[0] == 200
                )
            finally:
                self.admission.release(time.monotonic() - started)
        if how != "leader":
            self.service.note_coalesced()
        status, body, extra = response
        headers = dict(extra)
        headers["X-Repro-Coalesced"] = how
        return status, body, headers

    async def _run_one_shot(
        self, request: CompileRequest, deadline: Optional[Deadline] = None
    ) -> _Response:
        language = get_language(request.language)
        job = CompilationJob(
            language=language.name,
            source=request.source,
            machines=request.machines,
            evaluator=request.evaluator,
            label=f"http:{request.tenant}",
        )
        try:
            future = self.service.submit(job, deadline=deadline)
        except ServiceError:
            return 503, error_payload("server is draining"), {}
        try:
            if deadline is not None:
                try:
                    report = await asyncio.wait_for(
                        asyncio.wrap_future(future), timeout=deadline.remaining()
                    )
                except DeadlineExceeded:
                    raise
                except asyncio.TimeoutError:
                    # The loop-side timer fired before the service noticed: tell
                    # the dispatch threads to stop at the next phase boundary
                    # instead of compiling into the void, then answer 504.
                    token = getattr(future, "cancel_token", None)
                    if token is not None:
                        token.cancel("http deadline expired")
                    raise DeadlineExceeded(
                        "compilation exceeded its deadline [http]"
                    ) from None
            else:
                report = await asyncio.wrap_future(future)
        except (LexerError, ParseError) as exc:
            # Deterministic front-end failures are part of the shared answer:
            # every coalesced waiter sees the same 400.
            return 400, error_payload(f"{type(exc).__name__}: {exc}"), {}
        result_value = language.result(report)
        errors = language.errors(report)
        payload = {
            "ok": not errors,
            "language": language.name,
            "value": _json_value(result_value),
            "errors": list(errors),
            "wall_parse_ms": round(report.wall_parse_seconds * 1000, 3),
            "wall_compile_ms": round(report.wall_time_seconds * 1000, 3),
            "machines": report.machines,
            "backend": report.backend,
        }
        return 200, payload, {}

    async def _handle_open(
        self,
        params: Dict[str, str],
        payload: Any,
        deadline: Optional[Deadline] = None,
    ) -> _Response:
        request = OpenRequest.from_payload(payload)
        language = get_language(request.language)  # 400 before taking a slot
        self.admission.check_quota(request.tenant)

        def factory():
            from repro.incremental.document import Document

            return Document(
                language,
                request.source,
                machines=request.machines,
                substrate=self._substrate,
                cache=self.cache,
            )

        session = self.documents.open(factory, request.tenant)
        return (
            201,
            {
                "document": session.sid,
                "language": language.name,
                "chars": len(session.document),
                "idle_ttl": self.config.idle_ttl,
            },
            {},
        )

    async def _handle_edit(
        self,
        params: Dict[str, str],
        payload: Any,
        deadline: Optional[Deadline] = None,
    ) -> _Response:
        session = self.documents.get(params["sid"])
        request = EditRequest.from_payload(payload)
        async with session.lock:
            for start, end, text in request.edits:
                if end > len(session.document):
                    raise SchemaError(
                        f"edit [{start}, {end}) is out of bounds for a "
                        f"{len(session.document)}-char document"
                    )
                session.document.edit(start, end, text)
        return (
            200,
            {
                "document": session.sid,
                "edits_applied": len(request.edits),
                "chars": len(session.document),
            },
            {},
        )

    async def _handle_recompile(
        self,
        params: Dict[str, str],
        payload: Any,
        deadline: Optional[Deadline] = None,
    ) -> _Response:
        session = self.documents.get(params["sid"])
        if deadline is not None:
            deadline.check("recompile")  # do not admit work with no budget left
        straight = self.admission.admit(session.tenant)
        if not straight:
            self.service.note_queued()
        started = time.monotonic()
        try:
            async with session.lock:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    self._doc_pool, session.document.recompile
                )
        finally:
            self.admission.release(time.monotonic() - started)
        if deadline is not None:
            # Strict semantics, matching the service: a deadline-bearing request
            # never reports success after its budget.
            deadline.check("recompile")
        session.recompiles += 1
        session.touch(time.monotonic())
        return (
            200,
            compile_result_payload(
                result, document=session.sid, recompiles=session.recompiles
            ),
            {},
        )

    async def _handle_close_document(
        self,
        params: Dict[str, str],
        payload: Any,
        deadline: Optional[Deadline] = None,
    ) -> _Response:
        session = self.documents.close(params["sid"])
        return (
            200,
            {"document": session.sid, "closed": True, "recompiles": session.recompiles},
            {},
        )

    async def _handle_stats(
        self,
        params: Dict[str, str],
        payload: Any,
        deadline: Optional[Deadline] = None,
    ) -> _Response:
        stats = self.service.stats()
        # The front-door counters live on the service snapshot (the satellite
        # contract): /stats serves to_dict(), not re-parsed summary() text.
        return (
            200,
            {
                "service": stats.to_dict(),
                "admission": self.admission.snapshot(),
                "coalescing": self.coalescer.snapshot(),
                "documents": self.documents.snapshot(),
                "server": {
                    "backend": self.config.backend,
                    "draining": self._draining,
                    "requests_served": self.requests_served,
                    "active_requests": self._active_requests,
                    "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                },
            },
            {},
        )

    async def _handle_health(
        self,
        params: Dict[str, str],
        payload: Any,
        deadline: Optional[Deadline] = None,
    ) -> _Response:
        if self._draining:
            return 503, {"status": "draining"}, {}
        return 200, {"status": "ok", "backend": self.config.backend}, {}


def _json_value(value: Any) -> Any:
    from repro.server.schemas import json_safe

    return json_safe(value)


# ---------------------------------------------------------------- sync embedding


class ServerHandle:
    """A running :class:`CompileServer` on a background thread, for sync callers."""

    def __init__(
        self,
        server: CompileServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_drain(self) -> None:
        """Trigger graceful shutdown from any thread (non-blocking, idempotent)."""
        try:
            self._loop.call_soon_threadsafe(self.server.request_drain)
        except RuntimeError:
            pass  # the loop already closed: the server has fully stopped

    def stop(self, timeout: float = 30.0) -> None:
        """Drain, wait for the server thread to finish, and surface a hang."""
        self.request_drain()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover — a bug, not a code path
            raise RuntimeError("compile server failed to drain within timeout")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_in_thread(config: Optional[ServerConfig] = None) -> ServerHandle:
    """Start a :class:`CompileServer` on a dedicated event-loop thread.

    The embedding used by the tests and by scripts that want a loopback server
    without managing asyncio themselves::

        with serve_in_thread(ServerConfig(port=0)) as handle:
            ...  # http.client against handle.host:handle.port
    """
    started = threading.Event()
    failure: Dict[str, BaseException] = {}
    holder: Dict[str, Any] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = CompileServer(config)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover — startup failure path
            failure["exc"] = exc
            started.set()
            loop.close()
            return
        holder["server"] = server
        holder["loop"] = loop
        started.set()
        try:
            loop.run_until_complete(server.serve_forever(install_signal_handlers=False))
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-server", daemon=True)
    thread.start()
    started.wait(timeout=60.0)
    if "exc" in failure:
        raise failure["exc"]
    if "server" not in holder:
        raise RuntimeError("compile server failed to start within timeout")
    return ServerHandle(holder["server"], holder["loop"], thread)
