"""Request coalescing: identical one-shot submissions share one compile.

A compilation is a pure function of ``(language, source, machines, evaluator)``,
so when a thousand users submit the same source — the classic thundering herd on
a shared header or a popular example — the server runs *one* compile and fans
the result out.  Two mechanisms stack:

* **in-flight sharing** — while a compile for a key is running, every identical
  submission awaits the leader's future instead of starting its own;
* **a bounded result cache** — completed responses are kept in a small LRU, so a
  straggler arriving just after the leader finished still coalesces instead of
  recompiling (the same content-hash identity the artifact cache uses region by
  region, applied to whole responses).

What is shared is the serialized response *bytes*, so every coalesced waiter
receives a byte-identical payload — including when the shared compile produced
errors.  Failures (exceptions, not compile errors) propagate to the waiters that
were already in flight but are never cached: the next submission retries.

Like the admission controller, a coalescer is event-loop-confined — the server
only touches it from its asyncio thread, so there are no locks and the
peek-then-lease sequence cannot race.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from hashlib import blake2b
from typing import Any, Awaitable, Callable, Dict, Hashable, Optional, Tuple


def content_key(*parts: Any) -> str:
    """A stable content hash for a coalescing identity (order-sensitive)."""
    digest = blake2b(digest_size=16)
    for part in parts:
        chunk = part if isinstance(part, bytes) else str(part).encode("utf-8")
        digest.update(len(chunk).to_bytes(8, "big"))
        digest.update(chunk)
    return digest.hexdigest()


class Coalescer:
    """Content-hash keyed sharing of in-flight work and recent results.

    :param capacity: how many completed results the LRU retains.  ``0`` disables
        the result cache (in-flight sharing still applies).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("coalescer capacity cannot be negative")
        self.capacity = capacity
        self._in_flight: Dict[Hashable, "asyncio.Future[Any]"] = {}
        self._results: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.leaders = 0            #: submissions that ran the underlying compute
        self.joined_in_flight = 0   #: submissions that awaited a running leader
        self.served_from_cache = 0  #: submissions answered from the result LRU

    @property
    def coalesced(self) -> int:
        """Total submissions that did *not* trigger an underlying compute."""
        return self.joined_in_flight + self.served_from_cache

    def peek(self, key: Hashable) -> bool:
        """Whether ``key`` would coalesce right now (cached or in flight).

        Callers use this to decide whether a submission adds work (and so must
        pass admission) before leasing; with no ``await`` between ``peek`` and
        :meth:`get_or_compute` the answer cannot go stale on one event loop.
        """
        return key in self._results or key in self._in_flight

    async def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], Awaitable[Any]],
        *,
        cache_result: Callable[[Any], bool] = lambda _: True,
    ) -> Tuple[Any, str]:
        """The value for ``key``, computing it at most once across all callers.

        Returns ``(value, how)`` where ``how`` is ``"leader"``, ``"joined"`` or
        ``"cached"``.  ``cache_result`` decides whether a completed value enters
        the LRU (the app declines to cache refusals such as 429s, so one
        tenant's backpressure is never replayed to another).
        """
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self.served_from_cache += 1
            return cached, "cached"

        running = self._in_flight.get(key)
        if running is not None:
            self.joined_in_flight += 1
            return await asyncio.shield(running), "joined"

        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        self._in_flight[key] = future
        self.leaders += 1
        try:
            value = await compute()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # The waiters consume the exception; nobody else should, and an
                # unretrieved exception would warn at GC time.
                future.exception()
            raise
        else:
            if not future.done():
                future.set_result(value)
            if self.capacity and cache_result(value):
                self._results[key] = value
                self._results.move_to_end(key)
                while len(self._results) > self.capacity:
                    self._results.popitem(last=False)
            return value, "leader"
        finally:
            self._in_flight.pop(key, None)

    def invalidate(self, key: Optional[Hashable] = None) -> None:
        """Drop one cached result, or all of them when ``key`` is ``None``."""
        if key is None:
            self._results.clear()
        else:
            self._results.pop(key, None)

    def snapshot(self) -> Dict[str, int]:
        """JSON-safe counters for the ``/stats`` endpoint."""
        return {
            "leaders": self.leaders,
            "joined_in_flight": self.joined_in_flight,
            "served_from_cache": self.served_from_cache,
            "coalesced": self.coalesced,
            "in_flight": len(self._in_flight),
            "cached_results": len(self._results),
            "capacity": self.capacity,
        }
