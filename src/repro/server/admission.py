"""Admission control: per-tenant token buckets and a bounded pending count.

The server's memory is bounded by what it has admitted, so admission is the one
place that says no.  Two independent gates run on every costly request:

* a per-tenant :class:`TokenBucket` (``quota_rate`` requests/second sustained,
  ``quota_burst`` peak) — one tenant hammering the service cannot starve the
  rest;
* a server-wide pending bound — at most ``max_pending`` admitted-but-unfinished
  requests; beyond it the request is refused immediately rather than queued into
  unbounded memory.

A refusal raises :class:`AdmissionError` carrying a ``retry_after`` hint: for a
quota refusal, when the tenant's bucket next has a token; for a queue refusal,
an estimate of when the backlog will have drained one slot.  The app maps both
to ``429 Too Many Requests`` with a ``Retry-After`` header.

Everything here is event-loop-confined: the server calls it only from its
asyncio thread, so there are no locks.  (The unit tests drive it directly from
one thread, which satisfies the same contract.)
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.resilience import RetryPolicy


class AdmissionError(Exception):
    """A refused request: ``reason`` is ``"quota"`` or ``"queue"``."""

    def __init__(self, message: str, *, reason: str, retry_after: float):
        super().__init__(message)
        self.reason = reason
        #: Seconds the client should wait before retrying (>= 1 on the wire).
        self.retry_after = retry_after


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The bucket starts full, so a fresh tenant gets its full burst immediately;
    a drained bucket refills continuously at ``rate``.
    """

    __slots__ = ("rate", "burst", "_tokens", "_refilled_at")

    def __init__(self, rate: float, burst: float, now: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = now

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def acquire(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def retry_after(self, now: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accumulated."""
        self._refill(now)
        deficit = cost - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def full(self) -> bool:
        return self._tokens >= self.burst


class AdmissionController:
    """The two admission gates plus their counters, in front of one service.

    :param quota_rate: sustained per-tenant requests/second.
    :param quota_burst: per-tenant burst capacity.
    :param max_pending: server-wide bound on admitted-but-unfinished requests.
    :param queued_threshold: pending depth beyond which an admitted request is
        counted as *queued* (it will wait behind others rather than start
        immediately) — typically the service's ``max_in_flight``.
    :param retry_policy: the :class:`repro.resilience.RetryPolicy` shaping the
        queue-full ``Retry-After`` hint.  The drain-time estimate seeds the
        base delay; consecutive queue-full refusals walk the policy's backoff
        schedule, so a persistently full server tells clients to back off
        harder instead of repeating one optimistic guess.
    :param clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        quota_rate: float = 50.0,
        quota_burst: float = 100.0,
        max_pending: int = 64,
        queued_threshold: int = 8,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.max_pending = max_pending
        self.queued_threshold = queued_threshold
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self.pending = 0
        self.admitted = 0
        self.queued = 0
        self.rejected_quota = 0
        self.rejected_queue = 0
        self.peak_pending = 0
        #: Average seconds one pending slot takes to drain; updated by
        #: :meth:`release` and used for the queue-full ``Retry-After`` estimate.
        self._mean_occupancy = 0.05
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=2.0, max_delay=30.0
        )
        #: Consecutive queue-full refusals since the last slot freed up — the
        #: attempt number fed into the retry policy's backoff schedule.
        self._queue_full_streak = 0

    # --------------------------------------------------------------- the gates

    def check_quota(self, tenant: str, cost: float = 1.0) -> None:
        """The per-tenant gate alone (no pending slot; nothing to release).

        Used for cheap-but-abusable operations — opening a document costs no
        compile, but holds server memory, so it spends a quota token without
        occupying the pending queue.
        """
        now = self._clock()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.quota_rate, self.quota_burst, now
            )
            self._prune(now)
        if not bucket.acquire(now, cost):
            self.rejected_quota += 1
            raise AdmissionError(
                f"tenant {tenant!r} is over its rate quota "
                f"({self.quota_rate:g}/s sustained, burst {self.quota_burst:g})",
                reason="quota",
                retry_after=bucket.retry_after(now, cost),
            )

    def admit(self, tenant: str, cost: float = 1.0) -> bool:
        """Admit one request for ``tenant`` or raise :class:`AdmissionError`.

        On success the caller *must* pair this with exactly one
        :meth:`release` (typically in a ``finally``).  Returns ``True`` when
        the request was admitted straight into free capacity and ``False``
        when it was admitted but will queue (pending depth beyond
        ``queued_threshold``).
        """
        self.check_quota(tenant, cost)
        if self.pending >= self.max_pending:
            self.rejected_queue += 1
            self._queue_full_streak += 1
            raise AdmissionError(
                f"server pending queue is full ({self.pending}/{self.max_pending})",
                reason="queue",
                retry_after=self._queue_retry_after(),
            )
        self.pending += 1
        self.admitted += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        if self.pending > self.queued_threshold:
            self.queued += 1
            return False
        return True

    def release(self, occupancy_seconds: Optional[float] = None) -> None:
        """Return one pending slot (called when the admitted request finishes)."""
        self.pending = max(0, self.pending - 1)
        self._queue_full_streak = 0  # a slot freed: clients may come straight back
        if occupancy_seconds is not None and occupancy_seconds >= 0:
            # Exponential moving average keeps the Retry-After estimate cheap.
            self._mean_occupancy += 0.1 * (occupancy_seconds - self._mean_occupancy)

    # -------------------------------------------------------------- internals

    def _queue_retry_after(self) -> float:
        # A full queue drains one slot roughly every mean-occupancy /
        # queued_threshold seconds (queued_threshold slots drain concurrently);
        # that estimate anchors the hint, and the shared RetryPolicy's backoff
        # schedule scales it up for every consecutive queue-full refusal.
        concurrency = max(1, self.queued_threshold)
        drain_estimate = max(
            0.05, self._mean_occupancy * self.max_pending / concurrency / 4
        )
        policy = self.retry_policy
        attempt = min(max(1, self._queue_full_streak), policy.max_attempts)
        backoff = policy.delay(attempt) / policy.delay(1) if policy.delay(1) else 1.0
        return drain_estimate * backoff

    def _prune(self, now: float, cap: int = 4096) -> None:
        """Drop full (i.e. idle-refilled) buckets once the tenant map gets big.

        A full bucket is indistinguishable from a fresh one, so discarding it
        loses nothing; this keeps one-request-ever tenants from growing the map
        without bound.
        """
        if len(self._buckets) <= cap:
            return
        for name in [n for n, b in self._buckets.items() if b.full]:
            del self._buckets[name]

    def snapshot(self) -> Dict[str, float]:
        """JSON-safe counters for the ``/stats`` endpoint."""
        return {
            "pending": self.pending,
            "peak_pending": self.peak_pending,
            "max_pending": self.max_pending,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "tenants_tracked": len(self._buckets),
        }
