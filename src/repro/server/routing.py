"""A small method+path router for the compile server.

Routes are literal paths with ``{name}`` placeholder segments::

    router.add("POST", "/documents/{sid}/edit", handle_edit)
    handler, params = router.resolve("POST", "/documents/d1-abc/edit")
    # params == {"sid": "d1-abc"}

Resolution distinguishes *no such path* (404) from *path exists, wrong method*
(405 with the allowed methods), which is all the HTTP semantics this server
needs; anything fancier belongs in a framework, and the point of this package is
to need none.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple


class RouteError(Exception):
    """Resolution failure; ``status`` is 404 or 405."""

    def __init__(self, status: int, message: str, allowed: Sequence[str] = ()):
        super().__init__(message)
        self.status = status
        #: For a 405, the methods the path does support (the ``Allow`` header).
        self.allowed = tuple(allowed)


class Router:
    def __init__(self) -> None:
        # pattern segments -> {method -> handler}; patterns are matched in
        # registration order, literal segment vs. placeholder per segment.
        self._routes: List[Tuple[Tuple[str, ...], Dict[str, Callable]]] = []

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        segments = self._split(pattern)
        for existing_segments, methods in self._routes:
            if existing_segments == segments:
                if method.upper() in methods:
                    raise ValueError(f"duplicate route {method} {pattern}")
                methods[method.upper()] = handler
                return
        self._routes.append((segments, {method.upper(): handler}))

    def resolve(self, method: str, path: str) -> Tuple[Callable, Dict[str, str]]:
        target = self._split(path)
        allowed: Tuple[str, ...] = ()
        for segments, methods in self._routes:
            params = self._match(segments, target)
            if params is None:
                continue
            handler = methods.get(method.upper())
            if handler is not None:
                return handler, params
            allowed = tuple(sorted(methods))
        if allowed:
            raise RouteError(
                405,
                f"{method} not allowed on {path} (allowed: {', '.join(allowed)})",
                allowed=allowed,
            )
        raise RouteError(404, f"no route for {path}")

    @staticmethod
    def _split(path: str) -> Tuple[str, ...]:
        return tuple(segment for segment in path.split("/") if segment)

    @staticmethod
    def _match(
        pattern: Tuple[str, ...], target: Tuple[str, ...]
    ) -> Optional[Dict[str, str]]:
        if len(pattern) != len(target):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(pattern, target):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params
