"""Server-held document sessions: the PR-5 incremental API, over the wire.

An editing client opens a document once and then streams edits and recompiles
against a session id; the server keeps the corresponding
:class:`repro.incremental.Document` — rope source, token spans, parse tree,
fingerprint memo — alive between requests, so every recompile gets the warm
incremental path instead of a cold build.

Because sessions are server memory held on behalf of possibly-vanished clients,
the store is strictly bounded: at most ``max_documents`` live sessions (opening
beyond that is refused — the app maps it to 429), and any session idle longer
than ``idle_ttl`` seconds is evicted.  Eviction runs lazily on access and from
the app's periodic sweeper; an evicted or unknown id is a
:class:`UnknownDocumentError` (404 on the wire — clients reopen, which costs
exactly one cold build).

The store's bookkeeping is event-loop-confined (no locks); each session carries
an ``asyncio.Lock`` so the app serialises operations *per document* while
different documents proceed concurrently on the executor.
"""

from __future__ import annotations

import asyncio
import itertools
import secrets
import time
from typing import Any, Callable, Dict, Optional


class UnknownDocumentError(KeyError):
    """An id that names no live session (never existed, closed, or evicted)."""


class DocumentLimitError(RuntimeError):
    """The store is at ``max_documents`` live sessions."""


class DocumentSession:
    """One live server-held editing session."""

    __slots__ = ("sid", "document", "tenant", "lock", "opened_at", "last_used",
                 "recompiles")

    def __init__(self, sid: str, document: Any, tenant: str, now: float):
        self.sid = sid
        self.document = document
        self.tenant = tenant
        #: Serialises operations on this document; held across the executor hop.
        self.lock = asyncio.Lock()
        self.opened_at = now
        self.last_used = now
        self.recompiles = 0

    def touch(self, now: float) -> None:
        self.last_used = now


class DocumentStore:
    """A bounded, idle-evicting registry of :class:`DocumentSession`\\ s.

    :param max_documents: live-session bound; :meth:`open` refuses beyond it.
    :param idle_ttl: seconds of inactivity after which a session is evictable.
    :param clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        max_documents: int = 512,
        idle_ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_documents < 1:
            raise ValueError("max_documents must be at least 1")
        if idle_ttl <= 0:
            raise ValueError("idle_ttl must be positive")
        self.max_documents = max_documents
        self.idle_ttl = idle_ttl
        self._clock = clock
        self._sessions: Dict[str, DocumentSession] = {}
        self._serial = itertools.count(1)
        self.opened = 0
        self.closed = 0
        self.evicted = 0
        self.refused = 0

    def __len__(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------- lifecycle

    def open(self, factory: Callable[[], Any], tenant: str) -> DocumentSession:
        """Create a session around ``factory()``'s document, or refuse.

        Idle sessions are swept first, so a full store of abandoned documents
        never blocks a live client; a full store of *active* documents does —
        that is the memory bound working as intended.
        """
        now = self._clock()
        if len(self._sessions) >= self.max_documents:
            self.evict_idle(now)
        if len(self._sessions) >= self.max_documents:
            self.refused += 1
            raise DocumentLimitError(
                f"document store is full ({len(self._sessions)}/"
                f"{self.max_documents} sessions)"
            )
        # Serial prefix keeps ids log-friendly; the token makes them unguessable.
        sid = f"d{next(self._serial)}-{secrets.token_hex(6)}"
        session = DocumentSession(sid, factory(), tenant, now)
        self._sessions[sid] = session
        self.opened += 1
        return session

    def get(self, sid: str) -> DocumentSession:
        """The live session for ``sid`` (touching it), or :class:`UnknownDocumentError`."""
        session = self._sessions.get(sid)
        if session is None:
            raise UnknownDocumentError(sid)
        now = self._clock()
        if now - session.last_used > self.idle_ttl and not session.lock.locked():
            # Lazily expired: the sweeper simply has not reached it yet.
            self._evict(sid)
            raise UnknownDocumentError(sid)
        session.touch(now)
        return session

    def close(self, sid: str) -> DocumentSession:
        """Remove and return the session (:class:`UnknownDocumentError` if absent)."""
        session = self._sessions.pop(sid, None)
        if session is None:
            raise UnknownDocumentError(sid)
        self.closed += 1
        return session

    # -------------------------------------------------------------- eviction

    def evict_idle(self, now: Optional[float] = None) -> int:
        """Evict every idle-expired session; returns how many went.

        A session whose lock is held (an operation is mid-flight on the
        executor) is never evicted, however stale its timestamp — the operation
        will touch it on completion.
        """
        if now is None:
            now = self._clock()
        expired = [
            sid
            for sid, session in self._sessions.items()
            if now - session.last_used > self.idle_ttl and not session.lock.locked()
        ]
        for sid in expired:
            self._evict(sid)
        return len(expired)

    def _evict(self, sid: str) -> None:
        self._sessions.pop(sid, None)
        self.evicted += 1

    def snapshot(self) -> Dict[str, int]:
        """JSON-safe counters for the ``/stats`` endpoint."""
        return {
            "live": len(self._sessions),
            "max_documents": self.max_documents,
            "opened": self.opened,
            "closed": self.closed,
            "evicted": self.evicted,
            "refused": self.refused,
        }
