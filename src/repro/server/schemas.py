"""Wire schemas for the compile server: JSON in, JSON out, validated at the edge.

Every request body is parsed into a small dataclass here — handlers never touch
raw dicts — and every response payload is built here, so the wire contract lives
in one module.  Validation failures raise :class:`SchemaError`, which the app
maps to a ``400`` with the message verbatim; nothing else in the server stack
ever sees a malformed request.

The response payload for a compilation is the JSON projection of
:class:`repro.api.CompileResult`: the language, the extracted value (stringified
when it is not JSON-representable), the error tuple, wall-clock phase timings in
milliseconds and — for document recompiles — the incremental reuse report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Upper bound on accepted source text, in characters.  A request above this is
#: a 400, not an admission-control 429: it is malformed for this server, and the
#: bound keeps one request from holding megabytes in the pending queue.
MAX_SOURCE_CHARS = 1_000_000

#: Tenant used when a request names none.  Anonymous traffic shares one bucket.
DEFAULT_TENANT = "anonymous"


class SchemaError(ValueError):
    """A request body that does not match the wire contract (mapped to 400)."""


def _require(payload: Dict[str, Any], field: str, kind: type, what: str) -> Any:
    if field not in payload:
        raise SchemaError(f"{what} is missing required field {field!r}")
    value = payload[field]
    # bool is an int subclass; an explicit check keeps `"machines": true` a 400.
    if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
        raise SchemaError(
            f"{what} field {field!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _optional(
    payload: Dict[str, Any], field: str, kind: type, default: Any, what: str
) -> Any:
    if field not in payload or payload[field] is None:
        return default
    return _require(payload, field, kind, what)


def _checked_source(source: str, what: str) -> str:
    if len(source) > MAX_SOURCE_CHARS:
        raise SchemaError(
            f"{what} source is {len(source)} chars; "
            f"the server accepts at most {MAX_SOURCE_CHARS}"
        )
    return source


def _checked_machines(machines: int, what: str) -> int:
    if not 1 <= machines <= 64:
        raise SchemaError(f"{what} machines must be in [1, 64], got {machines}")
    return machines


@dataclass(frozen=True)
class CompileRequest:
    """``POST /compile`` — a one-shot compilation of ``source`` in ``language``."""

    language: str
    source: str
    machines: int = 2
    evaluator: str = "combined"
    tenant: str = DEFAULT_TENANT

    @classmethod
    def from_payload(cls, payload: Any) -> "CompileRequest":
        if not isinstance(payload, dict):
            raise SchemaError("compile request body must be a JSON object")
        evaluator = _optional(payload, "evaluator", str, "combined", "compile request")
        if evaluator not in ("combined", "dynamic"):
            raise SchemaError(
                f"compile request evaluator must be 'combined' or 'dynamic', "
                f"got {evaluator!r}"
            )
        return cls(
            language=_require(payload, "language", str, "compile request"),
            source=_checked_source(
                _require(payload, "source", str, "compile request"), "compile request"
            ),
            machines=_checked_machines(
                _optional(payload, "machines", int, 2, "compile request"),
                "compile request",
            ),
            evaluator=evaluator,
            tenant=_optional(
                payload, "tenant", str, DEFAULT_TENANT, "compile request"
            ),
        )

    def coalescing_key(self) -> Tuple[str, str, int, str]:
        """The identity under which identical submissions share one compile."""
        return (self.language, self.source, self.machines, self.evaluator)


@dataclass(frozen=True)
class OpenRequest:
    """``POST /documents`` — open a server-held editing session."""

    language: str
    source: str
    machines: int = 2
    tenant: str = DEFAULT_TENANT

    @classmethod
    def from_payload(cls, payload: Any) -> "OpenRequest":
        if not isinstance(payload, dict):
            raise SchemaError("open request body must be a JSON object")
        return cls(
            language=_require(payload, "language", str, "open request"),
            source=_checked_source(
                _require(payload, "source", str, "open request"), "open request"
            ),
            machines=_checked_machines(
                _optional(payload, "machines", int, 2, "open request"), "open request"
            ),
            tenant=_optional(payload, "tenant", str, DEFAULT_TENANT, "open request"),
        )


@dataclass(frozen=True)
class EditRequest:
    """``POST /documents/{id}/edit`` — splice edits into the session's source.

    ``edits`` is an ordered list of ``[start, end, text]`` replacements, each in
    the coordinates of the document *after* the previous edit — exactly the
    :meth:`repro.incremental.Document.edit` contract.
    """

    edits: Tuple[Tuple[int, int, str], ...]

    @classmethod
    def from_payload(cls, payload: Any) -> "EditRequest":
        if not isinstance(payload, dict):
            raise SchemaError("edit request body must be a JSON object")
        raw = _require(payload, "edits", list, "edit request")
        if not raw:
            raise SchemaError("edit request needs at least one edit")
        edits: List[Tuple[int, int, str]] = []
        for index, item in enumerate(raw):
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 3
                or not isinstance(item[0], int)
                or isinstance(item[0], bool)
                or not isinstance(item[1], int)
                or isinstance(item[1], bool)
                or not isinstance(item[2], str)
            ):
                raise SchemaError(
                    f"edit #{index} must be [start, end, text] with integer "
                    f"bounds and string text"
                )
            start, end, text = item
            if start < 0 or end < start:
                raise SchemaError(
                    f"edit #{index} has bounds [{start}, {end}); "
                    "need 0 <= start <= end"
                )
            edits.append((start, end, text))
        return cls(edits=tuple(edits))


# ---------------------------------------------------------------- response side


def json_safe(value: Any) -> Any:
    """``value`` if JSON can carry it, otherwise its ``str()`` form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    return str(value)


def incremental_payload(incremental: Any) -> Optional[Dict[str, Any]]:
    """The JSON projection of an :class:`IncrementalReport` (``None`` passthrough)."""
    if incremental is None:
        return None
    return {
        "regions_total": incremental.regions_total,
        "regions_evaluated": incremental.regions_evaluated,
        "regions_reused": incremental.regions_reused,
        "validation_rounds": incremental.validation_rounds,
        "frontend": incremental.frontend,
    }


def compile_result_payload(result: Any, **extra: Any) -> Dict[str, Any]:
    """The wire form of a :class:`repro.api.CompileResult` (plus ``extra`` keys)."""
    payload = {
        "ok": result.ok,
        "language": result.language,
        "value": json_safe(result.value),
        "errors": list(result.errors),
        "wall_parse_ms": round(result.wall_parse_seconds * 1000, 3),
        "wall_compile_ms": round(result.wall_compile_seconds * 1000, 3),
        "incremental": incremental_payload(result.incremental),
    }
    payload.update(extra)
    return payload


def error_payload(message: str, **extra: Any) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"error": message}
    payload.update(extra)
    return payload
