"""``python -m repro.server`` — run a compile server from the command line.

Prints one ``listening on http://HOST:PORT`` line once the socket is bound
(machine-parseable — the load benchmark and the CI smoke step read it), serves
until SIGTERM/SIGINT, drains gracefully and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.backends import BACKEND_NAMES
from repro.server.app import CompileServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    defaults = ServerConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve repro compilations over HTTP/JSON.",
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port,
                        help="TCP port; 0 picks a free one (default %(default)s)")
    parser.add_argument("--backend", default=defaults.backend,
                        choices=sorted(BACKEND_NAMES))
    parser.add_argument("--workers", type=int, default=defaults.workers,
                        help="initial substrate pool size (default: grow on demand)")
    parser.add_argument("--machines", type=int, default=defaults.machines)
    parser.add_argument("--max-in-flight", type=int, default=defaults.max_in_flight)
    parser.add_argument("--max-pending", type=int, default=defaults.max_pending)
    parser.add_argument("--quota-rate", type=float, default=defaults.quota_rate)
    parser.add_argument("--quota-burst", type=float, default=defaults.quota_burst)
    parser.add_argument("--max-documents", type=int, default=defaults.max_documents)
    parser.add_argument("--idle-ttl", type=float, default=defaults.idle_ttl)
    parser.add_argument("--coalesce-capacity", type=int,
                        default=defaults.coalesce_capacity)
    parser.add_argument("--drain-grace", type=float, default=defaults.drain_grace)
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="mount a persistent artifact store at PATH: region "
                             "recordings survive restarts, so a successor server "
                             "recompiles known sources at warm speed")
    parser.add_argument("--store-max-mb", type=float, default=None, metavar="MB",
                        help="store size budget in MiB (LRU gc when exceeded; "
                             "default: unbounded)")
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        machines=args.machines,
        max_in_flight=args.max_in_flight,
        max_pending=args.max_pending,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        max_documents=args.max_documents,
        idle_ttl=args.idle_ttl,
        coalesce_capacity=args.coalesce_capacity,
        drain_grace=args.drain_grace,
        store=args.store,
        store_max_bytes=(
            int(args.store_max_mb * 1024 * 1024)
            if args.store_max_mb is not None
            else None
        ),
    )


async def _serve(config: ServerConfig) -> int:
    server = CompileServer(config)
    await server.start()
    print(f"listening on http://{config.host}:{server.port}", flush=True)
    await server.serve_forever()
    print(
        f"drained cleanly after {server.requests_served} request(s)",
        flush=True,
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(config_from_args(args)))
    except KeyboardInterrupt:  # pragma: no cover — direct ^C before handlers bind
        return 0


if __name__ == "__main__":
    sys.exit(main())
