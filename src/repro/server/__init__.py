"""``repro.server`` — the compile service's network front door.

A stdlib-only asyncio HTTP/JSON server wrapping
:class:`repro.service.CompilationService`: one-shot compiles, server-held
incremental editing sessions (the PR-5 :class:`~repro.incremental.Document` API
over the wire), per-tenant admission control with bounded queues and ``429`` +
``Retry-After`` backpressure, content-hash request coalescing, ``/stats`` and
``/healthz``, and graceful SIGTERM drain.

The package is pure protocol and policy — it compiles nothing itself:

* :mod:`~repro.server.app` — the HTTP server, routing table and drain lifecycle;
* :mod:`~repro.server.schemas` — the JSON wire contract, validated at the edge;
* :mod:`~repro.server.admission` — per-tenant token buckets + pending bound;
* :mod:`~repro.server.coalescing` — content-hash sharing of identical compiles;
* :mod:`~repro.server.sessions` — the bounded, idle-evicting document store;
* :mod:`~repro.server.routing` — the method+path router.

Run one from the command line::

    PYTHONPATH=src python -m repro.server --port 8765 --backend threads

or embed one in synchronous code::

    from repro.server import ServerConfig, serve_in_thread

    with serve_in_thread(ServerConfig(port=0)) as handle:
        print(handle.address)   # http://127.0.0.1:<port>
"""

from repro.server.admission import AdmissionController, AdmissionError, TokenBucket
from repro.server.app import (
    CompileServer,
    ServerConfig,
    ServerHandle,
    serve_in_thread,
)
from repro.server.coalescing import Coalescer, content_key
from repro.server.routing import RouteError, Router
from repro.server.schemas import (
    CompileRequest,
    EditRequest,
    OpenRequest,
    SchemaError,
)
from repro.server.sessions import (
    DocumentLimitError,
    DocumentStore,
    UnknownDocumentError,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Coalescer",
    "CompileRequest",
    "CompileServer",
    "DocumentLimitError",
    "DocumentStore",
    "EditRequest",
    "OpenRequest",
    "RouteError",
    "Router",
    "SchemaError",
    "ServerConfig",
    "ServerHandle",
    "TokenBucket",
    "UnknownDocumentError",
    "content_key",
    "serve_in_thread",
]
