"""Figure 7 — "Source Program Decomposition": how the tree is cut into regions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.workload import WorkloadBundle, default_workload
from repro.partition.decomposition import DecompositionPlan, plan_decomposition


@dataclass
class Figure7Result:
    machines: int
    plan: DecompositionPlan

    def rows(self) -> List[dict]:
        return [
            {
                "region": region.label,
                "root_symbol": region.root.symbol.name,
                "nodes": region.node_count,
                "size_bytes": region.size,
                "parent": region.parent_region,
                "children": [self.plan.regions[c].label for c in region.child_regions],
            }
            for region in self.plan.regions
        ]

    def describe(self) -> str:
        return self.plan.describe()


def run_figure7(
    workload: Optional[WorkloadBundle] = None,
    machines: int = 5,
) -> Figure7Result:
    """Decompose the workload tree for ``machines`` evaluators (the paper uses five)."""
    workload = workload or default_workload()
    plan = plan_decomposition(workload.tree, machines)
    return Figure7Result(machines, plan)
