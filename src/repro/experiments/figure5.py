"""Figure 5 — "Evaluator Running Times": running time versus number of machines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.distributed.compiler import CompilerConfiguration
from repro.experiments.workload import WorkloadBundle, default_workload


@dataclass
class Figure5Result:
    """Running times (simulated seconds) per machine count for both evaluators."""

    machine_counts: List[int]
    combined_times: Dict[int, float] = field(default_factory=dict)
    dynamic_times: Dict[int, float] = field(default_factory=dict)

    def speedup(self, evaluator: str, machines: int) -> float:
        times = self.combined_times if evaluator == "combined" else self.dynamic_times
        return times[1] / times[machines]

    def rows(self) -> List[Dict[str, float]]:
        return [
            {
                "machines": machines,
                "dynamic_time": self.dynamic_times[machines],
                "combined_time": self.combined_times[machines],
                "dynamic_speedup": self.speedup("dynamic", machines),
                "combined_speedup": self.speedup("combined", machines),
            }
            for machines in self.machine_counts
        ]

    def describe(self) -> str:
        lines = [
            "Figure 5 — evaluator running times (simulated seconds)",
            f"{'machines':>9} {'dynamic':>10} {'combined':>10} {'dyn x':>7} {'comb x':>7}",
        ]
        for row in self.rows():
            lines.append(
                f"{row['machines']:>9d} {row['dynamic_time']:>10.2f} "
                f"{row['combined_time']:>10.2f} {row['dynamic_speedup']:>7.2f} "
                f"{row['combined_speedup']:>7.2f}"
            )
        return "\n".join(lines)


def run_figure5(
    workload: Optional[WorkloadBundle] = None,
    machine_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    evaluators: Sequence[str] = ("dynamic", "combined"),
) -> Figure5Result:
    """Sweep machine counts for the dynamic and combined parallel evaluators."""
    workload = workload or default_workload()
    result = Figure5Result(list(machine_counts))
    for evaluator in evaluators:
        configuration = CompilerConfiguration(evaluator=evaluator)
        for machines in machine_counts:
            report = workload.compile_tree(machines, configuration)
            if evaluator == "combined":
                result.combined_times[machines] = report.evaluation_time
            else:
                result.dynamic_times[machines] = report.evaluation_time
    return result
