"""Experiment drivers: one function per figure/table of the paper's evaluation.

Each driver returns a small result object with a ``rows()`` (or ``describe()``) method
producing the same rows/series the paper reports; ``benchmarks/`` wraps these drivers in
pytest-benchmark targets and ``EXPERIMENTS.md`` records paper-versus-measured values.
"""

from repro.experiments.workload import default_workload, WorkloadBundle
from repro.experiments.figure5 import run_figure5, Figure5Result
from repro.experiments.figure6 import run_figure6, Figure6Result
from repro.experiments.figure7 import run_figure7, Figure7Result
from repro.experiments.dynamic_fraction import run_dynamic_fraction, DynamicFractionResult
from repro.experiments.librarian import run_librarian_comparison, LibrarianResult
from repro.experiments.sequential import run_sequential_comparison, SequentialResult
from repro.experiments.pipeline_baseline import run_pipeline_baseline, PipelineBaselineResult

__all__ = [
    "default_workload",
    "WorkloadBundle",
    "run_figure5",
    "Figure5Result",
    "run_figure6",
    "Figure6Result",
    "run_figure7",
    "Figure7Result",
    "run_dynamic_fraction",
    "DynamicFractionResult",
    "run_librarian_comparison",
    "LibrarianResult",
    "run_sequential_comparison",
    "SequentialResult",
    "run_pipeline_baseline",
    "PipelineBaselineResult",
]
