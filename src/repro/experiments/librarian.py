"""Text result T2 — string librarian versus naive code propagation.

The paper reports "approximately 1 second improvement in running time, or approximately
10 percent", from shipping each evaluator's code to the librarian exactly once instead
of concatenating and re-transmitting it at every level of the evaluator tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.distributed.compiler import CompilerConfiguration
from repro.experiments.workload import WorkloadBundle, default_workload


@dataclass
class LibrarianResult:
    machines: int
    with_librarian: float
    without_librarian: float
    bytes_with: int
    bytes_without: int

    @property
    def improvement_seconds(self) -> float:
        return self.without_librarian - self.with_librarian

    @property
    def improvement_fraction(self) -> float:
        if self.without_librarian == 0:
            return 0.0
        return self.improvement_seconds / self.without_librarian

    def describe(self) -> str:
        return (
            f"T2 — string librarian on {self.machines} machines: "
            f"{self.without_librarian:.2f}s naive vs {self.with_librarian:.2f}s with librarian "
            f"({self.improvement_seconds:.2f}s, {self.improvement_fraction * 100:.1f}% better); "
            f"network bytes {self.bytes_without} -> {self.bytes_with} "
            f"(paper: ≈1s, ≈10%)"
        )


def run_librarian_comparison(
    workload: Optional[WorkloadBundle] = None,
    machines: int = 5,
) -> LibrarianResult:
    workload = workload or default_workload()
    with_report = workload.compile_tree(
        machines, CompilerConfiguration(evaluator="combined", use_librarian=True)
    )
    without_report = workload.compile_tree(
        machines, CompilerConfiguration(evaluator="combined", use_librarian=False)
    )
    return LibrarianResult(
        machines=machines,
        with_librarian=with_report.evaluation_time,
        without_librarian=without_report.evaluation_time,
        bytes_with=with_report.network_bytes,
        bytes_without=without_report.network_bytes,
    )
