"""The shared experiment workload.

All experiments compile the same synthetic Pascal program (≈1100 source lines,
46 procedures, 6 nested deeper than one level — the shape of the program measured in
the paper).  The parse tree and the compiler are built once and cached, since every
figure sweeps machine counts or configurations over the same input, exactly as the
paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.distributed.compiler import CompilationReport, CompilerConfiguration
from repro.pascal.compiler import PascalCompiler
from repro.pascal.programs import generate_program
from repro.tree.node import ParseTreeNode
from repro.tree.stats import TreeStatistics, tree_statistics


@dataclass
class WorkloadBundle:
    """The compiled-in experiment input."""

    source: str
    tree: ParseTreeNode
    compiler: PascalCompiler
    statistics: TreeStatistics

    @property
    def source_lines(self) -> int:
        return self.source.count("\n") + 1

    def compile_tree(
        self,
        machines: int,
        configuration: Optional[CompilerConfiguration] = None,
        backend: Optional[str] = None,
        substrate: Optional["object"] = None,
    ) -> CompilationReport:
        """Compile the cached tree on the registry's ``pascal`` engine.

        Every figure sweeps machine counts or configurations over this one tree;
        routing through :func:`repro.api.engine_for` shares the registry-cached
        grammar analyses with the rest of the front door.  When no explicit
        ``configuration`` is given, the bundle compiler's own configuration is
        honoured (it is the knob callers customise when building a workload).
        """
        from repro.api import engine_for

        return engine_for(
            "pascal", configuration=configuration or self.compiler.configuration
        ).compile_tree(self.tree, machines, backend=backend, substrate=substrate)


@lru_cache(maxsize=4)
def default_workload(
    procedures: int = 46,
    nested_procedures: int = 6,
    statements_per_procedure: int = 4,
    seed: int = 1987,
) -> WorkloadBundle:
    """Build (and cache) the default workload used by every experiment."""
    source = generate_program(
        procedures=procedures,
        nested_procedures=nested_procedures,
        statements_per_procedure=statements_per_procedure,
        main_statements=20,
        seed=seed,
    )
    compiler = PascalCompiler()
    tree = compiler.parse(source)
    return WorkloadBundle(source, tree, compiler, tree_statistics(tree))
