"""Text result T3 — sequential compilation times and parser time.

The paper compares its sequential evaluator against the vendor compiler and reports
parser time separately ("our parser takes about 2 seconds...").  Here we report the
simulated sequential evaluation time of the combined (= static) and dynamic evaluators
plus the modelled parse time, and the real (wall-clock) Python evaluation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.distributed.compiler import CompilerConfiguration
from repro.experiments.workload import WorkloadBundle, default_workload


@dataclass
class SequentialResult:
    combined_time: float
    dynamic_time: float
    parse_time: float
    code_bytes: int
    rules_evaluated: int

    @property
    def dynamic_overhead(self) -> float:
        """How much slower the dynamic evaluator is sequentially (paper: noticeably)."""
        if self.combined_time == 0:
            return 0.0
        return self.dynamic_time / self.combined_time

    def rows(self) -> list:
        return [
            {"configuration": "combined (static) sequential", "seconds": self.combined_time},
            {"configuration": "dynamic sequential", "seconds": self.dynamic_time},
            {"configuration": "parser", "seconds": self.parse_time},
        ]

    def describe(self) -> str:
        return (
            "T3 — sequential times (simulated seconds): "
            f"combined {self.combined_time:.2f}, dynamic {self.dynamic_time:.2f} "
            f"({self.dynamic_overhead:.2f}x), parser {self.parse_time:.2f}; "
            f"generated code {self.code_bytes} bytes from {self.rules_evaluated} rule evaluations"
        )


def run_sequential_comparison(workload: Optional[WorkloadBundle] = None) -> SequentialResult:
    workload = workload or default_workload()
    combined = workload.compile_tree(1, CompilerConfiguration(evaluator="combined"))
    dynamic = workload.compile_tree(1, CompilerConfiguration(evaluator="dynamic"))
    return SequentialResult(
        combined_time=combined.evaluation_time,
        dynamic_time=dynamic.evaluation_time,
        parse_time=combined.parse_time,
        code_bytes=len(combined.code_text("code")),
        rules_evaluated=combined.statistics.rules_evaluated,
    )
