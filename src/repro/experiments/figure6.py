"""Figure 6 — "Behavior of Combined Evaluator": per-evaluator activity timeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.distributed.compiler import CompilationReport, CompilerConfiguration
from repro.experiments.workload import WorkloadBundle, default_workload
from repro.runtime.machine import ActivityInterval, ActivityKind


@dataclass
class Figure6Result:
    """The activity timeline of one parallel combined compilation."""

    machines: int
    evaluation_time: float
    timeline: Dict[str, List[ActivityInterval]]
    phase_totals: Dict[str, float]
    utilization: Dict[str, float]
    report: CompilationReport

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for machine, intervals in sorted(self.timeline.items()):
            busy = sum(interval.duration for interval in intervals)
            rows.append(
                {
                    "machine": machine,
                    "busy": busy,
                    "utilization": self.utilization.get(machine, 0.0),
                    "intervals": len(intervals),
                }
            )
        return rows

    def ascii_timeline(self, width: int = 72) -> str:
        """A textual rendering of Figure 6: thick (#) = busy, thin (-) = idle."""
        horizon = max(self.evaluation_time, 1e-9)
        lines = [
            f"Figure 6 — combined evaluator behaviour on {self.machines} machines "
            f"(total {self.evaluation_time:.2f}s simulated)"
        ]
        for machine, intervals in sorted(self.timeline.items()):
            cells = ["-"] * width
            for interval in intervals:
                start = int(interval.start / horizon * (width - 1))
                end = max(start, int(interval.end / horizon * (width - 1)))
                for cell in range(start, min(end + 1, width)):
                    cells[cell] = "#"
            lines.append(f"{machine:>12} |{''.join(cells)}|")
        lines.append(
            "phases: "
            + ", ".join(f"{name} {value:.2f}s" for name, value in sorted(self.phase_totals.items()))
        )
        return "\n".join(lines)


def run_figure6(
    workload: Optional[WorkloadBundle] = None,
    machines: int = 5,
    evaluator: str = "combined",
) -> Figure6Result:
    """Run one parallel compilation and extract the per-machine activity trace."""
    workload = workload or default_workload()
    report = workload.compile_tree(machines, CompilerConfiguration(evaluator=evaluator))
    phase_totals: Dict[str, float] = {}
    for intervals in report.timeline.values():
        for interval in intervals:
            phase_totals[interval.kind.value] = (
                phase_totals.get(interval.kind.value, 0.0) + interval.duration
            )
    return Figure6Result(
        machines=machines,
        evaluation_time=report.evaluation_time,
        timeline=report.timeline,
        phase_totals=phase_totals,
        utilization=report.utilization,
        report=report,
    )
