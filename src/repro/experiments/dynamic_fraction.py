"""Text result T1 — fraction of attributes evaluated dynamically by the combined
evaluator ("on average less than 10 percent")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.distributed.compiler import CompilerConfiguration
from repro.experiments.workload import WorkloadBundle, default_workload


@dataclass
class DynamicFractionResult:
    fractions: Dict[int, float] = field(default_factory=dict)

    @property
    def average(self) -> float:
        if not self.fractions:
            return 0.0
        return sum(self.fractions.values()) / len(self.fractions)

    def rows(self) -> List[dict]:
        return [
            {"machines": machines, "dynamic_fraction": fraction}
            for machines, fraction in sorted(self.fractions.items())
        ]

    def describe(self) -> str:
        lines = ["T1 — fraction of attribute instances scheduled dynamically (combined evaluator)"]
        for row in self.rows():
            lines.append(f"  {row['machines']} machines: {row['dynamic_fraction'] * 100:.2f}%")
        lines.append(f"  average: {self.average * 100:.2f}%  (paper: < 10%)")
        return "\n".join(lines)


def run_dynamic_fraction(
    workload: Optional[WorkloadBundle] = None,
    machine_counts: Sequence[int] = (2, 3, 4, 5, 6),
) -> DynamicFractionResult:
    workload = workload or default_workload()
    configuration = CompilerConfiguration(evaluator="combined")
    result = DynamicFractionResult()
    for machines in machine_counts:
        report = workload.compile_tree(machines, configuration)
        result.fractions[machines] = report.dynamic_fraction
    return result
