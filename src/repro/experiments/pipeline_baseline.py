"""Text result T4 — the pipelined-compiler alternative (speedup limited to ≈2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.pipeline import PipelinedCompilerModel
from repro.experiments.sequential import run_sequential_comparison
from repro.experiments.workload import WorkloadBundle, default_workload


@dataclass
class PipelineBaselineResult:
    chunks: int
    stage_count: int
    sequential_time: float
    pipelined_time: float
    speedup: float
    attribute_grammar_speedup: float

    def describe(self) -> str:
        return (
            f"T4 — pipelined compiler baseline: {self.stage_count} stages, "
            f"{self.chunks} chunks, speedup {self.speedup:.2f} "
            f"(paper: ≈2); parallel attribute-grammar compiler on 5 machines "
            f"reaches {self.attribute_grammar_speedup:.2f}x on the same workload"
        )


def run_pipeline_baseline(
    workload: Optional[WorkloadBundle] = None,
    chunks: int = 46,
) -> PipelineBaselineResult:
    """Compare pipelined compilation against the parallel attribute-grammar compiler."""
    workload = workload or default_workload()
    sequential = run_sequential_comparison(workload)
    model = PipelinedCompilerModel()
    pipeline = model.run(total_work_seconds=sequential.combined_time, chunks=chunks)

    from repro.distributed.compiler import CompilerConfiguration

    parallel = workload.compile_tree(5, CompilerConfiguration(evaluator="combined"))
    ag_speedup = sequential.combined_time / parallel.evaluation_time
    return PipelineBaselineResult(
        chunks=chunks,
        stage_count=pipeline.stages,
        sequential_time=pipeline.sequential_time,
        pipelined_time=pipeline.pipelined_time,
        speedup=pipeline.speedup,
        attribute_grammar_speedup=ag_speedup,
    )
