"""Parse-tree statistics used by reports and by the decomposition planner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.tree.node import ParseTreeNode


@dataclass
class TreeStatistics:
    """Aggregate statistics of one parse tree."""

    node_count: int = 0
    terminal_count: int = 0
    nonterminal_count: int = 0
    attribute_instance_count: int = 0
    max_depth: int = 0
    linearized_size: int = 0
    nodes_by_symbol: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        return {
            "node_count": self.node_count,
            "terminal_count": self.terminal_count,
            "nonterminal_count": self.nonterminal_count,
            "attribute_instance_count": self.attribute_instance_count,
            "max_depth": self.max_depth,
            "linearized_size": self.linearized_size,
        }


def tree_statistics(root: ParseTreeNode) -> TreeStatistics:
    """Compute :class:`TreeStatistics` for the subtree rooted at ``root``."""
    stats = TreeStatistics()
    stack = [(root, 1)]
    while stack:
        node, depth = stack.pop()
        stats.node_count += 1
        stats.max_depth = max(stats.max_depth, depth)
        stats.nodes_by_symbol[node.symbol.name] = (
            stats.nodes_by_symbol.get(node.symbol.name, 0) + 1
        )
        if node.is_terminal:
            stats.terminal_count += 1
            stats.attribute_instance_count += len(node.symbol.attribute_names)  # type: ignore[attr-defined]
            value = node.token_value
            stats.linearized_size += 4 + (len(value) if isinstance(value, str) else 4)
        else:
            stats.nonterminal_count += 1
            stats.attribute_instance_count += len(node.symbol.attribute_names)  # type: ignore[attr-defined]
            stats.linearized_size += 8
        for child in node.children:
            stack.append((child, depth + 1))
    return stats
