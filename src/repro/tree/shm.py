"""Zero-copy region shipping over ``multiprocessing.shared_memory``.

On the processes substrate both ends of the wire share a kernel, so a packed region
does not have to be pickled into the mailbox queue at all: the parser copies the
:class:`~repro.tree.linearize.PackedTree` int arrays (and the pickled token values)
into one POSIX shared-memory segment and ships a tiny :class:`SharedPackedTree`
*handle* — segment name plus slice lengths — instead of the byte blob.  The worker
maps the segment and unpacks straight out of ``memoryview`` casts over the mapping;
the code arrays are never copied into worker memory.

Lifetime is owned by the *shipping session*: :func:`share_packed` returns the handle
together with a :class:`ShippedSegment` owner whose :meth:`~ShippedSegment.release`
closes and unlinks the segment.  Sessions adopt every owner they ship and release
them all when the session settles, aborts, or is shut down — including failure paths
(worker death, mid-job shutdown) — so segments never outlive the compile that
created them.  On POSIX, unlinking while a worker still has the segment mapped is
safe: the mapping stays valid until the worker closes it.

Worker-side attaches deliberately bypass the ``resource_tracker``: pooled workers
outlive many compiles, and the tracker would otherwise accumulate one "leaked
shared_memory" entry per shipped region (spurious unlink attempts and warnings at
worker exit).  The creating process keeps normal tracking as a crash safety net.

The handle is transparent to the rest of the system: it answers ``size_bytes()``
with the same abstract accounting as the packed/linearized forms (the cost model
charges for the *tree*, not the transport), and ``repro.tree.linearize.rebuild``
dispatches to :meth:`SharedPackedTree.rebuild` by duck type, so evaluator nodes need
no changes.  Substrates that cannot share memory (sockets, plain pickling) are never
handed a handle — the parser checks the substrate's ``shared_ship`` capability and
falls back to the packed-bytes path.
"""

from __future__ import annotations

import itertools
import os
import pickle
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.faults import plan as _faults
from repro.grammar.grammar import AttributeGrammar
from repro.tree.linearize import PackedTree, unpack
from repro.tree.node import ParseTreeNode

try:  # pragma: no cover - absent only on platforms without shared memory support
    from multiprocessing.shared_memory import SharedMemory
except ImportError:  # pragma: no cover
    SharedMemory = None  # type: ignore[assignment]


def shared_memory_available() -> bool:
    """Whether this platform can back region ships with shared-memory segments."""
    return SharedMemory is not None


class SharedPackedTree:
    """Picklable handle to a packed tree parked in a shared-memory segment.

    The segment layout is ``codes | hole_meta | pickled token values``; the handle
    carries the byte length of each slice so the receiver can cast views without
    any framing inside the segment.
    """

    __slots__ = (
        "segment_name",
        "codes_bytes",
        "holes_bytes",
        "values_bytes",
        "root_symbol",
        "_size_bytes",
    )

    def __init__(
        self,
        segment_name: str,
        codes_bytes: int,
        holes_bytes: int,
        values_bytes: int,
        root_symbol: str,
        size_bytes: int,
    ):
        self.segment_name = segment_name
        self.codes_bytes = codes_bytes
        self.holes_bytes = holes_bytes
        self.values_bytes = values_bytes
        self.root_symbol = root_symbol
        self._size_bytes = size_bytes

    def size_bytes(self) -> int:
        """Abstract transmission size — identical to the packed form it parks."""
        return self._size_bytes

    def __reduce__(self):
        return (
            SharedPackedTree,
            (
                self.segment_name,
                self.codes_bytes,
                self.holes_bytes,
                self.values_bytes,
                self.root_symbol,
                self._size_bytes,
            ),
        )

    def rebuild(
        self, grammar: AttributeGrammar
    ) -> Tuple[ParseTreeNode, Dict[int, ParseTreeNode]]:
        """Rebuild the subtree straight out of the mapped segment (receiver side)."""
        return rebuild_shared(grammar, self)


class ShippedSegment:
    """Owner of one shipped segment; releasing closes and unlinks it (idempotent)."""

    __slots__ = ("name", "_memory")

    def __init__(self, name: str, memory: Any):
        self.name = name
        self._memory = memory

    def release(self) -> None:
        memory = self._memory
        if memory is None:
            return
        self._memory = None
        _live_segments.pop(self.name, None)
        if _faults.ACTIVE is not None:
            hit = _faults.ACTIVE.check("shm.unlink", self.name)
            if hit is not None:
                if hit.action in ("delay", "stall"):
                    hit.sleep()
                else:
                    # Deterministically exercise the tolerated unlink race: the
                    # segment vanishes out from under release() (as after a
                    # crashed-session sweep) and the unlink below must swallow
                    # the FileNotFoundError.  Never leaks — the unlink happened.
                    try:
                        memory.unlink()
                    except FileNotFoundError:
                        pass
        try:
            memory.close()
            memory.unlink()
        except FileNotFoundError:  # already unlinked (e.g. crashed-session sweep)
            pass


#: Segments created by this process that have not been released yet, by name.
#: The test suite asserts this is empty after every test (no leaked segments).
_live_segments: Dict[str, ShippedSegment] = {}

_segment_counter = itertools.count()

_SEGMENT_PREFIX = "repro_ship_"


def live_segment_names() -> List[str]:
    """Names of segments this process created and has not released (leak probe)."""
    return sorted(_live_segments)


def system_segment_names() -> List[str]:
    """This process's ship segments still present in the OS namespace (leak probe).

    Scans ``/dev/shm`` for this pid's name prefix; returns ``[]`` where that
    directory does not exist (non-Linux), so callers can assert emptiness anywhere.
    """
    prefix = f"{_SEGMENT_PREFIX}{os.getpid()}_"
    try:
        entries = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


def share_packed(packed: PackedTree) -> Tuple[SharedPackedTree, ShippedSegment]:
    """Park ``packed`` in a fresh shared-memory segment.

    Returns the picklable handle to ship and the :class:`ShippedSegment` owner the
    shipping session must adopt (and later release).  Raises ``OSError`` when the
    platform refuses (e.g. ``/dev/shm`` full) — callers fall back to shipping the
    packed bytes themselves.
    """
    if SharedMemory is None:
        raise OSError("shared memory is not available on this platform")
    if _faults.ACTIVE is not None:
        hit = _faults.ACTIVE.check("shm.share")
        if hit is not None:
            if hit.action in ("delay", "stall"):
                hit.sleep()
            else:
                # An OSError here is the documented "platform refused" contract:
                # the shipping parser falls back to packed-bytes transport.
                raise OSError(
                    f"injected shm.share fault ({hit.action}): segment refused"
                )
    codes_blob = packed.codes.tobytes()
    holes_blob = packed.hole_meta.tobytes()
    values_blob = pickle.dumps(packed.values, protocol=pickle.HIGHEST_PROTOCOL)
    total = len(codes_blob) + len(holes_blob) + len(values_blob)
    while True:
        name = f"{_SEGMENT_PREFIX}{os.getpid()}_{next(_segment_counter)}"
        try:
            memory = SharedMemory(name=name, create=True, size=max(total, 1))
            break
        except FileExistsError:  # stale name from a crashed predecessor: skip it
            continue
    try:
        buffer = memory.buf
        offset = 0
        for blob in (codes_blob, holes_blob, values_blob):
            buffer[offset : offset + len(blob)] = blob
            offset += len(blob)
    except BaseException:
        memory.close()
        memory.unlink()
        raise
    handle = SharedPackedTree(
        name,
        len(codes_blob),
        len(holes_blob),
        len(values_blob),
        packed.root_symbol,
        packed.size_bytes(),
    )
    segment = ShippedSegment(name, memory)
    _live_segments[name] = segment
    return handle, segment


def _attach(name: str) -> Any:
    """Map an existing segment without registering it with the resource tracker."""
    if _faults.ACTIVE is not None:
        hit = _faults.ACTIVE.check("shm.attach", name)
        if hit is not None:
            if hit.action in ("delay", "stall"):
                hit.sleep()
            else:
                from repro.faults.plan import FaultError

                raise FaultError("shm.attach", hit.action, name)
    try:
        return SharedMemory(name=name, track=False)  # Python 3.13+
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]


def rebuild_shared(
    grammar: AttributeGrammar, handle: SharedPackedTree
) -> Tuple[ParseTreeNode, Dict[int, ParseTreeNode]]:
    """Rebuild a subtree from its shared-memory handle (receiver side).

    The int arrays are read through ``memoryview`` casts over the mapping — no
    copies; only the (typically small) token-value pickle is materialized.  The
    mapping is closed before returning; the segment itself stays linked until the
    shipping session releases it.
    """
    if SharedMemory is None:
        raise OSError("shared memory is not available on this platform")
    memory = _attach(handle.segment_name)
    try:
        view = memoryview(memory.buf)
        try:
            codes_end = handle.codes_bytes
            holes_end = codes_end + handle.holes_bytes
            values_end = holes_end + handle.values_bytes
            codes = view[:codes_end].cast("i")
            holes = view[codes_end:holes_end].cast("q")
            try:
                if handle.values_bytes:
                    values = pickle.loads(bytes(view[holes_end:values_end]))
                else:
                    values = []
                packed = PackedTree(
                    codes, values, holes, handle.root_symbol, handle._size_bytes
                )
                return unpack(grammar, packed)
            finally:
                codes.release()
                holes.release()
        finally:
            view.release()
    finally:
        memory.close()
