"""Parse-tree nodes.

A :class:`ParseTreeNode` represents either a nonterminal node (with the production that
derived it and its children) or a terminal leaf (with the token value computed by the
scanner).  Attribute values are stored directly on the node in ``attributes``; the
*instance* of attribute ``a`` at node ``n`` is identified by the pair ``(n.node_id, a)``,
which is what the evaluators and the distributed protocol use as keys.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.grammar.productions import AttributeRef, Production
from repro.grammar.symbols import Nonterminal, Symbol, Terminal

_node_counter = itertools.count(1)


def node_wire_size(node: "ParseTreeNode") -> int:
    """Abstract transmission size of one node in a linearized subtree.

    Terminals are charged for their token text, nonterminal nodes for a small fixed
    header.  This is the single definition of the size model shared by
    :meth:`ParseTreeNode.linearized_size`, the decomposition planner and the packed
    codec (hole records, which replace whole subtrees, are charged separately).
    """
    if node.symbol.is_terminal:
        value = node.token_value
        return 4 + (len(value) if isinstance(value, str) else 4)
    return 8


class AttributeInstance:
    """Identifier of one attribute instance: attribute ``name`` at node ``node_id``."""

    __slots__ = ("node_id", "name")

    def __init__(self, node_id: int, name: str):
        self.node_id = node_id
        self.name = name

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AttributeInstance)
            and self.node_id == other.node_id
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.node_id, self.name))

    def __repr__(self) -> str:
        return f"@{self.node_id}.{self.name}"


class ParseTreeNode:
    """One node of a parse tree.

    :param symbol: the grammar symbol at this node.
    :param production: the production applied at this node (``None`` for terminals).
    :param children: child nodes, one per right-hand-side symbol of the production.
    :param token_value: scanner-supplied value for terminal leaves.
    """

    __slots__ = (
        "node_id",
        "symbol",
        "production",
        "children",
        "parent",
        "child_index",
        "token_value",
        "attributes",
    )

    def __init__(
        self,
        symbol: Symbol,
        production: Optional[Production] = None,
        children: Optional[List["ParseTreeNode"]] = None,
        token_value: Any = None,
    ):
        self.node_id = next(_node_counter)
        self.symbol = symbol
        self.production = production
        self.children: List[ParseTreeNode] = children or []
        self.parent: Optional[ParseTreeNode] = None
        self.child_index: Optional[int] = None  # 1-based position under parent
        self.token_value = token_value
        self.attributes: Dict[str, Any] = {}
        for index, child in enumerate(self.children, start=1):
            child.parent = self
            child.child_index = index
        if production is not None:
            rhs = production.rhs
            if len(self.children) != len(rhs):
                raise ValueError(
                    f"node for {production.label!r} needs {len(rhs)} children, "
                    f"got {len(self.children)}"
                )
            for child, expected in zip(self.children, rhs):
                # Trees built from a grammar share its symbol singletons, so the
                # identity test short-circuits the (much slower) structural __eq__.
                if child.symbol is not expected and child.symbol != expected:
                    raise ValueError(
                        f"node for {production.label!r}: child {child.symbol.name!r} does "
                        f"not match expected symbol {expected.name!r}"
                    )
        if production is not None and symbol.is_terminal:
            raise ValueError("terminal nodes cannot carry a production")

    # ----------------------------------------------------------------- queries

    @property
    def is_terminal(self) -> bool:
        return self.symbol.is_terminal

    def instance(self, attribute_name: str) -> AttributeInstance:
        return AttributeInstance(self.node_id, attribute_name)

    def has_attribute_value(self, name: str) -> bool:
        if self.is_terminal:
            terminal = self.symbol
            assert isinstance(terminal, Terminal)
            return terminal.has_attribute(name)
        return name in self.attributes

    def get_attribute(self, name: str) -> Any:
        """Return the value of an attribute, raising ``KeyError`` if unevaluated."""
        if self.is_terminal:
            terminal = self.symbol
            assert isinstance(terminal, Terminal)
            if terminal.has_attribute(name):
                return self.token_value
            raise KeyError(f"terminal {terminal.name!r} has no attribute {name!r}")
        if name not in self.attributes:
            raise KeyError(
                f"attribute {name!r} of node {self.node_id} ({self.symbol.name}) "
                "has not been evaluated"
            )
        return self.attributes[name]

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def resolve(self, ref: AttributeRef) -> "ParseTreeNode":
        """Return the node an occurrence of this node's production refers to."""
        if self.production is None:
            raise ValueError("terminal nodes have no production occurrences")
        if ref.position == 0:
            return self
        return self.children[ref.position - 1]

    # --------------------------------------------------------------- traversal

    def walk(self) -> Iterator["ParseTreeNode"]:
        """Pre-order traversal of the subtree rooted here (iterative, deep-tree safe)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> Iterator["ParseTreeNode"]:
        for node in self.walk():
            if not node.children:
                yield node

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.walk())

    def linearized_size(self) -> int:
        """Abstract size in bytes of the linearized subtree, used by the split policy.

        Terminals are charged for their token text, nonterminal nodes for a small fixed
        header, roughly mirroring a compact network representation of the tree.
        """
        return sum(node_wire_size(node) for node in self.walk())

    def path_to_root(self) -> List["ParseTreeNode"]:
        path = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            path.append(node)
        return path

    def pretty(self, indent: int = 0, max_depth: Optional[int] = None) -> str:
        """Readable multi-line rendering used by examples and error messages."""
        pad = "  " * indent
        if self.is_terminal:
            value = f" {self.token_value!r}" if self.token_value is not None else ""
            return f"{pad}{self.symbol.name}{value}"
        lines = [f"{pad}{self.symbol.name}"]
        if max_depth is not None and indent + 1 > max_depth:
            lines.append(f"{pad}  ...")
            return "\n".join(lines)
        for child in self.children:
            lines.append(child.pretty(indent + 1, max_depth))
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self.is_terminal:
            return f"ParseTreeNode(terminal {self.symbol.name!r}, id={self.node_id})"
        return (
            f"ParseTreeNode({self.symbol.name!r}, id={self.node_id}, "
            f"children={len(self.children)})"
        )


def make_terminal(terminal: Terminal, value: Any = None) -> ParseTreeNode:
    """Create a terminal leaf node."""
    return ParseTreeNode(terminal, token_value=value)


def make_node(production: Production, children: List[ParseTreeNode]) -> ParseTreeNode:
    """Create a nonterminal node for ``production`` with the given children."""
    return ParseTreeNode(production.lhs, production=production, children=children)
