"""Linearization of parse (sub)trees for network transmission.

The paper's parser ships each detached subtree to its evaluator machine in a linearized
form; the evaluator reconstructs the subtree before evaluation.  We mirror that with a
compact pre-order list-of-records representation whose abstract size is what the network
model charges for the transfer.

A linearized subtree may contain *holes*: positions at which a nested subtree was itself
detached and shipped to a different evaluator.  Holes are recorded with the nonterminal
name and the identifier of the remote region so that the receiving evaluator can set up
remote-attribute placeholders.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.grammar.grammar import AttributeGrammar
from repro.tree.node import ParseTreeNode, make_node, make_terminal


class LinearizedTree:
    """Flat representation of a subtree.

    ``records`` is a pre-order list of tuples:

    * ``("T", terminal_name, token_value)`` for terminal leaves,
    * ``("P", production_index)`` for nonterminal nodes (children follow in order),
    * ``("H", nonterminal_name, region_id, original_node_id)`` for holes standing in for
      subtrees evaluated remotely.
    """

    __slots__ = ("records", "root_symbol")

    def __init__(self, records: List[Tuple], root_symbol: str):
        self.records = records
        self.root_symbol = root_symbol

    def size_bytes(self) -> int:
        """Abstract transmission size of the linearized form."""
        total = 0
        for record in self.records:
            if record[0] == "T":
                value = record[2]
                total += 4 + (len(value) if isinstance(value, str) else 4)
            elif record[0] == "P":
                total += 8
            else:
                total += 16
        return total

    def __len__(self) -> int:
        return len(self.records)


def linearize(
    root: ParseTreeNode,
    holes: Optional[Dict[int, int]] = None,
) -> LinearizedTree:
    """Linearize the subtree rooted at ``root``.

    :param holes: maps ``node_id`` of detached child subtrees to the region id they were
        assigned to.  Those subtrees are replaced by hole records and not descended into.
    """
    holes = holes or {}
    records: List[Tuple] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.node_id in holes and node is not root:
            records.append(("H", node.symbol.name, holes[node.node_id], node.node_id))
            continue
        if node.is_terminal:
            records.append(("T", node.symbol.name, node.token_value))
        else:
            assert node.production is not None
            records.append(("P", node.production.index))
            stack.extend(reversed(node.children))
    return LinearizedTree(records, root.symbol.name)


def delinearize(
    grammar: AttributeGrammar, linearized: LinearizedTree
) -> Tuple[ParseTreeNode, Dict[int, ParseTreeNode]]:
    """Rebuild a subtree from its linearized form.

    Returns the new root node and a mapping from region id to the hole placeholder nodes
    created for remotely evaluated subtrees.  Hole nodes carry the nonterminal symbol but
    no production or children; their synthesized attributes are later supplied from the
    network and their inherited attributes must be exported to the owning evaluator.
    """
    position = 0
    holes: Dict[int, ParseTreeNode] = {}

    def build() -> ParseTreeNode:
        nonlocal position
        if position >= len(linearized.records):
            raise ValueError("truncated linearized tree")
        record = linearized.records[position]
        position += 1
        tag = record[0]
        if tag == "T":
            terminal = grammar.terminals[record[1]]
            return make_terminal(terminal, record[2])
        if tag == "H":
            nonterminal = grammar.nonterminals[record[1]]
            node = ParseTreeNode(nonterminal)
            holes[record[2]] = node
            return node
        if tag == "P":
            production = grammar.productions[record[1]]
            children = [build() for _ in production.rhs]
            return make_node(production, children)
        raise ValueError(f"unknown linearized record tag {tag!r}")

    root = build()
    if position != len(linearized.records):
        raise ValueError("trailing records after linearized tree")
    return root, holes
