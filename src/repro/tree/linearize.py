"""Linearization of parse (sub)trees for network transmission.

The paper's parser ships each detached subtree to its evaluator machine in a linearized
form; the evaluator reconstructs the subtree before evaluation.  We mirror that with a
compact pre-order list-of-records representation whose abstract size is what the network
model charges for the transfer.

A linearized subtree may contain *holes*: positions at which a nested subtree was itself
detached and shipped to a different evaluator.  Holes are recorded with the nonterminal
name and the identifier of the remote region so that the receiving evaluator can set up
remote-attribute placeholders.

Two wire representations share the same pre-order record model:

* :class:`LinearizedTree` — readable list-of-tuples records (tag strings, symbol
  names).  The simulated substrate uses it exclusively, keeping every figure
  reproduction byte-identical.
* :class:`PackedTree` — the compact array-of-ints codec used by the real substrates.
  Symbols and productions are interned against per-grammar tables
  (:class:`GrammarCodec`, built once per grammar per process and cached), so a whole
  subtree crosses a process boundary as one machine-typed int array plus a flat list
  of token values — no per-record tuples or symbol-name strings to pickle.  The
  symbol tables themselves never cross: both ends derive them deterministically from
  the grammar they already share (shipped once per worker via the job bundle).
"""

from __future__ import annotations

import weakref
from array import array
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.grammar.grammar import AttributeGrammar
from repro.tree.node import ParseTreeNode, make_node, make_terminal, node_wire_size


class LinearizedTree:
    """Flat representation of a subtree.

    ``records`` is a pre-order list of tuples:

    * ``("T", terminal_name, token_value)`` for terminal leaves,
    * ``("P", production_index)`` for nonterminal nodes (children follow in order),
    * ``("H", nonterminal_name, region_id, original_node_id)`` for holes standing in for
      subtrees evaluated remotely.
    """

    __slots__ = ("records", "root_symbol")

    def __init__(self, records: List[Tuple], root_symbol: str):
        self.records = records
        self.root_symbol = root_symbol

    def size_bytes(self) -> int:
        """Abstract transmission size of the linearized form."""
        total = 0
        for record in self.records:
            if record[0] == "T":
                value = record[2]
                total += 4 + (len(value) if isinstance(value, str) else 4)
            elif record[0] == "P":
                total += 8
            else:
                total += 16
        return total

    def __len__(self) -> int:
        return len(self.records)


def linearize(
    root: ParseTreeNode,
    holes: Optional[Dict[int, int]] = None,
) -> LinearizedTree:
    """Linearize the subtree rooted at ``root``.

    :param holes: maps ``node_id`` of detached child subtrees to the region id they were
        assigned to.  Those subtrees are replaced by hole records and not descended into.
    """
    holes = holes or {}
    records: List[Tuple] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.node_id in holes and node is not root:
            records.append(("H", node.symbol.name, holes[node.node_id], node.node_id))
            continue
        if node.is_terminal:
            records.append(("T", node.symbol.name, node.token_value))
        else:
            assert node.production is not None
            records.append(("P", node.production.index))
            stack.extend(reversed(node.children))
    return LinearizedTree(records, root.symbol.name)


def delinearize(
    grammar: AttributeGrammar, linearized: LinearizedTree
) -> Tuple[ParseTreeNode, Dict[int, ParseTreeNode]]:
    """Rebuild a subtree from its linearized form.

    Returns the new root node and a mapping from region id to the hole placeholder nodes
    created for remotely evaluated subtrees.  Hole nodes carry the nonterminal symbol but
    no production or children; their synthesized attributes are later supplied from the
    network and their inherited attributes must be exported to the owning evaluator.
    """
    position = 0
    holes: Dict[int, ParseTreeNode] = {}

    def build() -> ParseTreeNode:
        nonlocal position
        if position >= len(linearized.records):
            raise ValueError("truncated linearized tree")
        record = linearized.records[position]
        position += 1
        tag = record[0]
        if tag == "T":
            terminal = grammar.terminals[record[1]]
            return make_terminal(terminal, record[2])
        if tag == "H":
            nonterminal = grammar.nonterminals[record[1]]
            node = ParseTreeNode(nonterminal)
            holes[record[2]] = node
            return node
        if tag == "P":
            production = grammar.productions[record[1]]
            children = [build() for _ in production.rhs]
            return make_node(production, children)
        raise ValueError(f"unknown linearized record tag {tag!r}")

    root = build()
    if position != len(linearized.records):
        raise ValueError("trailing records after linearized tree")
    return root, holes


# ------------------------------------------------------------------ packed codec

#: Record tags in the low two bits of a packed code word.
_TAG_PRODUCTION = 0
_TAG_TERMINAL = 1
_TAG_HOLE = 2


class GrammarCodec:
    """Interned symbol/production tables for the packed codec, one per grammar.

    The tables are derived purely from the grammar's own (insertion-ordered) symbol
    dictionaries, so a worker that unpickled the same grammar builds byte-identical
    tables without anything extra crossing the wire.
    """

    # No reference back to the grammar: the cache below weak-keys on the grammar, and
    # a value that strongly referenced its key would never let either be collected.
    __slots__ = (
        "terminal_list",
        "terminal_index",
        "nonterminal_list",
        "nonterminal_index",
        "production_arity",
    )

    def __init__(self, grammar: AttributeGrammar):
        self.terminal_list = list(grammar.terminals.values())
        self.terminal_index = {
            terminal.name: index for index, terminal in enumerate(self.terminal_list)
        }
        self.nonterminal_list = list(grammar.nonterminals.values())
        self.nonterminal_index = {
            nonterminal.name: index
            for index, nonterminal in enumerate(self.nonterminal_list)
        }
        self.production_arity = array(
            "q", (len(production.rhs) for production in grammar.productions)
        )


_codec_cache: "weakref.WeakKeyDictionary[AttributeGrammar, GrammarCodec]" = (
    weakref.WeakKeyDictionary()
)


def codec_for(grammar: AttributeGrammar) -> GrammarCodec:
    """The cached :class:`GrammarCodec` of ``grammar`` (built on first use)."""
    codec = _codec_cache.get(grammar)
    if codec is None:
        codec = GrammarCodec(grammar)
        _codec_cache[grammar] = codec
    return codec


class PackedTree:
    """Array-of-ints form of a linearized subtree.

    ``codes`` holds one 32-bit int per pre-order record: the record tag in the low
    two bits and an interned table index in the rest — a production index for nonterminal
    nodes, a terminal-table index for leaves, a nonterminal-table index for holes.
    ``values`` carries the token values of terminal records in order; ``hole_meta``
    carries ``(region_id, original_node_id)`` pairs of hole records in order.
    ``size_bytes`` is precomputed at pack time with exactly the same accounting as
    :meth:`LinearizedTree.size_bytes`, so the network cost model charges identically
    for either representation.
    """

    __slots__ = ("codes", "values", "hole_meta", "root_symbol", "_size_bytes")

    def __init__(
        self,
        codes: array,
        values: List[Any],
        hole_meta: array,
        root_symbol: str,
        size_bytes: int,
    ):
        self.codes = codes
        self.values = values
        self.hole_meta = hole_meta
        self.root_symbol = root_symbol
        self._size_bytes = size_bytes

    def size_bytes(self) -> int:
        """Abstract transmission size (identical to the linearized form's)."""
        return self._size_bytes

    def __len__(self) -> int:
        return len(self.codes)

    def __reduce__(self):
        return (
            PackedTree,
            (self.codes, self.values, self.hole_meta, self.root_symbol, self._size_bytes),
        )


def pack(
    grammar: AttributeGrammar,
    root: ParseTreeNode,
    holes: Optional[Dict[int, int]] = None,
) -> PackedTree:
    """Pack the subtree rooted at ``root`` into the array-of-ints codec.

    Same traversal and ``holes`` contract as :func:`linearize`; the two forms encode
    identical record sequences and rebuild identical trees.
    """
    codec = codec_for(grammar)
    terminal_index = codec.terminal_index
    nonterminal_index = codec.nonterminal_index
    holes = holes or {}
    codes = array("i")
    values: List[Any] = []
    hole_meta = array("q")
    size = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node.node_id in holes and node is not root:
            codes.append((nonterminal_index[node.symbol.name] << 2) | _TAG_HOLE)
            hole_meta.append(holes[node.node_id])
            hole_meta.append(node.node_id)
            size += 16
            continue
        if node.is_terminal:
            codes.append((terminal_index[node.symbol.name] << 2) | _TAG_TERMINAL)
            values.append(node.token_value)
            size += node_wire_size(node)
        else:
            assert node.production is not None
            codes.append((node.production.index << 2) | _TAG_PRODUCTION)
            size += node_wire_size(node)
            stack.extend(reversed(node.children))
    return PackedTree(codes, values, hole_meta, root.symbol.name, size)


def unpack(
    grammar: AttributeGrammar, packed: PackedTree
) -> Tuple[ParseTreeNode, Dict[int, ParseTreeNode]]:
    """Rebuild a subtree from its packed form (iterative, deep-tree safe).

    Returns the new root and the region-id → hole-placeholder mapping, exactly like
    :func:`delinearize`.
    """
    codec = codec_for(grammar)
    productions = grammar.productions
    terminal_list = codec.terminal_list
    nonterminal_list = codec.nonterminal_list
    arity = codec.production_arity
    holes: Dict[int, ParseTreeNode] = {}
    values = packed.values
    hole_meta = packed.hole_meta
    value_position = 0
    hole_position = 0
    # Each frame is [production, children]; a node completing fills its parent frame.
    frames: List[List[Any]] = []
    root: Optional[ParseTreeNode] = None
    for code in packed.codes:
        if root is not None:
            raise ValueError("trailing records after packed tree")
        tag = code & 3
        index = code >> 2
        if tag == _TAG_PRODUCTION:
            if not 0 <= index < len(productions):
                raise ValueError(
                    f"packed production index {index} out of range for a grammar with "
                    f"{len(productions)} productions (corrupt tree or mismatched "
                    "grammar generation)"
                )
            if arity[index]:
                frames.append([productions[index], []])
                continue
            node = make_node(productions[index], [])
        elif tag == _TAG_TERMINAL:
            if not 0 <= index < len(terminal_list):
                raise ValueError(
                    f"packed terminal index {index} out of range for a grammar with "
                    f"{len(terminal_list)} terminals (corrupt tree or mismatched "
                    "grammar generation)"
                )
            if value_position >= len(values):
                raise ValueError(
                    "packed tree is missing token values for its terminal records"
                )
            node = make_terminal(terminal_list[index], values[value_position])
            value_position += 1
        elif tag == _TAG_HOLE:
            if not 0 <= index < len(nonterminal_list):
                raise ValueError(
                    f"packed hole index {index} out of range for a grammar with "
                    f"{len(nonterminal_list)} nonterminals (corrupt tree or mismatched "
                    "grammar generation)"
                )
            if hole_position + 1 >= len(hole_meta):
                raise ValueError(
                    "packed tree is missing hole metadata for its hole records"
                )
            node = ParseTreeNode(nonterminal_list[index])
            holes[hole_meta[hole_position]] = node
            hole_position += 2
        else:
            raise ValueError(f"unknown packed record tag {tag!r}")
        while True:
            if not frames:
                root = node
                break
            frame = frames[-1]
            frame[1].append(node)
            if len(frame[1]) < len(frame[0].rhs):
                break
            frames.pop()
            node = make_node(frame[0], frame[1])
    if root is None or frames:
        raise ValueError("truncated packed tree")
    if value_position != len(values):
        raise ValueError("trailing token values after packed tree")
    return root, holes


def pack_linearized(grammar: AttributeGrammar, linearized: LinearizedTree) -> PackedTree:
    """Convert the readable record form into the packed codec (for parity checks)."""
    codec = codec_for(grammar)
    codes = array("i")
    values: List[Any] = []
    hole_meta = array("q")
    for record in linearized.records:
        tag = record[0]
        if tag == "T":
            codes.append((codec.terminal_index[record[1]] << 2) | _TAG_TERMINAL)
            values.append(record[2])
        elif tag == "P":
            codes.append((record[1] << 2) | _TAG_PRODUCTION)
        elif tag == "H":
            codes.append((codec.nonterminal_index[record[1]] << 2) | _TAG_HOLE)
            hole_meta.append(record[2])
            hole_meta.append(record[3])
        else:
            raise ValueError(f"unknown linearized record tag {tag!r}")
    return PackedTree(
        codes, values, hole_meta, linearized.root_symbol, linearized.size_bytes()
    )


def unpack_linearized(grammar: AttributeGrammar, packed: PackedTree) -> LinearizedTree:
    """Convert a packed tree back into the readable record form (for parity checks)."""
    codec = codec_for(grammar)
    records: List[Tuple] = []
    value_position = 0
    hole_position = 0
    for code in packed.codes:
        tag = code & 3
        index = code >> 2
        if tag == _TAG_TERMINAL:
            records.append(("T", codec.terminal_list[index].name, packed.values[value_position]))
            value_position += 1
        elif tag == _TAG_PRODUCTION:
            records.append(("P", index))
        elif tag == _TAG_HOLE:
            records.append(
                (
                    "H",
                    codec.nonterminal_list[index].name,
                    packed.hole_meta[hole_position],
                    packed.hole_meta[hole_position + 1],
                )
            )
            hole_position += 2
        else:
            raise ValueError(f"unknown packed record tag {tag!r}")
    return LinearizedTree(records, packed.root_symbol)


def rebuild(
    grammar: AttributeGrammar, tree: Any
) -> Tuple[ParseTreeNode, Dict[int, ParseTreeNode]]:
    """Rebuild a subtree from any wire representation.

    Shared-memory handles (:class:`repro.tree.shm.SharedPackedTree`) know how to
    rebuild themselves; dispatching on that method keeps this module free of any
    shared-memory import on platforms without it.
    """
    if isinstance(tree, PackedTree):
        return unpack(grammar, tree)
    rebuilder = getattr(tree, "rebuild", None)
    if rebuilder is not None:
        return rebuilder(grammar)
    return delinearize(grammar, tree)
