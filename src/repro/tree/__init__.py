"""Parse trees and attribute instance storage."""

from repro.tree.node import ParseTreeNode, AttributeInstance, make_terminal, make_node
from repro.tree.linearize import linearize, delinearize, LinearizedTree
from repro.tree.stats import TreeStatistics, tree_statistics

__all__ = [
    "ParseTreeNode",
    "AttributeInstance",
    "make_terminal",
    "make_node",
    "linearize",
    "delinearize",
    "LinearizedTree",
    "TreeStatistics",
    "tree_statistics",
]
