"""Parse trees and attribute instance storage."""

from repro.tree.node import ParseTreeNode, AttributeInstance, make_terminal, make_node
from repro.tree.linearize import (
    GrammarCodec,
    LinearizedTree,
    PackedTree,
    codec_for,
    delinearize,
    linearize,
    pack,
    pack_linearized,
    rebuild,
    unpack,
    unpack_linearized,
)
from repro.tree.stats import TreeStatistics, tree_statistics

__all__ = [
    "ParseTreeNode",
    "AttributeInstance",
    "make_terminal",
    "make_node",
    "linearize",
    "delinearize",
    "LinearizedTree",
    "GrammarCodec",
    "PackedTree",
    "codec_for",
    "pack",
    "pack_linearized",
    "rebuild",
    "unpack",
    "unpack_linearized",
    "TreeStatistics",
    "tree_statistics",
]
