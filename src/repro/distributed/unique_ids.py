"""Unique-identifier generation without global synchronisation.

Compilers routinely need program-wide unique identifiers (labels, temporaries).  A
sequential attribute grammar threads a counter attribute through the whole tree; done
naively in a parallel evaluator this forces every evaluator to wait for the counter to
arrive.  The paper's solution: "a unique value is communicated by the parser to each
evaluator and unique identifiers within that evaluator are then generated relative to
this base value."

Each evaluator therefore activates a :class:`UniqueIdGenerator` seeded with the base it
received in its :class:`~repro.distributed.protocol.SubtreeMessage`; semantic functions
call :func:`next_unique_id` (or :func:`next_label`).  Generation is deterministic per
evaluator, and distinct evaluators draw from disjoint ranges, so the result is globally
unique without any messages.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, List, Optional

#: How far apart the per-evaluator base values are spaced by default.  The paper's
#: compiler uses one base value per evaluator; 10 million labels per region is far more
#: than any compilation unit needs.
REGION_ID_SPACING = 10_000_000


class UniqueIdGenerator:
    """A monotonically increasing counter starting at ``base``."""

    __slots__ = ("base", "_next")

    def __init__(self, base: int = 0):
        self.base = base
        self._next = base

    def next_id(self) -> int:
        value = self._next
        self._next += 1
        return value

    def next_label(self, prefix: str = "L") -> str:
        return f"{prefix}{self.next_id()}"

    @property
    def issued(self) -> int:
        return self._next - self.base


class _GeneratorStack(threading.local):
    """Per-thread generator stack.

    The threads backend runs one evaluator per OS thread, each activating its own
    region-base generator around every scheduler task; a process-global stack would let
    concurrent evaluators pop each other's generators and draw ids from the wrong
    range.  Thread-local state keeps each evaluator's ids deterministic regardless of
    substrate (the simulator and the processes backend each see a single stack anyway).
    """

    def __init__(self):
        self.items: List[UniqueIdGenerator] = [UniqueIdGenerator(0)]


_stacks = _GeneratorStack()


def current_generator() -> UniqueIdGenerator:
    """The generator currently in effect (the innermost active context)."""
    return _stacks.items[-1]


@contextlib.contextmanager
def unique_id_context(generator_or_base) -> Iterator[UniqueIdGenerator]:
    """Activate a generator for the duration of a ``with`` block.

    Accepts either a :class:`UniqueIdGenerator` (so an evaluator can keep issuing from
    the same range across many scheduler tasks) or an integer base.
    """
    if isinstance(generator_or_base, UniqueIdGenerator):
        generator = generator_or_base
    else:
        generator = UniqueIdGenerator(int(generator_or_base))
    stack = _stacks.items
    stack.append(generator)
    try:
        yield generator
    finally:
        stack.pop()


def next_unique_id() -> int:
    """Draw the next unique integer from the active generator."""
    return current_generator().next_id()


def next_label(prefix: str = "L") -> str:
    """Draw the next unique label from the active generator."""
    return current_generator().next_label(prefix)


def base_for_region(region_id: int, spacing: int = REGION_ID_SPACING) -> int:
    """The base value the parser hands to the evaluator of ``region_id``."""
    return (region_id + 1) * spacing
