"""Message types exchanged between the parser, the evaluators and the librarian.

Cross-evaluator attribute traffic only ever concerns *region roots*: a child evaluator
needs the inherited attributes of its region's root (computed by its parent evaluator at
the corresponding hole node) and the parent needs the synthesized attributes of that
same root.  Messages therefore address attributes by ``(region_id, attribute name)``
rather than by node identity, which keeps the protocol independent of how each evaluator
numbers its local nodes.

Every message type (and everything it carries: linearized trees, ropes, string
descriptors, converted attribute values) must survive a pickle round-trip, because the
``"processes"`` backend ships messages between OS processes over
``multiprocessing.Queue``.  :data:`PROTOCOL_MESSAGES` enumerates the full wire
vocabulary; the test suite round-trips each one through a real queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class SubtreeMessage:
    """Parser → evaluator: here is your region.

    ``tree`` is either a :class:`~repro.tree.linearize.LinearizedTree` (simulated and
    in-process substrates) or a :class:`~repro.tree.linearize.PackedTree` (the
    processes substrate, where the subtree crosses a pickling boundary).
    """

    region_id: int
    parent_region: Optional[int]
    tree: Any                               # LinearizedTree or PackedTree
    unique_base: int
    root_inherited: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def size_bytes(self) -> int:
        return self.tree.size_bytes() + 32


@dataclass
class AttributeMessage:
    """Evaluator ↔ evaluator: one region-boundary attribute value.

    ``direction`` is ``"down"`` for inherited attributes of the destination's region
    root (parent → child) and ``"up"`` for synthesized attributes of the source's region
    root (child → parent).
    """

    source_region: int
    target_region: int
    direction: str
    name: str
    value: Any
    size: int
    priority: bool = False

    def size_bytes(self) -> int:
        return self.size + 24


@dataclass
class CodeFragmentMessage:
    """Evaluator → librarian: one evaluator's final code fragment (sent exactly once)."""

    region_id: int
    fragment_id: int
    text: Any                               # a Rope
    size: int

    def size_bytes(self) -> int:
        return self.size + 16


@dataclass
class ResultMessage:
    """Root evaluator → parser: the root attributes of the whole tree.

    When the librarian optimisation is on, code-like attributes arrive here as
    descriptors; the assembled text follows separately in an
    :class:`AssembledCodeMessage` from the librarian.
    """

    region_id: int
    attributes: Dict[str, Any]
    size: int

    def size_bytes(self) -> int:
        return self.size + 16


@dataclass
class AssembleRequest:
    """Root evaluator → librarian: assemble the final code from this descriptor."""

    attribute: str
    descriptor: Any
    size: int

    def size_bytes(self) -> int:
        return self.size + 16


@dataclass
class AssembledCodeMessage:
    """Librarian → parser: the fully assembled code attribute."""

    attribute: str
    text: Any                               # a Rope
    size: int

    def size_bytes(self) -> int:
        return self.size + 16


#: The complete wire vocabulary of the distributed protocol.
PROTOCOL_MESSAGES = (
    SubtreeMessage,
    AttributeMessage,
    CodeFragmentMessage,
    ResultMessage,
    AssembleRequest,
    AssembledCodeMessage,
)
