"""Replay bodies: stand-ins for regions whose cached evaluation is still valid.

An incremental recompilation spawns the real evaluator only for *dirty* regions; a
clean region is represented by this lightweight body, which

1. re-sends the region's recorded boundary outputs — attribute exports to dirty
   neighbours and code fragments to the string librarian (fragments must be re-sent
   because the librarian's fragment store is per-run, and the final code attribute is
   reassembled on every compilation);
2. receives the live messages its dirty parent sends it and checks each against the
   cached input signature — a mismatch means the region's cached outputs were
   computed from stale inputs, so the driver must re-run with that region dirty
   (this is the "hole-signature recheck" that propagates root-context changes);
3. publishes the region's cached :class:`EvaluatorReport` (statistics and memory
   figures are properties of the region's content, which did not change).

Replay bodies run as *coordinator* bodies — in the driving process on every
substrate — so cached artifacts never cross a pickling boundary on their way in.
Messages sent to other clean regions are skipped entirely: a replayed neighbour
would never consume them, and the pairing is validated driver-side from the two
cached signatures instead.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Generator, Iterable, Optional, Set

from repro.backends.base import Backend, Mailbox, Receive
from repro.distributed.evaluator_node import EvaluatorReport
from repro.distributed.protocol import AttributeMessage, CodeFragmentMessage
from repro.distributed.recording import RegionRecording, value_signature


def replay_body(
    transport: Backend,
    *,
    region_id: int,
    machine_index: int,
    recording: RegionRecording,
    base_report: EvaluatorReport,
    reuse_ids: Set[int],
    live_sources: Iterable[int],
    mailboxes: Dict[int, Mailbox],
    machines_of_regions: Dict[int, int],
    librarian_machine: Optional[int] = None,
    librarian_mailbox: Optional[Mailbox] = None,
) -> Generator:
    """Build the replay process body for one clean region.

    ``live_sources`` are the dirty neighbour regions that will send this region
    messages during the run (in the ancestor-closed dirty model that is at most the
    parent region); the body expects exactly the recorded number of messages from
    them, which is grammar-determined and therefore stable across runs.
    """
    live = set(live_sources)
    for send in recording.sends:
        if send[0] == "attr":
            _, target, direction, name, wire_value, size, priority = send
            if target in reuse_ids:
                continue  # a fellow replay would never consume it
            message = AttributeMessage(
                source_region=region_id,
                target_region=target,
                direction=direction,
                name=name,
                value=wire_value,
                size=size,
                priority=priority,
            )
            transport.send(
                machine_index,
                machines_of_regions[target],
                message,
                message.size_bytes(),
                mailbox=mailboxes[target],
            )
        else:  # ("fragment", fragment_id, text, size)
            _, fragment_id, text, size = send
            if librarian_mailbox is None:
                continue
            message = CodeFragmentMessage(region_id, fragment_id, text, size)
            transport.send(
                machine_index,
                librarian_machine,
                message,
                message.size_bytes(),
                mailbox=librarian_mailbox,
            )

    expected = [key for key in recording.input_sigs if key[0] in live]
    mismatches = []
    for _ in expected:
        message = yield Receive(mailboxes[region_id])
        if not isinstance(message, AttributeMessage):
            raise TypeError(
                f"replayed region {region_id} received unexpected message {message!r}"
            )
        key = (message.source_region, message.direction, message.name)
        cached = recording.input_sigs.get(key)
        if cached is None or cached != value_signature(message.value):
            mismatches.append(key)

    report = replace(
        base_report, recording=None, replay_mismatches=mismatches or None
    )
    transport.publish_report(region_id, report)
