"""The string librarian process.

"When an evaluator computes its final code attribute it sends the code string to the
string librarian process and a string descriptor to its ancestor.  The descriptors are
combined appropriately by every process in the process tree and finally passed up from
the root evaluator to the string librarian, which combines the code attributes according
to the information in the descriptors."  (paper, §4.3)

The librarian therefore has two jobs: store fragments as they arrive (one network
transmission per evaluator, overlapping with ongoing evaluation), and, once the root
descriptor arrives, assemble the final string and hand it to the parser.  Like the
other distributed processes it is written against the backend-neutral request protocol
and runs unchanged on the simulator, on threads and on processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.backends.base import Backend, Compute, Mailbox, Receive
from repro.distributed.protocol import (
    AssembleRequest,
    AssembledCodeMessage,
    CodeFragmentMessage,
)
from repro.runtime.cost import CostModel
from repro.runtime.machine import ActivityKind
from repro.strings.rope import Rope


@dataclass
class LibrarianStats:
    fragments_received: int = 0
    fragment_bytes: int = 0
    assemblies: int = 0
    assembled_bytes: int = 0


class StringLibrarian:
    """State machine of the librarian; driven as a process by the parallel compiler."""

    def __init__(
        self,
        cost_model: CostModel,
        mailbox: Mailbox,
        transport: Optional[Backend] = None,
        machine_index: int = 0,
    ):
        self.cost_model = cost_model
        self.mailbox = mailbox
        self.transport = transport
        self.machine_index = machine_index
        self._fragments: Dict[Tuple[int, int], Rope] = {}
        self._pending: List[AssembleRequest] = []
        self.stats = LibrarianStats()

    # -------------------------------------------------------------- fragments

    def store_fragment(self, message: CodeFragmentMessage) -> None:
        self._fragments[(message.region_id, message.fragment_id)] = message.text
        self.stats.fragments_received += 1
        self.stats.fragment_bytes += message.size

    def has_fragment(self, region_id: int, fragment_id: int) -> bool:
        return (region_id, fragment_id) in self._fragments

    def lookup(self, region_id: int, fragment_id: int) -> Rope:
        try:
            return self._fragments[(region_id, fragment_id)]
        except KeyError:
            raise KeyError(
                f"librarian has no fragment ({region_id}, {fragment_id}); "
                "it has not arrived yet"
            ) from None

    # --------------------------------------------------------------- assembly

    def can_assemble(self, request: AssembleRequest) -> bool:
        return all(
            self.has_fragment(region, fragment)
            for region, fragment in request.descriptor.fragment_ids()
        )

    def assemble(self, request: AssembleRequest) -> AssembledCodeMessage:
        text = request.descriptor.assemble(self.lookup)
        self.stats.assemblies += 1
        self.stats.assembled_bytes += len(text)
        return AssembledCodeMessage(request.attribute, text, text.transmission_size())

    def assembly_cost(self, request: AssembleRequest) -> float:
        """CPU time to splice the fragments together (proportional to referenced text)."""
        referenced = sum(
            len(self._fragments[key])
            for key in request.descriptor.fragment_ids()
            if key in self._fragments
        )
        return self.cost_model.convert_cost(referenced)

    # ------------------------------------------------------------------ process

    def run(
        self,
        parser_machine: int,
        parser_mailbox: Mailbox,
        expected_assemblies: int = 1,
    ) -> Generator:
        """Librarian process body.

        Receives fragment and assemble-request messages, assembling each requested code
        attribute as soon as all of its fragments are on hand, and terminates once
        ``expected_assemblies`` assembled strings have been delivered to the parser.
        """
        outstanding_requests: List[AssembleRequest] = []
        finished_assemblies = 0
        if expected_assemblies <= 0:
            return
        while True:
            message = yield Receive(self.mailbox)
            if isinstance(message, CodeFragmentMessage):
                yield Compute(
                    self.cost_model.message_cpu_cost
                    + self.cost_model.convert_cost(message.size),
                    ActivityKind.LIBRARIAN,
                    f"fragment r{message.region_id}",
                )
                self.store_fragment(message)
            elif isinstance(message, AssembleRequest):
                yield Compute(
                    self.cost_model.message_cpu_cost, ActivityKind.LIBRARIAN, "request"
                )
                outstanding_requests.append(message)
            else:
                raise TypeError(f"librarian received unexpected message {message!r}")

            still_waiting: List[AssembleRequest] = []
            for request in outstanding_requests:
                if not self.can_assemble(request):
                    still_waiting.append(request)
                    continue
                yield Compute(
                    self.assembly_cost(request), ActivityKind.LIBRARIAN, "assemble"
                )
                assembled = self.assemble(request)
                self.transport.send(
                    self.machine_index, parser_machine, assembled, assembled.size_bytes(),
                    mailbox=parser_mailbox,
                )
                finished_assemblies += 1
            outstanding_requests = still_waiting

            if finished_assemblies >= expected_assemblies:
                return
