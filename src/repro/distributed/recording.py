"""Boundary-traffic recording for content-addressed region artifacts.

Incremental recompilation (:mod:`repro.incremental`) treats one region's evaluation
as a pure function from *(region content, boundary inputs)* to *(boundary outputs,
statistics)*.  The live protocol already confines cross-region traffic to region
boundaries (§ :mod:`repro.distributed.protocol`), so making that function cacheable
only needs the evaluator to *record* what crossed its boundary:

* every :class:`~repro.distributed.protocol.AttributeMessage` it received, as a
  content signature (the value itself is not needed again — only the ability to
  recognise "same inputs as last time");
* every message it sent — attribute exports to neighbouring regions and code
  fragments to the string librarian — verbatim, so a later run can *replay* them
  without re-evaluating the region.

Recording is pure bookkeeping: it yields no :class:`~repro.backends.base.Compute`
requests and sends no messages, so a recorded run is byte-identical (values, errors,
simulated times) to an unrecorded one.

Signatures are SHA-256 over the pickled wire value.  Wire values are picklable by
protocol contract, and the one structurally unstable value type — :class:`Rope` —
pickles canonically as its flattened text, so equal texts always sign equal.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Key of one boundary attribute transfer: (peer region id, direction, attribute name).
#: ``direction`` is the message's own: "down" for inherited values arriving from the
#: parent region, "up" for synthesized values arriving from a child region.
BoundaryKey = Tuple[int, str, str]


def value_signature(value: Any) -> bytes:
    """Content signature of one wire value (order- and identity-insensitive enough).

    Equal-by-construction values (same rules over same inputs) pickle to equal
    bytes; a spurious *mismatch* merely costs a re-evaluation, never correctness.
    """
    return hashlib.sha256(pickle.dumps(value, protocol=4)).digest()


@dataclass
class RegionRecording:
    """Everything one evaluator's boundary traffic amounted to, for one run.

    ``sends`` preserves send order and carries two record shapes:

    * ``("attr", target_region, direction, name, wire_value, size, priority)``
    * ``("fragment", fragment_id, text, size)`` — a librarian code fragment.

    The root region's final ``ResultMessage``/``AssembleRequest`` traffic is *not*
    recorded: the root region re-evaluates on every incremental run (every dirty
    region's ancestors are dirty, and the root is everyone's ancestor).
    """

    region_id: int = -1
    input_sigs: Dict[BoundaryKey, bytes] = field(default_factory=dict)
    sends: List[Tuple] = field(default_factory=list)
    output_sigs: Dict[BoundaryKey, bytes] = field(default_factory=dict)

    def record_input(self, source_region: int, direction: str, name: str, wire_value: Any) -> None:
        self.input_sigs[(source_region, direction, name)] = value_signature(wire_value)

    def record_attribute_send(
        self,
        target_region: int,
        direction: str,
        name: str,
        wire_value: Any,
        size: int,
        priority: bool,
    ) -> None:
        self.sends.append(("attr", target_region, direction, name, wire_value, size, priority))
        self.output_sigs[(target_region, direction, name)] = value_signature(wire_value)

    def record_fragment_send(self, fragment_id: int, text: Any, size: int) -> None:
        self.sends.append(("fragment", fragment_id, text, size))


@dataclass
class IncrementalSessionPlan:
    """Instructions (and collected outcome) for one incremental compile session.

    ``reuse`` maps clean region ids to artifact-like objects exposing ``recording``
    (a :class:`RegionRecording`) and ``report`` (the region's cached
    ``EvaluatorReport``); those regions are *replayed* instead of evaluated, and the
    parser does not ship their subtrees.  Dirty regions run the real evaluator with
    ``record=True`` so the driver can refresh their cache entries.

    After the run, ``recordings`` holds the freshly recorded boundary traffic per
    dirty region and ``mismatches`` lists every boundary input whose live value
    differed from a replayed region's cached signature — each one names a region
    whose cached outputs are stale and must be re-evaluated in another round.
    """

    reuse: Dict[int, Any] = field(default_factory=dict)
    record: bool = True
    recordings: Dict[int, RegionRecording] = field(default_factory=dict)
    mismatches: List[Tuple[int, BoundaryKey]] = field(default_factory=list)
