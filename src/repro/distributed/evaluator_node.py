"""One evaluator process: owns a region of the tree and evaluates its attributes.

The process body follows the paper's description closely: receive the linearized
subtree, reconstruct it (computing dependency information only for spine nodes when the
combined evaluator is used), then evaluate attributes as they become ready — sending
boundary attributes to neighbouring evaluators as soon as they are computed, blocking
for remote values when nothing is ready, and (optionally) routing the final code
attribute through the string librarian.

The body is written against the backend-neutral request protocol
(:class:`~repro.backends.base.Compute` / :class:`~repro.backends.base.Receive` yields
plus ``transport.send``), so the identical code runs on the simulated cluster, on OS
threads and on OS processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.analysis.visit_sequences import OrderedEvaluationPlan
from repro.backends.base import Backend, Compute, Mailbox, Receive
from repro.distributed.protocol import (
    AssembleRequest,
    AttributeMessage,
    CodeFragmentMessage,
    ResultMessage,
    SubtreeMessage,
)
from repro.distributed.recording import RegionRecording
from repro.distributed.unique_ids import UniqueIdGenerator, unique_id_context
from repro.evaluation.base import ComputedAttribute, EvaluationStatistics
from repro.evaluation.combined import CombinedScheduler
from repro.evaluation.dynamic import DynamicScheduler
from repro.grammar.grammar import AttributeGrammar
from repro.grammar.symbols import Nonterminal
from repro.runtime.cost import CostModel
from repro.runtime.machine import ActivityKind
from repro.strings.descriptors import (
    ConcatDescriptor,
    LeafDescriptor,
    LiteralDescriptor,
    StringDescriptor,
)
from repro.strings.rope import Rope
from repro.tree.linearize import rebuild
from repro.tree.node import ParseTreeNode


def default_attribute_phase(name: str) -> ActivityKind:
    """Map an attribute name to a coarse activity phase for the Figure 6 timeline."""
    lowered = name.lower()
    if any(word in lowered for word in ("stab", "env", "symtab", "table", "decl", "scope")):
        return ActivityKind.SYMBOL_TABLE
    if any(word in lowered for word in ("code", "value", "asm", "text", "output")):
        return ActivityKind.CODE_GENERATION
    return ActivityKind.CODE_GENERATION


def evaluator_body(
    transport: Backend,
    *,
    grammar_bundle: Tuple[AttributeGrammar, Optional[OrderedEvaluationPlan]],
    region_id: int,
    machine_index: int,
    evaluator_kind: str,
    cost_model: CostModel,
    mailboxes: Dict[int, Mailbox],
    machines_of_regions: Dict[int, int],
    parser_machine: int,
    parser_mailbox: Mailbox,
    librarian_machine: Optional[int] = None,
    librarian_mailbox: Optional[Mailbox] = None,
    librarian_attributes: Sequence[str] = (),
    use_priority: bool = True,
    use_tables: bool = True,
    use_compiled: bool = True,
    attribute_phase: Callable[[str], "ActivityKind"] = None,
    record: bool = False,
) -> Generator:
    """Build one evaluator process body (the :class:`~repro.backends.base.WorkerJob`
    factory used by every substrate).

    Module-level and fed only picklable arguments so the pooled processes substrate
    can ship the job to a long-lived forked worker; ``grammar_bundle`` is the
    ``(grammar, plan)`` pair pickled as one unit (preserving shared references) and
    cached per worker.  In-process substrates call it directly with the session as
    ``transport``.
    """
    grammar, plan = grammar_bundle
    node = EvaluatorNode(
        region_id=region_id,
        machine_index=machine_index,
        transport=transport,
        grammar=grammar,
        plan=plan,
        evaluator_kind=evaluator_kind,
        cost_model=cost_model,
        mailboxes=mailboxes,
        machines_of_regions=machines_of_regions,
        parser_machine=parser_machine,
        parser_mailbox=parser_mailbox,
        librarian_machine=librarian_machine,
        librarian_mailbox=librarian_mailbox,
        librarian_attributes=librarian_attributes,
        use_priority=use_priority,
        use_tables=use_tables,
        use_compiled=use_compiled,
        attribute_phase=attribute_phase or default_attribute_phase,
        record=record,
    )
    return node.run()


@dataclass
class EvaluatorReport:
    """Per-evaluator results gathered after the run.

    ``recording`` carries the region's boundary traffic back to the driver when the
    compilation ran with artifact recording on (the incremental layer strips it off
    before the report reaches callers).  ``replay_mismatches`` is set only by
    replayed regions whose live inputs differed from the cached signatures.
    """

    region_id: int
    machine: str
    statistics: EvaluationStatistics = field(default_factory=EvaluationStatistics)
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    finish_time: float = 0.0
    graph_build_time: float = 0.0
    memory_bytes: int = 0
    recording: Optional[RegionRecording] = None
    replay_mismatches: Optional[List[Tuple[int, str, str]]] = None


class EvaluatorNode:
    """One region's evaluator, driven as a backend process."""

    def __init__(
        self,
        region_id: int,
        machine_index: int,
        transport: Backend,
        grammar: AttributeGrammar,
        plan: OrderedEvaluationPlan,
        evaluator_kind: str,
        cost_model: CostModel,
        mailboxes: Dict[int, Mailbox],
        machines_of_regions: Dict[int, int],
        parser_machine: int,
        parser_mailbox: Mailbox,
        librarian_machine: Optional[int] = None,
        librarian_mailbox: Optional[Mailbox] = None,
        librarian_attributes: Sequence[str] = (),
        use_priority: bool = True,
        use_tables: bool = True,
        use_compiled: bool = True,
        attribute_phase: Callable[[str], ActivityKind] = default_attribute_phase,
        record: bool = False,
    ):
        if evaluator_kind not in ("combined", "dynamic"):
            raise ValueError("evaluator_kind must be 'combined' or 'dynamic'")
        self.region_id = region_id
        self.machine_index = machine_index
        self.transport = transport
        self.grammar = grammar
        self.plan = plan
        self.evaluator_kind = evaluator_kind
        self.cost_model = cost_model
        self.mailbox = mailboxes[region_id]
        self._mailboxes = mailboxes
        self._machines_of_regions = machines_of_regions
        self.parser_machine = parser_machine
        self.parser_mailbox = parser_mailbox
        self.librarian_machine = librarian_machine
        self.librarian_mailbox = librarian_mailbox
        self.librarian_attributes = tuple(librarian_attributes)
        self.use_priority = use_priority
        self.use_tables = use_tables
        self.use_compiled = use_compiled and use_tables
        self.attribute_phase = attribute_phase

        self.report = EvaluatorReport(region_id, f"machine-{machine_index}")
        # Boundary-traffic recording for the incremental artifact cache; pure
        # bookkeeping (no Compute requests, no messages), so a recorded run stays
        # byte-identical to an unrecorded one.
        self._recording = RegionRecording(region_id) if record else None
        self._fragment_counter = 0
        self._root: Optional[ParseTreeNode] = None
        self._holes: Dict[int, ParseTreeNode] = {}
        self._hole_regions: Dict[int, int] = {}     # node_id -> region id
        self._parent_region: Optional[int] = None
        self._root_results: Dict[str, Any] = {}

    # ------------------------------------------------------------------- body

    def run(self) -> Generator:
        """The process body."""
        # Messages from neighbouring evaluators can overtake our own subtree on the
        # network (the parser distributes subtrees one at a time while early evaluators
        # are already computing), so buffer anything that arrives before the subtree.
        early: List[Any] = []
        while True:
            message = yield Receive(self.mailbox)
            if isinstance(message, SubtreeMessage):
                break
            early.append(message)
        self._parent_region = message.parent_region

        unpack_cost = self.cost_model.delinearize_cost(message.tree.size_bytes())
        if message.parent_region is not None:
            yield Compute(unpack_cost, ActivityKind.UNPACK, "delinearize")
        root, holes = rebuild(self.grammar, message.tree)
        self._root = root
        self._holes = holes
        self._hole_regions = {node.node_id: region for region, node in holes.items()}

        scheduler, build_cost = self._build_scheduler(message)
        if build_cost > 0:
            yield Compute(build_cost, ActivityKind.GRAPH, "dependencies")
        self.report.graph_build_time = build_cost

        generator = UniqueIdGenerator(message.unique_base)

        for buffered in early:
            yield from self._apply_message(buffered, scheduler)

        while True:
            while scheduler.has_ready_task():
                task = scheduler.next_task()
                if task is None:
                    break
                with unique_id_context(generator):
                    result = scheduler.run_task(task)
                dynamic_task = result.dependency_work > 0
                cost = self.cost_model.task_cost(result, dynamic=dynamic_task)
                phase = self._phase_of(result.computed)
                yield Compute(cost, phase)
                yield from self._handle_exports(result.computed)
            if scheduler.is_complete():
                break
            incoming = yield Receive(self.mailbox)
            yield from self._apply_message(incoming, scheduler)

        yield from self._finish(scheduler)
        self.report.recording = self._recording
        self.transport.publish_report(self.region_id, self.report)

    # --------------------------------------------------------------- internals

    def _build_scheduler(self, message: SubtreeMessage):
        root_inherited = message.root_inherited if message.parent_region is None else None
        hole_nodes = list(self._holes.values())
        if self.evaluator_kind == "combined":
            scheduler = CombinedScheduler(
                self.grammar,
                self._root,
                root_inherited=root_inherited,
                hole_nodes=hole_nodes,
                plan=self.plan,
                use_priority=self.use_priority,
                use_tables=self.use_tables,
                use_compiled=self.use_compiled,
            )
        else:
            scheduler = DynamicScheduler(
                self.grammar,
                self._root,
                root_inherited=root_inherited,
                hole_nodes=hole_nodes,
                use_priority=self.use_priority,
                use_tables=self.use_tables,
                use_compiled=self.use_compiled,
            )
        statistics = scheduler.statistics()
        build_cost = self.cost_model.graph_build_cost(statistics)
        return scheduler, build_cost

    def _phase_of(self, computed: Sequence[ComputedAttribute]) -> ActivityKind:
        for item in computed:
            return self.attribute_phase(item.name)
        return ActivityKind.CODE_GENERATION

    def _is_root_synthesized(self, item: ComputedAttribute) -> bool:
        if self._root is None or item.node is not self._root:
            return False
        symbol = self._root.symbol
        if not isinstance(symbol, Nonterminal):
            return False
        return symbol.attribute(item.name).is_synthesized

    def _handle_exports(self, computed: Sequence[ComputedAttribute]) -> Generator:
        for item in computed:
            hole_region = self._hole_regions.get(item.node.node_id)
            if hole_region is not None:
                symbol = item.node.symbol
                assert isinstance(symbol, Nonterminal)
                decl = symbol.attribute(item.name)
                if decl.is_inherited:
                    yield from self._send_attribute(
                        hole_region, "down", item.name, item.value, decl
                    )
                continue
            if self._is_root_synthesized(item):
                if self._parent_region is None:
                    self._root_results[item.name] = item.value
                    continue
                symbol = self._root.symbol
                assert isinstance(symbol, Nonterminal)
                decl = symbol.attribute(item.name)
                if item.name in self.librarian_attributes and self.librarian_machine is not None:
                    yield from self._export_via_librarian(item.name, item.value, decl)
                else:
                    yield from self._send_attribute(
                        self._parent_region, "up", item.name, item.value, decl
                    )
        return None

    def _send_attribute(self, target_region: int, direction: str, name: str,
                        value: Any, decl) -> Generator:
        wire_value = decl.converter.put(value)
        size = decl.size_of(value)
        yield Compute(
            self.cost_model.convert_cost(size) + self.cost_model.message_cpu_cost,
            ActivityKind.MESSAGE,
            f"send {name}",
        )
        message = AttributeMessage(
            source_region=self.region_id,
            target_region=target_region,
            direction=direction,
            name=name,
            value=wire_value,
            size=size,
            priority=decl.priority,
        )
        if self._recording is not None:
            self._recording.record_attribute_send(
                target_region, direction, name, wire_value, size, decl.priority
            )
        self.transport.send(
            self.machine_index,
            self._machines_of_regions[target_region],
            message,
            message.size_bytes(),
            mailbox=self._mailboxes[target_region],
        )
        self.report.messages_sent += 1
        self.report.bytes_sent += size

    def _export_via_librarian(self, name: str, value: Any, decl) -> Generator:
        descriptor, fragments = self._register_fragments(value)
        for fragment_id, text in fragments:
            size = text.transmission_size()
            yield Compute(
                self.cost_model.convert_cost(size) + self.cost_model.message_cpu_cost,
                ActivityKind.RESULT_PROPAGATION,
                f"fragment {name}",
            )
            fragment_message = CodeFragmentMessage(self.region_id, fragment_id, text, size)
            if self._recording is not None:
                self._recording.record_fragment_send(fragment_id, text, size)
            self.transport.send(
                self.machine_index, self.librarian_machine, fragment_message,
                fragment_message.size_bytes(), mailbox=self.librarian_mailbox,
            )
            self.report.messages_sent += 1
            self.report.bytes_sent += size
        descriptor_size = descriptor.descriptor_size()
        yield Compute(
            self.cost_model.message_cpu_cost, ActivityKind.RESULT_PROPAGATION,
            f"descriptor {name}",
        )
        message = AttributeMessage(
            source_region=self.region_id,
            target_region=self._parent_region,
            direction="up",
            name=name,
            value=descriptor,
            size=descriptor_size,
            priority=decl.priority,
        )
        if self._recording is not None:
            self._recording.record_attribute_send(
                self._parent_region, "up", name, descriptor, descriptor_size, decl.priority
            )
        self.transport.send(
            self.machine_index,
            self._machines_of_regions[self._parent_region],
            message,
            message.size_bytes(),
            mailbox=self._mailboxes[self._parent_region],
        )
        self.report.messages_sent += 1
        self.report.bytes_sent += descriptor_size

    def _register_fragments(self, value: Any) -> Tuple[StringDescriptor, List[Tuple[int, Rope]]]:
        """Turn a code value into a descriptor plus the fragments to ship.

        Plain ropes become a single fragment.  Descriptors received from child regions
        are passed through unchanged, but any literal text they carry (code generated
        locally between child fragments) is also turned into fragments so that every
        byte of code crosses the network exactly once.
        """
        fragments: List[Tuple[int, Rope]] = []

        def new_fragment(text: Rope) -> LeafDescriptor:
            self._fragment_counter += 1
            fragments.append((self._fragment_counter, text))
            return LeafDescriptor(self.region_id, self._fragment_counter, len(text))

        def convert(node) -> StringDescriptor:
            if isinstance(node, Rope):
                return new_fragment(node)
            if isinstance(node, LiteralDescriptor):
                return new_fragment(node.text)
            if isinstance(node, ConcatDescriptor):
                return ConcatDescriptor(convert(node.left), convert(node.right))
            return node  # LeafDescriptor from a descendant region: pass through

        if isinstance(value, str):
            value = Rope.leaf(value)
        descriptor = convert(value)
        return descriptor, fragments

    def _apply_message(self, message: Any, scheduler) -> Generator:
        if not isinstance(message, AttributeMessage):
            raise TypeError(
                f"evaluator {self.region_id} received unexpected message {message!r}"
            )
        self.report.messages_received += 1
        if self._recording is not None:
            self._recording.record_input(
                message.source_region, message.direction, message.name, message.value
            )
        if message.direction == "down":
            target_node = self._root
        else:
            target_node = self._holes[message.source_region]
        symbol = target_node.symbol
        assert isinstance(symbol, Nonterminal)
        decl = symbol.attribute(message.name)
        value = message.value
        if not isinstance(value, StringDescriptor):
            value = decl.converter.get(value)
        yield Compute(
            self.cost_model.message_cpu_cost + self.cost_model.convert_cost(message.size),
            ActivityKind.MESSAGE,
            f"recv {message.name}",
        )
        scheduler.supply(target_node, message.name, value)

    def _finish(self, scheduler) -> Generator:
        self.report.statistics = scheduler.statistics()
        self.report.memory_bytes = (
            self.cost_model.tree_memory(self._root.subtree_size())
            + self.cost_model.dynamic_graph_memory(self.report.statistics)
            + self.cost_model.attribute_memory(self.report.statistics.total_instances)
        )
        if self._parent_region is None:
            # Root region: hand the root attributes back to the parser, routing
            # librarian-managed attributes through an assembly request.
            payload: Dict[str, Any] = {}
            total_size = 0
            symbol = self._root.symbol
            assert isinstance(symbol, Nonterminal)
            for name, value in self._root_results.items():
                decl = symbol.attribute(name)
                if name in self.librarian_attributes and self.librarian_machine is not None:
                    # Always route librarian-managed attributes through the librarian so
                    # the parser knows exactly how many assembled strings to expect; a
                    # plain rope (no remote fragments) just becomes a literal descriptor.
                    descriptor = (
                        value
                        if isinstance(value, StringDescriptor)
                        else LiteralDescriptor(value if isinstance(value, Rope) else Rope.leaf(str(value)))
                    )
                    request = AssembleRequest(name, descriptor, descriptor.descriptor_size())
                    yield Compute(
                        self.cost_model.message_cpu_cost,
                        ActivityKind.RESULT_PROPAGATION,
                        f"assemble {name}",
                    )
                    self.transport.send(
                        self.machine_index, self.librarian_machine, request,
                        request.size_bytes(), mailbox=self.librarian_mailbox,
                    )
                    payload[name] = value
                    continue
                payload[name] = value
                total_size += decl.size_of(value)
            yield Compute(
                self.cost_model.message_cpu_cost, ActivityKind.RESULT_PROPAGATION, "result"
            )
            result = ResultMessage(self.region_id, payload, total_size)
            self.transport.send(
                self.machine_index, self.parser_machine, result, result.size_bytes(),
                mailbox=self.parser_mailbox,
            )
            self.report.messages_sent += 1
        self.report.finish_time = self.transport.now
