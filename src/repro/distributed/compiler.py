"""The parallel compiler driver.

``ParallelCompiler`` reproduces the structure of the paper's system (§2.1): a sequential
parser builds the syntax tree, divides it into subtrees and sends them to attribute
evaluators executing in parallel on different machines; the evaluators exchange
attribute values, and the root attributes flow back to the parser (optionally routing
code strings through the string librarian).

The coordinator/evaluator/librarian processes are written once against the backend
interface in :mod:`repro.backends`, so the same protocol runs on three interchangeable
substrates selected by the ``backend`` knob:

* ``"simulated"`` (default) — the paper's modelled cluster; the returned
  :class:`CompilationReport` carries simulated times, per-machine activity timelines,
  message statistics and evaluator statistics — the raw material for every figure in
  the paper's evaluation section;
* ``"threads"`` — one OS thread per evaluator region (``queue.Queue`` mailboxes);
* ``"processes"`` — one forked OS process per evaluator region (pickled protocol
  messages over ``multiprocessing.Queue``).

Every report additionally carries wall-clock timings, so real and simulated runs can be
compared side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.visit_sequences import OrderedEvaluationPlan, build_evaluation_plan
from repro.backends import Backend, Substrate, create_backend
from repro.backends.base import (
    BackendError,
    Compute,
    Mailbox,
    Receive,
    SharedBundle,
    WorkerJob,
)
from repro.distributed.evaluator_node import (
    EvaluatorNode,
    EvaluatorReport,
    default_attribute_phase,
    evaluator_body,
)
from repro.distributed.librarian import StringLibrarian
from repro.distributed.recording import IncrementalSessionPlan
from repro.distributed.replay import replay_body
from repro.distributed.protocol import (
    AssembledCodeMessage,
    ResultMessage,
    SubtreeMessage,
)
from repro.distributed.unique_ids import base_for_region
from repro.evaluation.base import EvaluationStatistics
from repro.grammar.attributes import AttributeKind
from repro.grammar.grammar import AttributeGrammar
from repro.grammar.symbols import Nonterminal
from repro.partition.decomposition import DecompositionPlan, plan_decomposition
from repro.runtime.cost import CostModel
from repro.runtime.machine import ActivityInterval, ActivityKind
from repro.runtime.network import NetworkParameters
from repro.strings.rope import Rope
from repro.tree import shm
from repro.tree.linearize import linearize, pack
from repro.tree.node import ParseTreeNode


@dataclass
class CompilerConfiguration:
    """Tunable knobs of the parallel compiler.

    :param evaluator: ``"combined"`` (the paper's contribution) or ``"dynamic"``.
    :param backend: execution substrate — ``"simulated"``, ``"threads"`` or
        ``"processes"`` (see :mod:`repro.backends`).
    :param use_librarian: route code attributes through the string librarian instead of
        shipping full code strings up the evaluator tree.
    :param librarian_attributes: names of root/split synthesized attributes treated as
        code strings by the librarian protocol.
    :param use_priority: honour priority-attribute declarations when scheduling.
    :param use_precompiled_tables: evaluate through the precompiled per-grammar rule
        tables (:mod:`repro.analysis.tables`); ``False`` selects the seed
        dict/``AttributeRef`` paths, kept as the parity-test reference.
    :param use_compiled_plans: evaluate through per-grammar generated Python
        (:mod:`repro.analysis.plan_compiler`) — straight-line argument fetch and rule
        firing with no table dispatch.  Requires (and builds on)
        ``use_precompiled_tables``; ``False`` keeps the table path as the
        bit-identical parity reference.
    :param use_zero_copy_ship: on substrates that share a kernel with their workers
        (``shared_ship`` capability — the processes substrate), ship packed regions
        as shared-memory segment handles (:mod:`repro.tree.shm`) instead of pickled
        byte blobs.  Other substrates are unaffected.
    :param min_split_size: explicit decomposition threshold (abstract bytes); by default
        the threshold is derived from the tree size and machine count.
    :param split_scale: multiplier on the automatically derived threshold (the paper's
        runtime granularity argument).
    :param receive_timeout: bound (wall seconds) on blocking receives for the real
        backends; ``None`` selects each backend's default.
    """

    evaluator: str = "combined"
    backend: str = "simulated"
    use_librarian: bool = True
    librarian_attributes: Tuple[str, ...] = ("code",)
    use_priority: bool = True
    use_precompiled_tables: bool = True
    use_compiled_plans: bool = True
    use_zero_copy_ship: bool = True
    root_inherited: Dict[str, Any] = field(default_factory=dict)
    cost_model: CostModel = field(default_factory=CostModel)
    network: NetworkParameters = field(default_factory=NetworkParameters)
    min_split_size: Optional[int] = None
    split_scale: float = 1.0
    attribute_phase: Callable[[str], ActivityKind] = default_attribute_phase
    receive_timeout: Optional[float] = None


@dataclass
class CompilationReport:
    """Everything measured during one parallel compilation.

    On the simulated backend ``parse_time``/``evaluation_time`` are simulated seconds;
    on the real backends ``evaluation_time`` is wall-clock seconds and the simulated
    network/timeline fields are empty.  ``wall_time_seconds`` (whole compilation) and
    ``wall_evaluation_seconds`` (backend run only) are real wall-clock measurements on
    every backend.
    """

    machines: int
    evaluator: str
    use_librarian: bool
    parse_time: float
    evaluation_time: float
    decomposition: DecompositionPlan
    root_attributes: Dict[str, Any]
    assembled: Dict[str, Rope]
    evaluator_reports: List[EvaluatorReport]
    timeline: Dict[str, List[ActivityInterval]]
    utilization: Dict[str, float]
    network_messages: int
    network_bytes: int
    network_busy_time: float
    statistics: EvaluationStatistics
    memory_bytes: int
    tree_nodes: int
    backend: str = "simulated"
    wall_time_seconds: float = 0.0
    wall_evaluation_seconds: float = 0.0
    worker_count: int = 0
    #: Wall-clock seconds the parser spent encoding and sending region subtrees to
    #: their evaluators (the "ship" phase of the hot path); 0.0 until the parser has
    #: distributed all regions.
    wall_ship_seconds: float = 0.0
    #: Wall-clock seconds the caller spent parsing the source into the tree this
    #: compilation ran on.  ``compile_tree`` cannot measure it (it receives a parsed
    #: tree), so the front door (:class:`repro.api.Compiler`, the service layer and
    #: the deprecated per-workload shims) stamps it after the run; stays 0.0 when the
    #: caller never parsed (e.g. a pre-built tree swept over machine counts).
    wall_parse_seconds: float = 0.0
    #: Region-artifact cache accounting for this compilation: how many regions were
    #: replayed from the content-addressed cache and how many were (re-)evaluated.
    #: Both stay 0 on plain, non-incremental compilations; the service layer
    #: aggregates them into :class:`repro.service.ServiceStats`.
    region_cache_hits: int = 0
    region_cache_misses: int = 0

    @property
    def total_time(self) -> float:
        """Parse plus evaluation time (the paper reports them separately).

        Only meaningful on the simulated backend, where both terms are simulated
        seconds; on real backends ``parse_time`` stays a modelled cost while
        ``evaluation_time`` is wall-clock, so use ``wall_time_seconds`` there.
        """
        return self.parse_time + self.evaluation_time

    @property
    def dynamic_fraction(self) -> float:
        return self.statistics.dynamic_fraction

    def speedup_against(self, sequential: "CompilationReport") -> float:
        """Speedup of this run's evaluation time over a sequential reference run."""
        if self.evaluation_time == 0:
            return float("inf")
        return sequential.evaluation_time / self.evaluation_time

    def code_text(self, attribute: str = "code") -> str:
        """The final (assembled) text of a code attribute."""
        if attribute in self.assembled:
            return self.assembled[attribute].flatten()
        value = self.root_attributes.get(attribute)
        if isinstance(value, Rope):
            return value.flatten()
        if value is None:
            raise KeyError(f"no root attribute named {attribute!r}")
        return str(value)

    def summary(self) -> str:
        """A human-readable digest, aware of what the backend actually measured.

        The simulated backend reports modelled network occupancy and evaluator
        memory; the real substrates have no modelled link or memory figures (they
        would print misleading zeros), so their summary reports wall-clock times and
        the real worker count instead.
        """
        if self.backend == "simulated":
            lines = [
                f"{self.evaluator} evaluator on {self.machines} machine(s) "
                f"[{self.backend} backend]: "
                f"evaluation {self.evaluation_time:.3f}s (+ parse {self.parse_time:.3f}s)",
                f"  regions: {self.decomposition.region_count}, "
                f"dynamic fraction: {self.dynamic_fraction * 100:.1f}%",
                f"  network: {self.network_messages} messages, {self.network_bytes} bytes, "
                f"link busy {self.network_busy_time:.3f}s",
                f"  memory: {self.memory_bytes} bytes across evaluators",
            ]
        else:
            lines = [
                f"{self.evaluator} evaluator on {self.machines} machine(s) "
                f"[{self.backend} backend]: "
                f"evaluation {self.evaluation_time:.3f}s wall "
                f"(+ modelled parse {self.parse_time:.3f}s)",
                f"  regions: {self.decomposition.region_count}, "
                f"dynamic fraction: {self.dynamic_fraction * 100:.1f}%",
                f"  wall clock: {self.wall_time_seconds:.3f}s total"
                + (
                    f" (+ parse {self.wall_parse_seconds:.3f}s)"
                    if self.wall_parse_seconds > 0
                    else ""
                )
                + f", {self.wall_evaluation_seconds:.3f}s evaluating",
                f"  workers: {self.worker_count} real {self.backend} worker(s), "
                f"{self.network_messages} messages, {self.network_bytes} bytes",
            ]
        return "\n".join(lines)


class ParallelCompiler:
    """Generate-once, compile-many driver for a single attribute grammar.

    This is the *engine* underneath the public front door: prefer
    :class:`repro.api.Compiler` / :class:`repro.api.Session`, which add language
    registration, uniform results and substrate lifecycle on top and share
    name-keyed engines across call sites.  Construct a raw ``ParallelCompiler``
    only for grammars that are not (and should not be) registered as languages.

    By default every :meth:`compile_tree` call builds a one-shot backend (spawn
    workers, run, tear down).  Pass a started :class:`~repro.backends.base.Substrate`
    — at construction or per call — and the compiler becomes a thin client of that
    persistent pool instead: each compilation borrows a run session, long-lived
    workers pull the evaluator jobs, and the substrate survives for the next call.
    """

    def __init__(
        self,
        grammar: AttributeGrammar,
        configuration: Optional[CompilerConfiguration] = None,
        plan: Optional[OrderedEvaluationPlan] = None,
        backend: Optional[str] = None,
        substrate: Optional[Substrate] = None,
        bundle_key: Optional[str] = None,
    ):
        self.grammar = grammar
        self.configuration = configuration or CompilerConfiguration()
        if self.configuration.evaluator not in ("combined", "dynamic"):
            raise ValueError("evaluator must be 'combined' or 'dynamic'")
        self.backend = backend or self.configuration.backend
        self.substrate = substrate
        # The ordered-evaluation plan is only needed by the combined evaluator, and some
        # grammars are evaluable dynamically but not ordered.
        if self.configuration.evaluator == "combined":
            self.plan = plan or build_evaluation_plan(grammar)
        else:
            self.plan = plan
        # One stable (grammar, plan) tuple for every job this compiler ever submits:
        # pooled process workers cache the shipped bundle by identity, so reusing the
        # same object means the grammar crosses to each worker exactly once.
        # ``bundle_key`` (the language registry's name-derived key) goes further:
        # *every* compiler sharing the key maps to one worker-side cache entry, so the
        # bundle ships once per worker no matter how many compiler instances exist.
        if bundle_key is not None:
            self._grammar_bundle: Any = SharedBundle(bundle_key, (self.grammar, self.plan))
        else:
            self._grammar_bundle = (self.grammar, self.plan)

    # -------------------------------------------------------------------- API

    def compile_tree(
        self,
        tree: ParseTreeNode,
        machines: int,
        root_inherited: Optional[Dict[str, Any]] = None,
        backend: Optional[str] = None,
        substrate: Optional[Substrate] = None,
        decomposition: Optional[DecompositionPlan] = None,
        incremental: Optional[IncrementalSessionPlan] = None,
        receive_timeout: Optional[float] = None,
    ) -> CompilationReport:
        """Compile an already-parsed tree on ``machines`` (simulated or real) workers.

        Precedence for the execution substrate: per-call ``substrate`` >
        per-call ``backend`` > the compiler's own ``substrate`` > its ``backend``.

        ``decomposition`` lets a caller that already planned the region split (the
        incremental driver fingerprints regions before compiling) reuse its plan;
        ``incremental`` switches the session into replay-and-record mode (see
        :class:`~repro.distributed.recording.IncrementalSessionPlan`);
        ``receive_timeout`` tightens this one compile's blocking-receive bound
        below the configured default — this is how a caller-supplied
        :class:`repro.resilience.Deadline` propagates into the substrate (and,
        on the sockets substrate, into the cluster's per-job timeout, which is
        derived from the session's receive bound).
        """
        config = self.configuration
        wall_started = time.perf_counter()
        # Only the node count feeds the modelled parse cost; the full per-symbol
        # statistics walk is an order of magnitude more expensive and not needed here.
        tree_nodes = tree.subtree_size()
        parse_time = config.cost_model.parse_cost(tree_nodes)

        if decomposition is None:
            decomposition = plan_decomposition(
                tree,
                machines,
                min_size=config.min_split_size,
                scale=config.split_scale,
            )
        pool: Optional[Substrate] = None
        if substrate is not None:
            pool = substrate
        elif backend is None:
            pool = self.substrate
        bound = config.receive_timeout
        if receive_timeout is not None:
            bound = receive_timeout if bound is None else min(bound, receive_timeout)
        if pool is not None:
            session = pool.session(machines, receive_timeout=bound)
        else:
            session = create_backend(
                backend or self.backend,
                machines,
                network=config.network,
                cost_model=config.cost_model,
                receive_timeout=bound,
            )
        # Everything from here on runs under the session's teardown guarantee: if the
        # run (or report collection) raises, close() joins/terminates this
        # compilation's workers instead of leaking them.
        try:
            return self._compile_on_session(
                session,
                tree,
                machines,
                decomposition,
                root_inherited,
                parse_time,
                tree_nodes,
                wall_started,
                incremental=incremental,
            )
        finally:
            session.close()

    # --------------------------------------------------------------- internals

    def _compile_on_session(
        self,
        session: Backend,
        tree: ParseTreeNode,
        machines: int,
        decomposition: DecompositionPlan,
        root_inherited: Optional[Dict[str, Any]],
        parse_time: float,
        tree_nodes: int,
        wall_started: float,
        incremental: Optional[IncrementalSessionPlan] = None,
    ) -> CompilationReport:
        config = self.configuration
        reuse = incremental.reuse if incremental is not None else {}
        record = incremental.record if incremental is not None else False
        if 0 in reuse:
            # The root region delivers the final ResultMessage and assembly requests,
            # which are not part of the recorded boundary traffic; the incremental
            # driver always re-evaluates it.
            raise ValueError("the root region cannot be replayed from the cache")
        parser_machine = 0
        parser_mailbox = session.mailbox("parser.mailbox")

        machine_of_region: Dict[int, int] = {
            region.region_id: region.region_id % machines
            for region in decomposition.regions
        }
        mailboxes: Dict[int, Mailbox] = {
            region.region_id: session.mailbox(f"evaluator-{region.region_id}.mailbox")
            for region in decomposition.regions
        }

        librarian_attrs = self._root_librarian_attributes()
        librarian_active = (
            config.use_librarian
            and decomposition.region_count > 1
            and bool(librarian_attrs)
        )
        librarian: Optional[StringLibrarian] = None
        librarian_mailbox: Optional[Mailbox] = None
        if librarian_active:
            librarian_mailbox = session.mailbox("librarian.mailbox")
            librarian = StringLibrarian(
                config.cost_model,
                librarian_mailbox,
                transport=session,
                machine_index=parser_machine,
            )

        region_ids: List[int] = []
        for region in decomposition.regions:
            region_ids.append(region.region_id)
            if region.region_id in reuse:
                # Clean region: replay its cached boundary traffic in the driving
                # process instead of shipping and re-evaluating the subtree.  Its
                # only live counterpart is a dirty parent (the dirty set is
                # ancestor-closed, so a clean region never has a dirty child).
                artifact = reuse[region.region_id]
                parent = region.parent_region
                body = replay_body(
                    session,
                    region_id=region.region_id,
                    machine_index=machine_of_region[region.region_id],
                    recording=artifact.recording,
                    base_report=artifact.report,
                    reuse_ids=set(reuse),
                    live_sources=(
                        [parent] if parent is not None and parent not in reuse else []
                    ),
                    mailboxes=mailboxes,
                    machines_of_regions=machine_of_region,
                    librarian_machine=parser_machine if librarian_active else None,
                    librarian_mailbox=librarian_mailbox,
                )
                session.spawn(
                    body,
                    name=f"replay-{region.region_id}",
                    machine=machine_of_region[region.region_id],
                    coordinator=True,
                )
                continue
            job = WorkerJob(
                factory=evaluator_body,
                kwargs=dict(
                    region_id=region.region_id,
                    machine_index=machine_of_region[region.region_id],
                    evaluator_kind=config.evaluator,
                    cost_model=config.cost_model,
                    mailboxes=mailboxes,
                    machines_of_regions=machine_of_region,
                    parser_machine=parser_machine,
                    parser_mailbox=parser_mailbox,
                    librarian_machine=parser_machine if librarian_active else None,
                    librarian_mailbox=librarian_mailbox,
                    librarian_attributes=(
                        config.librarian_attributes if librarian_active else ()
                    ),
                    use_priority=config.use_priority,
                    use_tables=config.use_precompiled_tables,
                    use_compiled=(
                        config.use_compiled_plans and config.use_precompiled_tables
                    ),
                    attribute_phase=config.attribute_phase,
                    record=record,
                ),
                shared={"grammar_bundle": self._grammar_bundle},
            )
            session.spawn(
                job,
                name=f"evaluator-{region.region_id}",
                machine=machine_of_region[region.region_id],
            )

        if librarian_active:
            session.spawn(
                librarian.run(
                    parser_machine,
                    parser_mailbox,
                    expected_assemblies=len(librarian_attrs),
                ),
                name="librarian",
                machine=parser_machine,
                coordinator=True,
            )

        outcome: Dict[str, Any] = {
            "root_attributes": {},
            "assembled": {},
            "finish_time": 0.0,
            "ship_wall": 0.0,
        }
        session.spawn(
            self._parser_process(
                session,
                parser_machine,
                parser_mailbox,
                decomposition,
                machine_of_region,
                mailboxes,
                root_inherited if root_inherited is not None else config.root_inherited,
                expected_assemblies=len(librarian_attrs) if librarian_active else 0,
                outcome=outcome,
                reuse_ids=set(reuse),
            ),
            name="parser",
            machine=parser_machine,
            coordinator=True,
        )

        wall_evaluation = session.run()

        # Every evaluator publishes its report as the last step of its body; a missing
        # report after a successful run means results were lost in transit (e.g. a
        # worker process died silently), which must be loud, not zero-filled.
        reports_by_region = session.reports
        missing = [
            region_id for region_id in region_ids if region_id not in reports_by_region
        ]
        if missing:
            raise BackendError(
                f"backend {session.name!r} returned no evaluator report for "
                f"region(s) {missing}"
            )
        aggregate = EvaluationStatistics()
        memory = 0
        reports = []
        for region_id in region_ids:
            report = reports_by_region[region_id]
            if incremental is not None:
                # Harvest the incremental bookkeeping off the reports: recordings
                # feed the artifact cache, mismatches trigger another round, and
                # neither belongs in the report callers see.
                if report.recording is not None:
                    incremental.recordings[region_id] = report.recording
                    report.recording = None
                if report.replay_mismatches:
                    incremental.mismatches.extend(
                        (region_id, key) for key in report.replay_mismatches
                    )
                    report.replay_mismatches = None
            aggregate.merge(report.statistics)
            memory += report.memory_bytes
            reports.append(report)

        telemetry = session.telemetry()
        return CompilationReport(
            machines=machines,
            evaluator=config.evaluator,
            use_librarian=librarian_active,
            parse_time=parse_time,
            evaluation_time=outcome["finish_time"],
            decomposition=decomposition,
            root_attributes=outcome["root_attributes"],
            assembled=outcome["assembled"],
            evaluator_reports=reports,
            timeline=telemetry.timeline,
            utilization=telemetry.utilization,
            network_messages=telemetry.network_messages,
            network_bytes=telemetry.network_bytes,
            network_busy_time=telemetry.network_busy_time,
            statistics=aggregate,
            memory_bytes=memory,
            tree_nodes=tree_nodes,
            backend=session.name,
            wall_time_seconds=time.perf_counter() - wall_started,
            wall_evaluation_seconds=wall_evaluation,
            worker_count=session.worker_count,
            wall_ship_seconds=outcome["ship_wall"],
        )

    def _root_librarian_attributes(self) -> Tuple[str, ...]:
        start = self.grammar.start
        if start is None:
            return ()
        names = []
        for name in self.configuration.librarian_attributes:
            if start.has_attribute(name) and start.attribute(name).is_synthesized:
                names.append(name)
        return tuple(names)

    def _parser_process(
        self,
        substrate: Backend,
        parser_machine: int,
        parser_mailbox: Mailbox,
        decomposition: DecompositionPlan,
        machine_of_region: Dict[int, int],
        mailboxes: Dict[int, Mailbox],
        root_inherited: Dict[str, Any],
        expected_assemblies: int,
        outcome: Dict[str, Any],
        reuse_ids: Optional[Set[int]] = None,
    ) -> Generator:
        config = self.configuration
        reuse_ids = reuse_ids or set()
        # Regions cross a pickling boundary on the processes and sockets substrates
        # (another OS process, or another host entirely), so they ship in the packed
        # array-of-ints codec there; everywhere else the readable linearized records
        # are used (the simulated substrate must stay byte-identical, and in-process
        # transports never serialise).  When the substrate additionally shares a
        # kernel with its workers (processes), packed regions can go one step
        # further and ship zero-copy as shared-memory segment handles; the session
        # adopts each segment and unlinks it at close on every teardown path.
        use_packed = getattr(substrate, "packed_wire", False)
        use_shared = (
            use_packed
            and config.use_zero_copy_ship
            and getattr(substrate, "shared_ship", False)
            and shm.shared_memory_available()
        )

        def encode_region(root: ParseTreeNode, holes: Dict[int, int]) -> Any:
            if not use_packed:
                return linearize(root, holes)
            packed = pack(self.grammar, root, holes)
            if not use_shared:
                return packed
            try:
                handle, segment = shm.share_packed(packed)
            except OSError:
                # Shared memory refused (e.g. /dev/shm exhausted): fall back to
                # shipping the packed bytes through the mailbox for this region.
                return packed
            substrate.adopt_segment(segment)
            return handle

        ship_started = time.perf_counter()
        # Ship remote regions first (they must cross the network), then hand the root
        # region to the co-located evaluator.  Replayed regions are not shipped at
        # all — that is the "ship only dirty regions" half of incremental compiles.
        for region in decomposition.regions[1:]:
            if region.region_id in reuse_ids:
                continue
            holes = decomposition.holes_of(region.region_id)
            encoded: Any = encode_region(region.root, holes)
            cost = (
                config.cost_model.linearize_cost(encoded.size_bytes())
                + config.cost_model.message_cpu_cost
            )
            yield Compute(cost, ActivityKind.PARSE, f"ship region {region.label}")
            message = SubtreeMessage(
                region_id=region.region_id,
                parent_region=region.parent_region,
                tree=encoded,
                unique_base=base_for_region(region.region_id),
                label=region.label,
            )
            substrate.send(
                parser_machine,
                machine_of_region[region.region_id],
                message,
                message.size_bytes(),
                mailbox=mailboxes[region.region_id],
            )

        root_region = decomposition.regions[0]
        root_holes = decomposition.holes_of(0)
        root_encoded: Any = encode_region(root_region.root, root_holes)
        root_message = SubtreeMessage(
            region_id=0,
            parent_region=None,
            tree=root_encoded,
            unique_base=base_for_region(0),
            root_inherited=dict(root_inherited),
            label=root_region.label,
        )
        substrate.send(parser_machine, parser_machine, root_message, 0, mailbox=mailboxes[0])
        outcome["ship_wall"] = time.perf_counter() - ship_started

        expected_messages = 1 + expected_assemblies
        received = 0
        while received < expected_messages:
            message = yield Receive(parser_mailbox)
            if isinstance(message, ResultMessage):
                outcome["root_attributes"] = dict(message.attributes)
            elif isinstance(message, AssembledCodeMessage):
                outcome["assembled"][message.attribute] = message.text
            else:
                raise TypeError(f"parser received unexpected message {message!r}")
            received += 1
        outcome["finish_time"] = substrate.now
