"""The distributed (parallel) evaluator layer.

This package ties together the partitioning layer, the sequential evaluator schedulers
and the simulated cluster into the parallel compiler of the paper:

* a sequential **parser/coordinator** process that decomposes the parse tree and ships
  linearized subtrees to the evaluator machines;
* one **evaluator process** per region, running either the purely dynamic or the
  combined scheduler, exchanging region-boundary attribute values as messages;
* a **string librarian** process that receives each evaluator's code fragment once and
  assembles the final code from descriptors (the paper's result-propagation
  optimisation);
* **unique-identifier base values** handed to each evaluator so label generation never
  serialises the evaluation;
* the :class:`~repro.distributed.compiler.ParallelCompiler` driver and its
  :class:`~repro.distributed.compiler.CompilationReport`.
"""

from repro.distributed.protocol import (
    SubtreeMessage,
    AttributeMessage,
    ResultMessage,
    CodeFragmentMessage,
    AssembledCodeMessage,
)
from repro.distributed.unique_ids import UniqueIdGenerator, unique_id_context, next_unique_id
from repro.distributed.librarian import StringLibrarian
from repro.distributed.compiler import (
    ParallelCompiler,
    CompilerConfiguration,
    CompilationReport,
)

__all__ = [
    "SubtreeMessage",
    "AttributeMessage",
    "ResultMessage",
    "CodeFragmentMessage",
    "AssembledCodeMessage",
    "UniqueIdGenerator",
    "unique_id_context",
    "next_unique_id",
    "StringLibrarian",
    "ParallelCompiler",
    "CompilerConfiguration",
    "CompilationReport",
]
