"""Baselines the paper compares against (related-work section)."""

from repro.baselines.pipeline import PipelinedCompilerModel, PipelineReport
from repro.baselines.parallel_make import ParallelMakeModel, MakeReport

__all__ = [
    "PipelinedCompilerModel",
    "PipelineReport",
    "ParallelMakeModel",
    "MakeReport",
]
