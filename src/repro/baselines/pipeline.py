"""The pipelined-compiler baseline.

The paper's related-work section observes that pipelining the phases of a conventional
compiler (their attempt on the portable C compiler) "shows speedups limited to ≈2",
because the number of stages is small and the stages have unbalanced costs and data
dependencies.  This module models that alternative on the same simulated cluster: the
compilation is divided into a fixed pipeline of phases (lex, parse, semantic analysis,
code generation, assembly/output), each phase runs on its own machine, and the program
is streamed through the pipeline in chunks (compilation units / procedures).

The model is deliberately simple — the point of the baseline is the *structural* limit
(speedup bounded by the number of stages and by the largest stage), which is exactly
what the simulation exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.runtime.cluster import Cluster
from repro.runtime.cost import CostModel
from repro.runtime.machine import ActivityKind
from repro.runtime.network import NetworkParameters
from repro.runtime.simulator import Store

#: Default relative weights of the classic compiler phases (fractions of total work).
#: The weights are deliberately unbalanced — semantic analysis dominates, as in the
#: portable C compiler experiment the paper refers to — which is what limits the
#: achievable pipeline speedup to roughly two.
DEFAULT_STAGE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("scan", 0.08),
    ("parse", 0.12),
    ("semantics", 0.45),
    ("codegen", 0.25),
    ("assemble", 0.10),
)


@dataclass
class PipelineReport:
    """Result of one pipelined-compilation simulation."""

    stages: int
    chunks: int
    sequential_time: float
    pipelined_time: float
    stage_utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.pipelined_time == 0:
            return float("inf")
        return self.sequential_time / self.pipelined_time


class PipelinedCompilerModel:
    """Simulate compiling a program as a pipeline of phases over a chunk stream."""

    def __init__(
        self,
        stage_weights: Sequence[Tuple[str, float]] = DEFAULT_STAGE_WEIGHTS,
        network: Optional[NetworkParameters] = None,
        cost_model: Optional[CostModel] = None,
    ):
        total = sum(weight for _, weight in stage_weights)
        self.stage_weights = [(name, weight / total) for name, weight in stage_weights]
        self.network = network or NetworkParameters()
        self.cost_model = cost_model or CostModel()

    def run(
        self,
        total_work_seconds: float,
        chunks: int,
        chunk_bytes: int = 2000,
    ) -> PipelineReport:
        """Simulate one compilation of ``total_work_seconds`` of CPU work split into
        ``chunks`` pieces flowing through the pipeline (one machine per stage)."""
        if chunks < 1:
            raise ValueError("chunks must be >= 1")
        stage_count = len(self.stage_weights)
        cluster = Cluster(stage_count, network=self.network, cost_model=self.cost_model)
        mailboxes: List[Store] = [
            cluster.environment.store(f"stage-{index}.in") for index in range(stage_count)
        ]
        done = cluster.environment.store("pipeline.done")
        chunk_work = total_work_seconds / chunks

        def stage_process(index: int, name: str, weight: float) -> Generator:
            machine = cluster.machine(index)
            for _ in range(chunks):
                item = yield from machine.receive(mailboxes[index])
                yield from machine.compute(
                    chunk_work * weight, ActivityKind.OTHER, name
                )
                if index + 1 < stage_count:
                    cluster.send(
                        machine, cluster.machine(index + 1), item, chunk_bytes,
                        mailbox=mailboxes[index + 1],
                    )
                else:
                    done.put(item)

        for index, (name, weight) in enumerate(self.stage_weights):
            cluster.spawn(stage_process(index, name, weight), name=f"stage-{name}")

        def feeder() -> Generator:
            for chunk in range(chunks):
                mailboxes[0].put(("chunk", chunk))
                yield from cluster.machine(0).compute(0.0)

        cluster.spawn(feeder(), name="feeder")
        cluster.run()

        pipelined_time = cluster.now
        horizon = max(pipelined_time, 1e-12)
        utilization = {
            name: cluster.machine(index).utilization(horizon)
            for index, (name, _) in enumerate(self.stage_weights)
        }
        return PipelineReport(
            stages=stage_count,
            chunks=chunks,
            sequential_time=total_work_seconds,
            pipelined_time=pipelined_time,
            stage_utilization=utilization,
        )
