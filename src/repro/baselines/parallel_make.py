"""The parallel-make baseline.

The paper notes that "parallelizing several compilations can be done by using a parallel
version of the Unix make facility ... however, the approach suffers from differences in
size between compilations and from a sequential linking phase at the end."  This small
model reproduces that argument quantitatively: independent compilation jobs of unequal
sizes are scheduled onto machines, followed by a sequential link step proportional to
the total amount of produced code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class MakeReport:
    machines: int
    job_times: List[float]
    link_time: float
    sequential_time: float
    parallel_time: float

    @property
    def speedup(self) -> float:
        if self.parallel_time == 0:
            return float("inf")
        return self.sequential_time / self.parallel_time


class ParallelMakeModel:
    """LPT (longest-processing-time-first) scheduling of compile jobs plus a link step."""

    def __init__(self, link_fraction: float = 0.12):
        self.link_fraction = link_fraction

    def run(self, job_times: Sequence[float], machines: int) -> MakeReport:
        if machines < 1:
            raise ValueError("machines must be >= 1")
        jobs = sorted((float(t) for t in job_times), reverse=True)
        loads = [0.0] * machines
        for job in jobs:
            loads[loads.index(min(loads))] += job
        compile_parallel = max(loads) if loads else 0.0
        total_compile = sum(jobs)
        link_time = self.link_fraction * total_compile
        return MakeReport(
            machines=machines,
            job_times=list(jobs),
            link_time=link_time,
            sequential_time=total_compile + link_time,
            parallel_time=compile_parallel + link_time,
        )
