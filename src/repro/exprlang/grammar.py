"""The appendix expression grammar, in builder and textual-specification form."""

from __future__ import annotations

from typing import Any

from repro.grammar.attributes import AttributeConverter
from repro.grammar.builder import GrammarBuilder, Rule
from repro.grammar.grammar import AttributeGrammar
from repro.grammar.spec_parser import parse_grammar_spec
from repro.symtab.symbol_table import SymbolTable, st_add, st_create, st_lookup, st_get, st_put


def _number(text: str) -> int:
    return int(text)


def _add(left: int, right: int) -> int:
    return left + right


def _multiply(left: int, right: int) -> int:
    return left * right


def _stab_size(table: Any) -> int:
    return table.transmission_size() if isinstance(table, SymbolTable) else 8


def _stab_converter() -> AttributeConverter:
    return AttributeConverter(put=st_put, get=st_get, size_of=_stab_size)


def expression_grammar(min_split_size: int = 100) -> AttributeGrammar:
    """Build the appendix grammar programmatically.

    :param min_split_size: minimum linearized subtree size (abstract bytes) for a
        ``block`` subtree to be evaluated on a separate machine (the appendix uses a
        byte threshold for exactly this purpose).
    """
    builder = GrammarBuilder("exprlang")
    builder.name_terminals("IDENTIFIER", "NUMBER", value_attribute="string")
    builder.keywords("LET", "IN", "NI", "+", "*", "=", "(", ")")
    builder.nonterminal("main_expr", synthesized=["value"])
    builder.nonterminal("expr", synthesized=["value"], inherited=["stab"],
                        converters={"stab": _stab_converter()})
    builder.nonterminal(
        "block",
        synthesized=["value"],
        inherited=["stab"],
        split=True,
        min_split_size=min_split_size,
        converters={"stab": _stab_converter()},
    )
    builder.left("+")
    builder.left("*")

    builder.production(
        "main_expr -> expr",
        Rule("$$.value", ["$1.value"]),
        Rule("$1.stab", [], st_create, name="st_create"),
    )
    builder.production(
        "expr -> expr + expr",
        Rule("$$.value", ["$1.value", "$3.value"], _add, name="add"),
        Rule("$1.stab", ["$$.stab"]),
        Rule("$3.stab", ["$$.stab"]),
    )
    builder.production(
        "expr -> expr * expr",
        Rule("$$.value", ["$1.value", "$3.value"], _multiply, name="multiply"),
        Rule("$1.stab", ["$$.stab"]),
        Rule("$3.stab", ["$$.stab"]),
    )
    builder.production(
        "expr -> ( expr )",
        Rule("$$.value", ["$2.value"]),
        Rule("$2.stab", ["$$.stab"]),
    )
    builder.production(
        "expr -> IDENTIFIER",
        Rule("$$.value", ["$$.stab", "$1.string"], st_lookup, name="st_lookup"),
    )
    builder.production(
        "expr -> NUMBER",
        Rule("$$.value", ["$1.string"], _number, name="number"),
    )
    builder.production(
        "expr -> block",
        Rule("$$.value", ["$1.value"]),
        Rule("$1.stab", ["$$.stab"]),
    )
    builder.production(
        "block -> LET IDENTIFIER = expr IN expr NI",
        Rule("$$.value", ["$6.value"]),
        Rule("$4.stab", ["$$.stab"]),
        Rule("$6.stab", ["$$.stab", "$2.string", "$4.value"], st_add, name="st_add"),
    )
    return builder.build(start="main_expr")


#: Textual form of the same grammar, in the format accepted by
#: :func:`repro.grammar.spec_parser.parse_grammar_spec`.
EXPRESSION_SPEC = """
%name IDENTIFIER NUMBER
%keyword LET IN NI + * = ( )
%nosplit main_expr syn(value)
%nosplit expr syn(value) inh(stab)
%split 100 block syn(value) inh(stab)
%left +
%left *
%start main_expr
%%
main_expr : expr
    $$.value = $1.value
    $1.stab  = st_create()
;
expr : expr + expr
    $$.value = add($1.value, $3.value)
    $1.stab  = $$.stab
    $3.stab  = $$.stab
;
expr : expr * expr
    $$.value = multiply($1.value, $3.value)
    $1.stab  = $$.stab
    $3.stab  = $$.stab
;
expr : ( expr )
    $$.value = $2.value
    $2.stab  = $$.stab
;
expr : IDENTIFIER
    $$.value = st_lookup($$.stab, $1.string)
;
expr : NUMBER
    $$.value = number($1.string)
;
expr : block
    $$.value = $1.value
    $1.stab  = $$.stab
;
block : LET IDENTIFIER = expr IN expr NI
    $$.value = $6.value
    $4.stab  = $$.stab
    $6.stab  = st_add($$.stab, $2.string, $4.value)
;
"""


#: Semantic-function environment for :data:`EXPRESSION_SPEC`.
EXPRESSION_ENVIRONMENT = {
    "st_create": st_create,
    "st_add": st_add,
    "st_lookup": st_lookup,
    "add": _add,
    "multiply": _multiply,
    "number": _number,
}


def expression_grammar_from_spec() -> AttributeGrammar:
    """Parse :data:`EXPRESSION_SPEC` — exercises the textual specification pipeline."""
    return parse_grammar_spec(
        EXPRESSION_SPEC, environment=EXPRESSION_ENVIRONMENT, name="exprlang-spec"
    )
