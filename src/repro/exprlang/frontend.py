"""Scanner and parser front end for the appendix expression language."""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

from repro.exprlang.grammar import expression_grammar
from repro.grammar.grammar import AttributeGrammar
from repro.parsing.lexer import Lexer, Token, TokenSpec
from repro.parsing.parser import Parser
from repro.tree.node import ParseTreeNode

_TOKEN_SPECS = [
    TokenSpec("whitespace", r"[ \t\r\n]+", skip=True),
    TokenSpec("comment", r"--[^\n]*", skip=True),
    TokenSpec("NUMBER", r"[0-9]+"),
    TokenSpec("IDENTIFIER", r"[A-Za-z_][A-Za-z0-9_]*"),
    TokenSpec("+", r"\+"),
    TokenSpec("*", r"\*"),
    TokenSpec("=", r"="),
    TokenSpec("(", r"\("),
    TokenSpec(")", r"\)"),
]

_KEYWORDS = {"let": "LET", "in": "IN", "ni": "NI"}

#: Shared compiled scanner (rule compilation is not free; the rules never change).
_LEXER = Lexer(_TOKEN_SPECS, keywords=_KEYWORDS)


def tokenize_expression(source: str) -> List[Token]:
    """Scan an expression-language source string into tokens."""
    return _LEXER.tokenize(source)


@lru_cache(maxsize=None)
def _default_parser() -> Parser:
    return Parser(expression_grammar())


def parse_expression(
    source: str, grammar: Optional[AttributeGrammar] = None
) -> ParseTreeNode:
    """Parse expression-language source into a parse tree.

    With the default grammar a shared parser instance (and parse table) is reused; pass
    an explicit ``grammar`` to parse against a customised variant (e.g. different
    minimum split sizes).
    """
    tokens = tokenize_expression(source)
    if grammar is None:
        parser = _default_parser()
    else:
        parser = Parser(grammar)
    return parser.parse(tokens)
