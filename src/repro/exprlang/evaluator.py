"""Convenience evaluation helpers and workload generation for the expression language."""

from __future__ import annotations

import random
import warnings
from typing import Optional

from repro.backends.base import Substrate
from repro.evaluation.combined import CombinedEvaluator
from repro.evaluation.dynamic import DynamicEvaluator
from repro.evaluation.static import StaticEvaluator
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.grammar.grammar import AttributeGrammar


_EVALUATORS = {
    "static": StaticEvaluator,
    "dynamic": DynamicEvaluator,
    "combined": CombinedEvaluator,
}


def evaluate_expression(
    source: str,
    evaluator: str = "static",
    grammar: Optional[AttributeGrammar] = None,
) -> int:
    """Parse and evaluate an expression, returning its integer value.

    :param evaluator: ``"static"``, ``"dynamic"`` or ``"combined"`` — all three must
        agree, which the test suite checks extensively.
    """
    if evaluator not in _EVALUATORS:
        raise ValueError(
            f"unknown evaluator {evaluator!r}; choose from {sorted(_EVALUATORS)}"
        )
    grammar = grammar or expression_grammar()
    tree = parse_expression(source, grammar)
    _EVALUATORS[evaluator](grammar).evaluate(tree)
    return tree.get_attribute("value")


def evaluate_expression_parallel(
    source: str,
    machines: int = 2,
    evaluator: str = "combined",
    grammar: Optional[AttributeGrammar] = None,
    backend: Optional[str] = None,
    substrate: Optional[Substrate] = None,
) -> int:
    """Deprecated: use ``repro.api.Compiler("exprlang")`` (this delegates to it).

    Pass a started :class:`~repro.backends.base.Substrate` to borrow a persistent
    worker pool, or a ``backend`` name for a one-shot run (``"simulated"`` by
    default).  With the default grammar the call goes through the language
    registry's shared engine (grammar analyses built once per process, bundle
    shipped to each pooled worker once); a custom ``grammar`` builds a one-off
    engine the old way.
    """
    warnings.warn(
        "evaluate_expression_parallel is deprecated; use "
        "repro.api.Compiler('exprlang', ...).compile(source).value "
        "(or Session(...).compile('exprlang', source))",
        DeprecationWarning,
        stacklevel=2,
    )
    if grammar is None:
        from repro.api import Compiler  # local import: repro.api builds on exprlang

        return Compiler(
            "exprlang",
            machines=machines,
            evaluator=evaluator,
            backend=backend,
            substrate=substrate,
        ).compile(source).value
    from repro.distributed.compiler import CompilerConfiguration, ParallelCompiler

    compiler = ParallelCompiler(grammar, CompilerConfiguration(evaluator=evaluator))
    tree = parse_expression(source, compiler.grammar)
    report = compiler.compile_tree(
        tree, machines, backend=backend, substrate=substrate
    )
    return report.root_attributes["value"]


def random_expression_source(
    size: int,
    seed: int = 0,
    nesting: int = 3,
) -> str:
    """Generate a pseudo-random expression with roughly ``size`` operators.

    Used by benchmarks and the distributed examples to produce expression trees large
    enough to be split across several evaluators.  ``let`` blocks are emitted with
    probability proportional to ``nesting`` so the tree contains splittable ``block``
    nonterminals.
    """
    rng = random.Random(seed)

    def generate(budget: int, depth: int, bound: list) -> str:
        if budget <= 1:
            if bound and rng.random() < 0.4:
                return rng.choice(bound)
            return str(rng.randint(1, 9))
        if depth < nesting and budget >= 4 and rng.random() < 0.35:
            name = f"v{rng.randint(0, 999)}"
            binding_budget = max(1, budget // 3)
            body_budget = budget - binding_budget - 1
            binding = generate(binding_budget, depth + 1, bound)
            body = generate(body_budget, depth + 1, bound + [name])
            return f"let {name} = {binding} in {body} ni"
        operator = rng.choice(["+", "*"])
        left_budget = rng.randint(1, budget - 1)
        left = generate(left_budget, depth + 1, bound)
        right = generate(budget - left_budget, depth + 1, bound)
        return f"({left} {operator} {right})"

    return generate(max(1, size), 0, [])
