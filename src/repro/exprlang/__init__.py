"""The paper's appendix language: arithmetic expressions with ``let`` bindings.

The appendix of the paper gives a small attribute grammar that "specifies the value of
expressions involving addition and multiplication", with identifiers bound by
``let x = 3 in 1 + 2 * x ni``.  This package reproduces that grammar both through the
programmatic builder (:func:`expression_grammar`) and through the textual specification
format (:data:`EXPRESSION_SPEC` + :func:`expression_grammar_from_spec`), provides a
scanner/parser front end, and is used as the quick-start example and as a small but
complete workload for the evaluators and the distributed runtime.
"""

from repro.exprlang.grammar import (
    expression_grammar,
    expression_grammar_from_spec,
    EXPRESSION_SPEC,
)
from repro.exprlang.frontend import parse_expression, tokenize_expression
from repro.exprlang.evaluator import (
    evaluate_expression,
    evaluate_expression_parallel,
    random_expression_source,
)

__all__ = [
    "expression_grammar",
    "expression_grammar_from_spec",
    "EXPRESSION_SPEC",
    "parse_expression",
    "tokenize_expression",
    "evaluate_expression",
    "evaluate_expression_parallel",
    "random_expression_source",
]
