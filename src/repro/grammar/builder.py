"""A compact programmatic DSL for defining attribute grammars.

Example (the paper's appendix expression grammar, abbreviated)::

    builder = GrammarBuilder("expr")
    builder.name_terminals("IDENTIFIER", "NUMBER")
    builder.keywords("LET", "IN", "NI", "+", "*", "=")
    builder.nonterminal("expr", synthesized=["value"], inherited=["stab"])
    builder.nonterminal("block", synthesized=["value"], inherited=["stab"],
                        split=True, min_split_size=100)
    builder.left("+")
    builder.left("*")
    builder.production(
        "expr -> expr + expr",
        Rule("$$.value", ["$1.value", "$3.value"], lambda a, b: a + b),
        Rule("$1.stab", ["$$.stab"], lambda s: s),
        Rule("$3.stab", ["$$.stab"], lambda s: s),
    )
    grammar = builder.build(start="expr")
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.grammar.attributes import AttributeConverter, AttributeDecl, AttributeKind
from repro.grammar.grammar import AttributeGrammar, GrammarError
from repro.grammar.productions import AttributeRef, Production, SemanticRule
from repro.grammar.symbols import Nonterminal, Terminal


def _identity(value: Any) -> Any:
    return value


class Rule:
    """Declarative form of a semantic rule used with :meth:`GrammarBuilder.production`.

    :param target: target occurrence, e.g. ``"$$.value"`` or ``"$2.stab"``.
    :param arguments: argument occurrences in the order the function expects them.
    :param function: pure semantic function; defaults to identity (exactly one argument)
        which covers the very common copy rules such as ``$1.stab = $$.stab``.
    :param cost: extra abstract CPU cost for the simulator's cost model.
    """

    __slots__ = ("target", "arguments", "function", "name", "cost")

    def __init__(
        self,
        target: str,
        arguments: Sequence[str] = (),
        function: Optional[Callable[..., Any]] = None,
        name: Optional[str] = None,
        cost: float = 0.0,
    ):
        self.target = target
        self.arguments = tuple(arguments)
        if function is None:
            if len(self.arguments) != 1:
                raise ValueError(
                    f"rule for {target!r}: a copy rule needs exactly one argument"
                )
            function = _identity
        self.function = function
        self.name = name
        self.cost = cost

    def to_semantic_rule(self) -> SemanticRule:
        return SemanticRule(
            target=AttributeRef.parse(self.target),
            arguments=[AttributeRef.parse(a) for a in self.arguments],
            function=self.function,
            name=self.name,
            cost=self.cost,
        )


def copy_rule(target: str, source: str) -> Rule:
    """Convenience for the ubiquitous copy rules (``$i.stab = $$.stab``)."""
    return Rule(target, [source], _identity, name="copy")


class GrammarBuilder:
    """Incrementally assemble an :class:`AttributeGrammar`."""

    def __init__(self, name: str = "grammar"):
        self._grammar = AttributeGrammar(name=name)
        self._precedence: List[Tuple[str, Tuple[str, ...]]] = []
        self._start_name: Optional[str] = None

    # ---------------------------------------------------------------- terminals

    def terminal(self, name: str, value_attribute: Optional[str] = None) -> Terminal:
        """Declare one terminal; ``value_attribute`` names its scanner attribute."""
        return self._grammar.add_terminal(Terminal(name, value_attribute))

    def name_terminals(self, *names: str, value_attribute: str = "string") -> None:
        """Declare ``%name`` terminals carrying a scanner-computed attribute."""
        for name in names:
            self.terminal(name, value_attribute)

    def keywords(self, *names: str) -> None:
        """Declare ``%keyword`` terminals with no associated value."""
        for name in names:
            self.terminal(name, None)

    # ------------------------------------------------------------- nonterminals

    def nonterminal(
        self,
        name: str,
        synthesized: Iterable[str] = (),
        inherited: Iterable[str] = (),
        split: bool = False,
        min_split_size: int = 0,
        priority: Iterable[str] = (),
        converters: Optional[Dict[str, AttributeConverter]] = None,
    ) -> Nonterminal:
        """Declare a nonterminal with its attributes.

        :param priority: names of attributes to mark as priority attributes.
        :param converters: optional per-attribute transmission converters.
        """
        priority_set = set(priority)
        converters = converters or {}
        nonterminal = Nonterminal(name, splittable=split, min_split_size=min_split_size)
        for attr in synthesized:
            nonterminal.declare(
                AttributeDecl(
                    attr,
                    AttributeKind.SYNTHESIZED,
                    priority=attr in priority_set,
                    converter=converters.get(attr),
                )
            )
        for attr in inherited:
            nonterminal.declare(
                AttributeDecl(
                    attr,
                    AttributeKind.INHERITED,
                    priority=attr in priority_set,
                    converter=converters.get(attr),
                )
            )
        unknown = priority_set - set(nonterminal.attribute_names)
        if unknown:
            raise GrammarError(
                f"nonterminal {name!r}: priority attributes {sorted(unknown)} are not declared"
            )
        return self._grammar.add_nonterminal(nonterminal)

    # --------------------------------------------------------------- precedence

    def left(self, *tokens: str) -> None:
        self._precedence.append(("left", tokens))

    def right(self, *tokens: str) -> None:
        self._precedence.append(("right", tokens))

    def nonassoc(self, *tokens: str) -> None:
        self._precedence.append(("nonassoc", tokens))

    # -------------------------------------------------------------- productions

    def production(
        self,
        signature: str,
        *rules: Rule,
        label: Optional[str] = None,
        precedence: Optional[str] = None,
    ) -> Production:
        """Add a production given as ``"lhs -> sym1 sym2 ..."`` plus its rules.

        Every symbol mentioned must already be declared (terminals implicitly declared
        as keywords if unknown, so punctuation such as ``+`` can be used directly).
        """
        lhs_name, rhs_names = self._parse_signature(signature)
        lhs = self._grammar.nonterminals.get(lhs_name)
        if lhs is None:
            raise GrammarError(f"production {signature!r}: unknown nonterminal {lhs_name!r}")
        rhs = []
        for symbol_name in rhs_names:
            if symbol_name in self._grammar.nonterminals:
                rhs.append(self._grammar.nonterminals[symbol_name])
            elif symbol_name in self._grammar.terminals:
                rhs.append(self._grammar.terminals[symbol_name])
            else:
                rhs.append(self.terminal(symbol_name))
        production = Production(lhs, rhs, label=label, precedence=precedence)
        for rule in rules:
            production.add_rule(rule.to_semantic_rule())
        return self._grammar.add_production(production)

    @staticmethod
    def _parse_signature(signature: str) -> Tuple[str, List[str]]:
        if "->" not in signature:
            raise GrammarError(f"production signature {signature!r} must contain '->'")
        lhs, _, rhs = signature.partition("->")
        lhs = lhs.strip()
        rhs_names = rhs.split()
        if not lhs:
            raise GrammarError(f"production signature {signature!r} has an empty left side")
        return lhs, rhs_names

    # -------------------------------------------------------------------- build

    def start(self, name: str) -> None:
        self._start_name = name

    def build(self, start: Optional[str] = None, validate: bool = True) -> AttributeGrammar:
        """Finalize the grammar.  ``start`` overrides any earlier :meth:`start` call."""
        start_name = start or self._start_name
        if start_name is None:
            raise GrammarError("no start symbol specified")
        if start_name not in self._grammar.nonterminals:
            raise GrammarError(f"start symbol {start_name!r} is not a declared nonterminal")
        self._grammar.start = self._grammar.nonterminals[start_name]
        self._grammar.precedence = list(self._precedence)
        if validate:
            self._grammar.validate()
        return self._grammar
