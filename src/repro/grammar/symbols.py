"""Grammar symbols: terminals and nonterminals.

Terminology follows the paper: *name* terminals (``%name`` in the appendix syntax) carry
an attribute value computed by the scanner, *keyword* terminals (``%keyword``) carry no
value.  Nonterminals declare synthesized and inherited attributes and may be marked as
*split points* (``%split``) at which the parser is allowed to detach a subtree for
evaluation on another machine.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.grammar.attributes import AttributeDecl, AttributeKind


class Symbol:
    """Base class for grammar symbols.

    Symbols are identified by name; two symbols with the same name and class compare
    equal, which lets grammar fragments built independently be combined.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("symbol name must be non-empty")
        self.name = name

    @property
    def is_terminal(self) -> bool:
        raise NotImplementedError

    @property
    def is_nonterminal(self) -> bool:
        return not self.is_terminal

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Symbol)
            and self.is_terminal == other.is_terminal
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.is_terminal, self.name))

    def __repr__(self) -> str:
        kind = "Terminal" if self.is_terminal else "Nonterminal"
        return f"{kind}({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Terminal(Symbol):
    """A terminal symbol (token kind).

    :param name: token kind name, e.g. ``"IDENTIFIER"`` or ``"+"``.
    :param value_attribute: name of the scanner-supplied attribute, or ``None`` for
        keyword terminals that carry no value.  The paper's ``%name`` terminals use
        ``"string"`` by convention.
    """

    __slots__ = ("value_attribute",)

    def __init__(self, name: str, value_attribute: Optional[str] = None):
        super().__init__(name)
        self.value_attribute = value_attribute

    @property
    def is_terminal(self) -> bool:
        return True

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        if self.value_attribute is None:
            return ()
        return (self.value_attribute,)

    def has_attribute(self, name: str) -> bool:
        return name == self.value_attribute


class Nonterminal(Symbol):
    """A nonterminal symbol with attribute declarations and split policy.

    :param name: nonterminal name.
    :param splittable: whether subtrees rooted at this nonterminal may be detached and
        evaluated on a separate machine (the paper's ``%split`` declaration).
    :param min_split_size: minimum linearized size (in abstract bytes) for a subtree
        rooted here to be considered for separate evaluation.  Scaled at run time by the
        decomposition planner.
    """

    __slots__ = ("attributes", "splittable", "min_split_size")

    def __init__(
        self,
        name: str,
        splittable: bool = False,
        min_split_size: int = 0,
    ):
        super().__init__(name)
        self.attributes: Dict[str, AttributeDecl] = {}
        self.splittable = splittable
        self.min_split_size = min_split_size

    @property
    def is_terminal(self) -> bool:
        return False

    def declare(self, decl: AttributeDecl) -> AttributeDecl:
        """Add an attribute declaration, rejecting duplicates."""
        if decl.name in self.attributes:
            raise ValueError(
                f"attribute {decl.name!r} already declared on nonterminal {self.name!r}"
            )
        self.attributes[decl.name] = decl
        return decl

    def attribute(self, name: str) -> AttributeDecl:
        try:
            return self.attributes[name]
        except KeyError:
            raise KeyError(
                f"nonterminal {self.name!r} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self.attributes

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self.attributes)

    @property
    def synthesized(self) -> Tuple[AttributeDecl, ...]:
        return tuple(
            d for d in self.attributes.values() if d.kind is AttributeKind.SYNTHESIZED
        )

    @property
    def inherited(self) -> Tuple[AttributeDecl, ...]:
        return tuple(
            d for d in self.attributes.values() if d.kind is AttributeKind.INHERITED
        )
