"""The :class:`AttributeGrammar` container and its well-formedness checks."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grammar.attributes import AttributeKind
from repro.grammar.productions import AttributeRef, Production
from repro.grammar.symbols import Nonterminal, Symbol, Terminal


class GrammarError(Exception):
    """Raised when a grammar is malformed (incomplete, inconsistent or circularly
    declared)."""


class AttributeGrammar:
    """An attribute grammar: CFG + attribute declarations + semantic rules.

    The grammar is the single specification from which the paper generates both the
    parser and the (sequential and parallel) attribute evaluators.  This class holds the
    specification; analysis lives in :mod:`repro.analysis`, parsing in
    :mod:`repro.parsing` and evaluation in :mod:`repro.evaluation` /
    :mod:`repro.distributed`.

    :param name: grammar name, used in diagnostics.
    :param start: start nonterminal.
    :param precedence: YACC-style precedence table: a list of ``(assoc, [token, ...])``
        entries from lowest to highest precedence, where ``assoc`` is ``"left"``,
        ``"right"`` or ``"nonassoc"``.
    """

    def __init__(
        self,
        name: str = "grammar",
        start: Optional[Nonterminal] = None,
        precedence: Optional[Sequence[Tuple[str, Sequence[str]]]] = None,
    ):
        self.name = name
        self.start: Optional[Nonterminal] = start
        self.terminals: Dict[str, Terminal] = {}
        self.nonterminals: Dict[str, Nonterminal] = {}
        self.productions: List[Production] = []
        self.precedence: List[Tuple[str, Tuple[str, ...]]] = [
            (assoc, tuple(tokens)) for assoc, tokens in (precedence or [])
        ]
        self._productions_by_lhs: Dict[str, List[Production]] = {}

    # ------------------------------------------------------------------ symbols

    def add_terminal(self, terminal: Terminal) -> Terminal:
        existing = self.terminals.get(terminal.name)
        if existing is not None:
            return existing
        if terminal.name in self.nonterminals:
            raise GrammarError(f"symbol {terminal.name!r} already declared as nonterminal")
        self.terminals[terminal.name] = terminal
        return terminal

    def add_nonterminal(self, nonterminal: Nonterminal) -> Nonterminal:
        existing = self.nonterminals.get(nonterminal.name)
        if existing is not None:
            return existing
        if nonterminal.name in self.terminals:
            raise GrammarError(f"symbol {nonterminal.name!r} already declared as terminal")
        self.nonterminals[nonterminal.name] = nonterminal
        return nonterminal

    def symbol(self, name: str) -> Symbol:
        if name in self.nonterminals:
            return self.nonterminals[name]
        if name in self.terminals:
            return self.terminals[name]
        raise KeyError(f"grammar {self.name!r} has no symbol named {name!r}")

    # -------------------------------------------------------------- productions

    def add_production(self, production: Production) -> Production:
        self.add_nonterminal(production.lhs)
        for symbol in production.rhs:
            if symbol.is_terminal:
                self.add_terminal(symbol)  # type: ignore[arg-type]
            else:
                self.add_nonterminal(symbol)  # type: ignore[arg-type]
        production.index = len(self.productions)
        self.productions.append(production)
        self._productions_by_lhs.setdefault(production.lhs.name, []).append(production)
        return production

    def productions_for(self, nonterminal: Nonterminal) -> Tuple[Production, ...]:
        return tuple(self._productions_by_lhs.get(nonterminal.name, ()))

    # ------------------------------------------------------------------ queries

    @property
    def split_nonterminals(self) -> Tuple[Nonterminal, ...]:
        """Nonterminals at which the parse tree may be split for remote evaluation."""
        return tuple(nt for nt in self.nonterminals.values() if nt.splittable)

    def attribute_count(self) -> int:
        return sum(len(nt.attributes) for nt in self.nonterminals.values())

    def rule_count(self) -> int:
        return sum(len(p.rules) for p in self.productions)

    # --------------------------------------------------------------- validation

    def validate(self) -> None:
        """Check structural well-formedness.

        * a start symbol is set and derives every nonterminal (no unreachable
          nonterminals with productions is a warning-level condition we treat as error);
        * every nonterminal has at least one production (completeness of the CFG);
        * every production defines each of its output occurrences exactly once
          (normal-form completeness and uniqueness);
        * semantic rules only read occurrences that are legitimately available.

        Raises :class:`GrammarError` with an aggregate message on failure.  Circularity
        is checked separately by :func:`repro.analysis.cycles.check_noncircular` because
        it requires the induced-dependency fixpoint.
        """
        problems: List[str] = []
        if self.start is None:
            problems.append("no start symbol declared")
        elif self.start.name not in self.nonterminals:
            problems.append(f"start symbol {self.start.name!r} is not a grammar nonterminal")

        for nonterminal in self.nonterminals.values():
            if not self._productions_by_lhs.get(nonterminal.name):
                problems.append(f"nonterminal {nonterminal.name!r} has no productions")

        for production in self.productions:
            problems.extend(self._validate_production(production))

        if self.start is not None:
            unreachable = self._unreachable_nonterminals()
            for name in sorted(unreachable):
                problems.append(f"nonterminal {name!r} is unreachable from the start symbol")

        if problems:
            raise GrammarError(
                f"grammar {self.name!r} is not well-formed:\n  - " + "\n  - ".join(problems)
            )

    def _validate_production(self, production: Production) -> List[str]:
        problems: List[str] = []
        must_define = set(production.defined_occurrences())
        defined: Set[AttributeRef] = set()
        usable = set(production.used_occurrences()) | must_define

        for rule in production.rules:
            if rule.target not in must_define:
                problems.append(
                    f"{production.label}: rule defines {rule.target!r}, which is not an "
                    "output occurrence of this production (normal form violation)"
                )
            if rule.target in defined:
                problems.append(
                    f"{production.label}: {rule.target!r} is defined more than once"
                )
            defined.add(rule.target)
            for argument in rule.arguments:
                if argument not in usable:
                    problems.append(
                        f"{production.label}: rule for {rule.target!r} reads {argument!r}, "
                        "which is not an available occurrence"
                    )

        for missing in sorted(must_define - defined, key=lambda r: (r.position, r.name)):
            problems.append(
                f"{production.label}: no semantic rule defines {missing!r}"
            )
        return problems

    def _unreachable_nonterminals(self) -> Set[str]:
        assert self.start is not None
        reachable: Set[str] = set()
        frontier = [self.start.name]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for production in self._productions_by_lhs.get(name, ()):
                for symbol in production.rhs:
                    if symbol.is_nonterminal and symbol.name not in reachable:
                        frontier.append(symbol.name)
        return set(self.nonterminals) - reachable

    # ------------------------------------------------------------------- misc

    def summary(self) -> str:
        """One-line inventory, comparable to the paper's grammar-size statement."""
        return (
            f"grammar {self.name!r}: {len(self.productions)} productions, "
            f"{len(self.nonterminals)} nonterminals, {len(self.terminals)} terminals, "
            f"{self.rule_count()} semantic rules"
        )

    def __repr__(self) -> str:
        return f"AttributeGrammar({self.name!r}, productions={len(self.productions)})"
