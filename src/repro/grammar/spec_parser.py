"""Parser for a textual attribute-grammar specification format.

The paper's evaluator generator accepts a YACC-flavoured textual specification (shown in
its appendix).  This module implements a close textual equivalent so grammars can be
kept in ``.ag`` files rather than Python code.  Semantic functions are looked up by name
in a caller-supplied environment, mirroring the paper's convention that functions such
as ``st_add`` are "supplied by a standard library ... and trusted not to produce any
visible side effects".

Format
------

Declarations come first, one per line::

    %name IDENTIFIER NUMBER            # terminals with a scanner-computed attribute
    %keyword LET IN NI + * = ( )       # terminals with no value
    %nosplit expr syn(value) inh(stab) # nonterminal that may not head a remote subtree
    %split 100 block syn(value) inh(stab) # splittable, minimum subtree size 100
    %priority stab                     # attribute names treated as priority attributes
    %left +                            # precedence/associativity, lowest first
    %left *
    %start main_expr

A ``%%`` line separates declarations from productions.  Each production is::

    expr : expr + expr
        $$.value = add($1.value, $3.value)
        $1.stab  = $$.stab
        $3.stab  = $$.stab
    ;

A rule right-hand side is either a single attribute reference (a copy rule) or a call
``function(ref, ref, ...)`` where ``function`` names an entry in the environment.
Comments start with ``#`` and run to end of line.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.grammar.builder import GrammarBuilder, Rule
from repro.grammar.grammar import AttributeGrammar, GrammarError


class SpecSyntaxError(GrammarError):
    """Raised for malformed textual grammar specifications."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_ATTR_GROUP = re.compile(r"(syn|inh)\(([^)]*)\)")
_CALL = re.compile(r"^(\w+)\((.*)\)$", re.S)


def _strip_comment(line: str) -> str:
    if "#" in line:
        line = line[: line.index("#")]
    return line.rstrip()


def parse_grammar_spec(
    text: str,
    environment: Optional[Mapping[str, Callable[..., Any]]] = None,
    name: str = "spec",
) -> AttributeGrammar:
    """Parse a textual specification and return a validated grammar.

    :param text: specification source.
    :param environment: mapping from function names used in semantic rules to Python
        callables.  Copy rules need no environment entry.
    :param name: grammar name for diagnostics.
    """
    environment = dict(environment or {})
    builder = GrammarBuilder(name=name)
    lines = text.splitlines()
    priority_attributes: List[str] = []
    pending_nonterminals: List[Tuple[int, str]] = []  # lines needing priority re-check
    start_symbol: Optional[str] = None

    # Split into declaration and production sections.
    separator_index = None
    for index, raw in enumerate(lines):
        if _strip_comment(raw).strip() == "%%":
            separator_index = index
            break
    if separator_index is None:
        raise SpecSyntaxError("specification is missing the '%%' separator")

    declaration_lines = lines[:separator_index]
    production_lines = lines[separator_index + 1 :]

    # First pass over declarations to collect %priority so nonterminal declarations can
    # use it regardless of ordering.
    for line_number, raw in enumerate(declaration_lines, start=1):
        line = _strip_comment(raw).strip()
        if line.startswith("%priority"):
            priority_attributes.extend(line.split()[1:])

    for line_number, raw in enumerate(declaration_lines, start=1):
        line = _strip_comment(raw).strip()
        if not line or line.startswith("%priority"):
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "%name":
            builder.name_terminals(*tokens[1:])
        elif keyword == "%keyword":
            builder.keywords(*tokens[1:])
        elif keyword in ("%nosplit", "%split"):
            _parse_nonterminal_decl(
                builder, keyword, tokens[1:], priority_attributes, line_number
            )
        elif keyword == "%start":
            if len(tokens) < 2:
                raise SpecSyntaxError("%start needs a nonterminal name", line_number)
            start_symbol = tokens[1]
        elif keyword == "%left":
            builder.left(*tokens[1:])
        elif keyword == "%right":
            builder.right(*tokens[1:])
        elif keyword == "%nonassoc":
            builder.nonassoc(*tokens[1:])
        else:
            raise SpecSyntaxError(f"unknown declaration {keyword!r}", line_number)

    if start_symbol is None:
        raise SpecSyntaxError("specification has no %start declaration")

    _parse_productions(builder, production_lines, environment, separator_index + 1)
    return builder.build(start=start_symbol)


def _parse_nonterminal_decl(
    builder: GrammarBuilder,
    keyword: str,
    tokens: Sequence[str],
    priority_attributes: Sequence[str],
    line_number: int,
) -> None:
    tokens = list(tokens)
    min_split_size = 0
    split = keyword == "%split"
    if split:
        if tokens and tokens[0].isdigit():
            min_split_size = int(tokens.pop(0))
    if not tokens:
        raise SpecSyntaxError(f"{keyword} needs a nonterminal name", line_number)
    nt_name = tokens.pop(0)
    rest = " ".join(tokens)
    synthesized: List[str] = []
    inherited: List[str] = []
    for kind, attrs in _ATTR_GROUP.findall(rest):
        names = [a.strip() for a in attrs.split(",") if a.strip()]
        if kind == "syn":
            synthesized.extend(names)
        else:
            inherited.extend(names)
    leftover = _ATTR_GROUP.sub("", rest).strip()
    if leftover:
        raise SpecSyntaxError(
            f"unexpected text {leftover!r} in nonterminal declaration", line_number
        )
    declared = set(synthesized) | set(inherited)
    builder.nonterminal(
        nt_name,
        synthesized=synthesized,
        inherited=inherited,
        split=split,
        min_split_size=min_split_size,
        priority=[a for a in priority_attributes if a in declared],
    )


def _parse_productions(
    builder: GrammarBuilder,
    lines: Sequence[str],
    environment: Mapping[str, Callable[..., Any]],
    line_offset: int,
) -> None:
    current_header: Optional[str] = None
    current_rules: List[Rule] = []
    header_line = 0

    def flush() -> None:
        nonlocal current_header, current_rules
        if current_header is None:
            return
        lhs, _, rhs = current_header.partition(":")
        signature = f"{lhs.strip()} -> {rhs.strip()}"
        builder.production(signature, *current_rules)
        current_header = None
        current_rules = []

    for offset, raw in enumerate(lines, start=line_offset + 1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line == ";":
            flush()
            continue
        if current_header is None:
            # Between productions every non-empty line must be a production header.
            if ":" not in line:
                raise SpecSyntaxError(
                    f"expected a production header ('lhs : rhs'), got {line!r}", offset
                )
            current_header = line
            header_line = offset
            continue
        current_rules.append(_parse_rule(line, environment, offset))
    if current_header is not None:
        raise SpecSyntaxError(
            "production starting here is not terminated by ';'", header_line
        )


def _parse_rule(
    line: str, environment: Mapping[str, Callable[..., Any]], line_number: int
) -> Rule:
    if "=" not in line:
        raise SpecSyntaxError(f"semantic rule {line!r} is missing '='", line_number)
    target, _, body = line.partition("=")
    target = target.strip()
    body = body.strip()
    call = _CALL.match(body)
    if call:
        function_name, argument_text = call.group(1), call.group(2)
        if function_name not in environment:
            raise SpecSyntaxError(
                f"semantic function {function_name!r} is not in the environment", line_number
            )
        arguments = [a.strip() for a in argument_text.split(",") if a.strip()]
        return Rule(
            target,
            arguments,
            environment[function_name],
            name=function_name,
        )
    # A bare reference is a copy rule.
    return Rule(target, [body], name="copy")
