"""Attribute declarations.

An attribute declaration describes one attribute of a nonterminal: whether it is
synthesized or inherited, whether it is a *priority* attribute (evaluated and propagated
as early as possible, as the paper uses for the global symbol table), and how its values
are converted to and from a flat representation for network transmission (the paper's
``st_put`` / ``st_get`` conversion functions).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class AttributeKind(enum.Enum):
    """Synthesized attributes flow up the tree, inherited attributes flow down."""

    SYNTHESIZED = "synthesized"
    INHERITED = "inherited"

    @property
    def is_synthesized(self) -> bool:
        return self is AttributeKind.SYNTHESIZED

    @property
    def is_inherited(self) -> bool:
        return self is AttributeKind.INHERITED


def _default_size_of(value: Any) -> int:
    """Crude size estimate (abstract bytes) used when no converter is supplied."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, frozenset, set)):
        return 8 + sum(_default_size_of(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(
            _default_size_of(k) + _default_size_of(v) for k, v in value.items()
        )
    size = getattr(value, "transmission_size", None)
    if size is not None:
        return int(size() if callable(size) else size)
    return 16


def _identity(value: Any) -> Any:
    """Default put/get conversion (module-level so converters stay picklable)."""
    return value


class AttributeConverter:
    """Converts attribute values to/from a flat transmissible representation.

    Mirrors the paper's requirement that attributes of splittable nonterminals come with
    conversion functions (``st_put`` / ``st_get``).  ``put`` flattens a value, ``get``
    rebuilds it, and ``size_of`` reports the size in abstract bytes used by the network
    model to charge transmission time.

    Converters (and hence grammars) must stay picklable: the pooled processes substrate
    ships grammar bundles to long-lived worker processes, so ``put``/``get``/``size_of``
    should be module-level functions, not lambdas or closures.
    """

    __slots__ = ("put", "get", "size_of")

    def __init__(
        self,
        put: Optional[Callable[[Any], Any]] = None,
        get: Optional[Callable[[Any], Any]] = None,
        size_of: Optional[Callable[[Any], int]] = None,
    ):
        self.put = put or _identity
        self.get = get or _identity
        self.size_of = size_of or _default_size_of


class AttributeDecl:
    """Declaration of one attribute of a nonterminal.

    :param name: attribute name (e.g. ``"value"``, ``"stab"``, ``"code"``).
    :param kind: :class:`AttributeKind`.
    :param priority: priority attributes are scheduled ahead of ordinary ready work and
        transmitted to remote evaluators as soon as they are computed.
    :param converter: optional :class:`AttributeConverter` for network transmission.
    """

    __slots__ = ("name", "kind", "priority", "converter")

    def __init__(
        self,
        name: str,
        kind: AttributeKind,
        priority: bool = False,
        converter: Optional[AttributeConverter] = None,
    ):
        self.name = name
        self.kind = kind
        self.priority = priority
        self.converter = converter or AttributeConverter()

    @property
    def is_synthesized(self) -> bool:
        return self.kind.is_synthesized

    @property
    def is_inherited(self) -> bool:
        return self.kind.is_inherited

    def size_of(self, value: Any) -> int:
        return self.converter.size_of(value)

    def __repr__(self) -> str:
        flags = ", priority" if self.priority else ""
        return f"AttributeDecl({self.name!r}, {self.kind.value}{flags})"
