"""Attribute grammar core: symbols, attributes, productions, semantic rules.

This package provides the data model used throughout the library.  An
:class:`~repro.grammar.grammar.AttributeGrammar` is a context-free grammar whose
nonterminals carry *synthesized* and *inherited* attribute declarations and whose
productions carry *semantic rules* (pure functions) defining those attributes, in the
style of Knuth (1968) and of the evaluator-generator input language described in the
appendix of Boehm & Zwaenepoel (ICDCS 1987).

Grammars can be defined programmatically with :class:`~repro.grammar.builder.GrammarBuilder`
or parsed from the paper's textual specification format with
:func:`~repro.grammar.spec_parser.parse_grammar_spec`.
"""

from repro.grammar.symbols import Symbol, Terminal, Nonterminal
from repro.grammar.attributes import AttributeKind, AttributeDecl
from repro.grammar.productions import AttributeRef, SemanticRule, Production
from repro.grammar.grammar import AttributeGrammar, GrammarError
from repro.grammar.builder import GrammarBuilder, Rule
from repro.grammar.spec_parser import parse_grammar_spec, SpecSyntaxError

__all__ = [
    "Symbol",
    "Terminal",
    "Nonterminal",
    "AttributeKind",
    "AttributeDecl",
    "AttributeRef",
    "SemanticRule",
    "Production",
    "AttributeGrammar",
    "GrammarError",
    "GrammarBuilder",
    "Rule",
    "parse_grammar_spec",
    "SpecSyntaxError",
]
