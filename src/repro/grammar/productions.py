"""Productions, attribute occurrences, and semantic rules.

Attribute occurrences are identified by ``AttributeRef(position, name)`` where position
0 denotes the left-hand-side nonterminal and positions 1..n denote right-hand-side
symbols, matching the paper's ``$$.x`` / ``$i.x`` notation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.grammar.symbols import Nonterminal, Symbol, Terminal
from repro.grammar.attributes import AttributeKind


class AttributeRef:
    """Reference to an attribute occurrence within a production.

    ``position`` is 0 for the left-hand side and 1-based for right-hand-side symbols;
    ``name`` is the attribute name.  Instances are hashable and used as graph vertices
    in dependency analysis.
    """

    __slots__ = ("position", "name")

    def __init__(self, position: int, name: str):
        if position < 0:
            raise ValueError("attribute reference position must be >= 0")
        self.position = position
        self.name = name

    @classmethod
    def parse(cls, text: str) -> "AttributeRef":
        """Parse ``"$$.attr"``, ``"lhs.attr"`` or ``"$3.attr"`` notation."""
        text = text.strip()
        if "." not in text:
            raise ValueError(f"malformed attribute reference {text!r}")
        head, _, attr = text.partition(".")
        head = head.strip()
        attr = attr.strip()
        if not attr:
            raise ValueError(f"malformed attribute reference {text!r}")
        if head in ("$$", "lhs", "$0"):
            return cls(0, attr)
        if head.startswith("$"):
            try:
                position = int(head[1:])
            except ValueError:
                raise ValueError(f"malformed attribute reference {text!r}") from None
            return cls(position, attr)
        raise ValueError(f"malformed attribute reference {text!r}")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AttributeRef)
            and self.position == other.position
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.position, self.name))

    def __repr__(self) -> str:
        head = "$$" if self.position == 0 else f"${self.position}"
        return f"{head}.{self.name}"


class SemanticRule:
    """A pure function defining one attribute occurrence of a production.

    :param target: the occurrence being defined (LHS synthesized or RHS inherited in
        normal-form grammars).
    :param arguments: occurrences whose values are passed, in order, to ``function``.
    :param function: pure function of the argument values; must have no visible side
        effects, as required by the attribute-grammar formalism.
    :param name: optional human-readable name used in traces and cost accounting.
    :param cost: abstract CPU cost charged by the simulator's cost model each time the
        rule is evaluated, on top of the model's per-rule base cost.
    """

    __slots__ = ("target", "arguments", "function", "name", "cost", "production")

    def __init__(
        self,
        target: AttributeRef,
        arguments: Sequence[AttributeRef],
        function: Callable[..., Any],
        name: Optional[str] = None,
        cost: float = 0.0,
    ):
        self.target = target
        self.arguments = tuple(arguments)
        self.function = function
        self.name = name or getattr(function, "__name__", "<rule>")
        self.cost = float(cost)
        self.production: Optional["Production"] = None

    def evaluate(self, argument_values: Sequence[Any]) -> Any:
        """Apply the semantic function to already-fetched argument values."""
        return self.function(*argument_values)

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.arguments)
        return f"SemanticRule({self.target!r} := {self.name}({args}))"


class Production:
    """A context-free production together with its semantic rules.

    :param lhs: left-hand-side nonterminal.
    :param rhs: right-hand-side symbols (terminals and nonterminals).
    :param rules: semantic rules; each must define an LHS synthesized attribute or an
        RHS inherited attribute (Bochmann normal form), which
        :meth:`repro.grammar.grammar.AttributeGrammar.validate` checks.
    :param label: optional name used in traces; defaults to ``lhs -> rhs``.
    :param precedence: optional terminal name whose precedence this production assumes
        for LALR conflict resolution (YACC's ``%prec``).
    """

    __slots__ = ("index", "lhs", "rhs", "rules", "label", "precedence")

    def __init__(
        self,
        lhs: Nonterminal,
        rhs: Sequence[Symbol],
        rules: Iterable[SemanticRule] = (),
        label: Optional[str] = None,
        precedence: Optional[str] = None,
    ):
        self.index: int = -1  # assigned by AttributeGrammar.add_production
        self.lhs = lhs
        self.rhs: Tuple[Symbol, ...] = tuple(rhs)
        self.rules: List[SemanticRule] = []
        self.label = label or f"{lhs.name} -> {' '.join(s.name for s in self.rhs) or 'ε'}"
        self.precedence = precedence
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule: SemanticRule) -> SemanticRule:
        self._check_ref(rule.target)
        for arg in rule.arguments:
            self._check_ref(arg)
        rule.production = self
        self.rules.append(rule)
        return rule

    def _check_ref(self, ref: AttributeRef) -> None:
        symbol = self.symbol_at(ref.position)
        if isinstance(symbol, Terminal):
            if not symbol.has_attribute(ref.name):
                raise ValueError(
                    f"{self.label}: terminal {symbol.name!r} has no attribute {ref.name!r}"
                )
        else:
            if not symbol.has_attribute(ref.name):
                raise ValueError(
                    f"{self.label}: nonterminal {symbol.name!r} has no attribute {ref.name!r}"
                )

    def symbol_at(self, position: int) -> Symbol:
        """Return the symbol at an occurrence position (0 = LHS, 1-based RHS)."""
        if position == 0:
            return self.lhs
        if 1 <= position <= len(self.rhs):
            return self.rhs[position - 1]
        raise IndexError(
            f"{self.label}: position {position} out of range (rhs has {len(self.rhs)} symbols)"
        )

    def nonterminal_positions(self) -> Tuple[int, ...]:
        """1-based positions of the nonterminal occurrences on the right-hand side."""
        return tuple(
            i for i, symbol in enumerate(self.rhs, start=1) if symbol.is_nonterminal
        )

    def rule_defining(self, ref: AttributeRef) -> Optional[SemanticRule]:
        """Return the rule whose target is ``ref``, or ``None``."""
        for rule in self.rules:
            if rule.target == ref:
                return rule
        return None

    def defined_occurrences(self) -> Tuple[AttributeRef, ...]:
        """Occurrences this production is responsible for defining (normal form).

        These are the synthesized attributes of the LHS and the inherited attributes of
        every RHS nonterminal occurrence.
        """
        refs: List[AttributeRef] = []
        for decl in self.lhs.attributes.values():
            if decl.kind is AttributeKind.SYNTHESIZED:
                refs.append(AttributeRef(0, decl.name))
        for position in self.nonterminal_positions():
            symbol = self.symbol_at(position)
            assert isinstance(symbol, Nonterminal)
            for decl in symbol.attributes.values():
                if decl.kind is AttributeKind.INHERITED:
                    refs.append(AttributeRef(position, decl.name))
        return tuple(refs)

    def used_occurrences(self) -> Tuple[AttributeRef, ...]:
        """Occurrences usable as rule arguments in this production.

        These are the inherited attributes of the LHS, the synthesized attributes of RHS
        nonterminal occurrences, the scanner attributes of RHS terminals, and occurrences
        already defined by this production.
        """
        refs: List[AttributeRef] = []
        for decl in self.lhs.attributes.values():
            if decl.kind is AttributeKind.INHERITED:
                refs.append(AttributeRef(0, decl.name))
        for position, symbol in enumerate(self.rhs, start=1):
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                for decl in symbol.attributes.values():
                    if decl.kind is AttributeKind.SYNTHESIZED:
                        refs.append(AttributeRef(position, decl.name))
            else:
                assert isinstance(symbol, Terminal)
                for name in symbol.attribute_names:
                    refs.append(AttributeRef(position, name))
        return tuple(refs)

    def __repr__(self) -> str:
        return f"Production({self.label!r}, rules={len(self.rules)})"

    def __str__(self) -> str:
        return self.label
