"""Identifier-level symbol tables built on the persistent BST.

The public operations mirror the paper's standard library: ``st_create`` returns an
empty table, ``st_add`` returns a new table with one more binding (the original is
untouched), ``st_lookup`` returns the binding of an identifier, and ``st_put`` /
``st_get`` convert to and from a flat representation suitable for transmission over the
network.  Identifiers are hashed to integer keys so the underlying unbalanced BST stays
shallow; collisions are handled by chaining small association lists inside each node.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.symtab.persistent_tree import PersistentMap


class SymbolTableError(KeyError):
    """Raised when an identifier is not bound (and no default is supplied)."""


def _hash_identifier(name: str, buckets: int = 1 << 16) -> int:
    """Deterministic identifier hash; crc32 keeps keys uniformly spread and stable
    across processes (unlike Python's randomized ``hash``)."""
    return zlib.crc32(name.encode("utf-8")) % buckets


class SymbolTable:
    """An applicative identifier → value map.

    All update operations return a new table; existing tables are never modified, so a
    table value can safely be shared by any number of attribute instances and shipped to
    other evaluators.
    """

    __slots__ = ("_map", "_count")

    def __init__(self, _map: Optional[PersistentMap] = None, _count: int = 0):
        self._map = _map if _map is not None else PersistentMap()
        self._count = _count

    # ------------------------------------------------------------------ queries

    def __len__(self) -> int:
        return self._count

    def lookup(self, name: str, default: Any = _hash_identifier) -> Any:
        """Return the value bound to ``name``.

        Raises :class:`SymbolTableError` when unbound unless ``default`` is given.
        """
        bucket = self._map.get(_hash_identifier(name))
        if bucket:
            for bound_name, value in bucket:
                if bound_name == name:
                    return value
        if default is not _hash_identifier:
            return default
        raise SymbolTableError(f"identifier {name!r} is not declared")

    def __contains__(self, name: str) -> bool:
        sentinel = object()
        return self.lookup(name, sentinel) is not sentinel

    def items(self) -> Iterator[Tuple[str, Any]]:
        for _, bucket in self._map.items():
            for name, value in bucket:
                yield name, value

    def names(self) -> List[str]:
        return sorted(name for name, _ in self.items())

    def depth(self) -> int:
        """Depth of the underlying BST (reported by the symbol-table benchmarks)."""
        return self._map.depth()

    # ------------------------------------------------------------------ updates

    def add(self, name: str, value: Any) -> "SymbolTable":
        """Return a new table with ``name`` bound to ``value`` (shadowing any old one)."""
        key = _hash_identifier(name)
        bucket = self._map.get(key) or ()
        filtered = tuple(entry for entry in bucket if entry[0] != name)
        shadowed = len(filtered) != len(bucket)
        new_bucket = filtered + ((name, value),)
        new_count = self._count if shadowed else self._count + 1
        return SymbolTable(self._map.insert(key, new_bucket), new_count)

    def add_all(self, bindings: Dict[str, Any]) -> "SymbolTable":
        table = self
        for name, value in bindings.items():
            table = table.add(name, value)
        return table

    def merge(self, other: "SymbolTable") -> "SymbolTable":
        """Bindings of ``other`` shadow bindings of ``self`` on collision."""
        table = self
        for name, value in other.items():
            table = table.add(name, value)
        return table

    # ------------------------------------------------------- network conversion

    def put(self) -> List[Tuple[str, Any]]:
        """Flatten to a contiguous representation for network transmission."""
        return sorted(self.items())

    @classmethod
    def get(cls, wire: List[Tuple[str, Any]]) -> "SymbolTable":
        """Rebuild a table from its flat representation."""
        table = cls()
        for name, value in wire:
            table = table.add(name, value)
        return table

    def transmission_size(self) -> int:
        """Abstract byte size used by the network model."""
        total = 8
        for name, value in self.items():
            total += len(name) + 8
        return total

    def __repr__(self) -> str:
        return f"SymbolTable(bindings={self._count}, depth={self.depth()})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, SymbolTable):
            return NotImplemented
        return self.put() == other.put()

    def __hash__(self) -> int:
        return hash(tuple(self.put()))


# ----------------------------------------------------------------- paper-style API


def st_create() -> SymbolTable:
    """Return an empty symbol table (the paper's ``st_create``)."""
    return SymbolTable()


def st_add(table: SymbolTable, name: str, value: Any) -> SymbolTable:
    """Return ``table`` extended with ``name`` bound to ``value`` (``st_add``)."""
    return table.add(name, value)


def st_lookup(table: SymbolTable, name: str, default: Any = _hash_identifier) -> Any:
    """Look up ``name`` in ``table`` (``st_lookup``)."""
    return table.lookup(name, default)


def st_put(table: SymbolTable) -> List[Tuple[str, Any]]:
    """Flatten ``table`` for network transmission (``st_put``)."""
    return table.put()


def st_get(wire: List[Tuple[str, Any]]) -> SymbolTable:
    """Rebuild a symbol table from its flattened form (``st_get``)."""
    return SymbolTable.get(wire)
