"""A persistent (applicative) binary search tree keyed by integers.

Updates copy the path from the root to the affected leaf (path copying), so every
version remains valid and unchanged — the property the attribute-grammar discipline
relies on when many attribute instances share symbol-table values.  No rebalancing is
performed; instead, callers are expected to use (near) uniformly distributed integer
keys, exactly as the paper does by keying entries on the identifier's hash index
("this insures that key values are essentially uniformly distributed and thus symbol
table trees stay balanced").
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("key", "value", "left", "right", "size")

    def __init__(self, key: int, value: Any, left: Optional["_Node"], right: Optional["_Node"]):
        self.key = key
        self.value = value
        self.left = left
        self.right = right
        self.size = 1 + (left.size if left else 0) + (right.size if right else 0)


class PersistentMap:
    """Immutable integer-keyed map with O(depth) applicative insert and lookup."""

    __slots__ = ("_root",)

    def __init__(self, _root: Optional[_Node] = None):
        self._root = _root

    # ----------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._root.size if self._root else 0

    def __bool__(self) -> bool:
        return self._root is not None

    def get(self, key: int, default: Any = None) -> Any:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return default

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order iteration (ascending key order)."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def depth(self) -> int:
        """Height of the tree; stays near log2(n) for uniformly distributed keys."""
        best = 0
        stack: List[Tuple[Optional[_Node], int]] = [(self._root, 0)]
        while stack:
            node, level = stack.pop()
            if node is None:
                continue
            best = max(best, level + 1)
            stack.append((node.left, level + 1))
            stack.append((node.right, level + 1))
        return best

    # ------------------------------------------------------------------ updates

    def insert(self, key: int, value: Any) -> "PersistentMap":
        """Return a new map with ``key`` bound to ``value`` (existing binding shadowed)."""
        return PersistentMap(self._insert(self._root, key, value))

    @classmethod
    def _insert(cls, node: Optional[_Node], key: int, value: Any) -> _Node:
        # Iterative path copy: collect the path, then rebuild it bottom-up.
        path: List[Tuple[_Node, bool]] = []  # (node, went_left)
        current = node
        while current is not None and current.key != key:
            went_left = key < current.key
            path.append((current, went_left))
            current = current.left if went_left else current.right
        if current is not None and current.key == key:
            rebuilt = _Node(key, value, current.left, current.right)
        else:
            rebuilt = _Node(key, value, None, None)
        for ancestor, went_left in reversed(path):
            if went_left:
                rebuilt = _Node(ancestor.key, ancestor.value, rebuilt, ancestor.right)
            else:
                rebuilt = _Node(ancestor.key, ancestor.value, ancestor.left, rebuilt)
        return rebuilt

    def merge(self, other: "PersistentMap") -> "PersistentMap":
        """Return a map containing both bindings; ``other`` wins on key collisions."""
        result = self
        for key, value in other.items():
            result = result.insert(key, value)
        return result

    def __repr__(self) -> str:
        return f"PersistentMap(size={len(self)}, depth={self.depth()})"
