"""Applicative (persistent) symbol tables.

The paper implements symbol tables "as binary search trees, making applicative updates
simple and fast.  Symbol table entries map the hash table index of an identifier to the
information associated with that identifier", which keeps keys uniformly distributed and
the unbalanced BST shallow.  :class:`~repro.symtab.persistent_tree.PersistentMap`
implements the path-copying BST; :class:`~repro.symtab.symbol_table.SymbolTable` is the
identifier-level wrapper offering the paper's ``st_create`` / ``st_add`` / ``st_lookup``
operations plus the flattening (``st_put`` / ``st_get``) conversions used for network
transmission.
"""

from repro.symtab.persistent_tree import PersistentMap
from repro.symtab.symbol_table import (
    SymbolTable,
    SymbolTableError,
    st_create,
    st_add,
    st_lookup,
    st_put,
    st_get,
)

__all__ = [
    "PersistentMap",
    "SymbolTable",
    "SymbolTableError",
    "st_create",
    "st_add",
    "st_lookup",
    "st_put",
    "st_get",
]
