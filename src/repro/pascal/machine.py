"""VAX-style code emission helpers.

The compiler produces assembly in the flavour of VAX Unix assemblers: three-operand
integer instructions (``addl3``, ``subl3``, ``mull3``, ``divl3``), ``pushl``/``movl``,
conditional branches after ``cmpl``/``tstl``, and ``calls`` for procedure linkage.  Code
values are ropes (or string descriptors when the librarian optimisation is active), so
every helper goes through :func:`repro.strings.code.code_join` and concatenation stays
O(1) regardless of program size.

Run-time model (documented here because both the code generator and the examples rely
on it):

* expression evaluation is stack based: operands are pushed with ``pushl`` and binary
  operators pop two values and push the result;
* each procedure frame is established by ``procedure_prologue``; locals live at negative
  frame-pointer offsets, parameters at positive offsets above the saved state;
* the static link (frame pointer of the lexically enclosing procedure) is pushed as a
  hidden last argument so nested procedures can reach intermediate scopes;
* a function stores its result in a dedicated slot and moves it to ``r0`` on return;
* ``read``/``write`` translate to calls on a tiny runtime library (``rt_read_int``,
  ``rt_write_int``, ``rt_write_str``, ``rt_write_char``, ``rt_writeln``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.strings.code import CodeValue, code_join
from repro.strings.rope import Rope

WORD = 4

#: Frame-pointer offset of the first parameter (above return address, saved FP, ...).
FIRST_PARAMETER_OFFSET = 8
#: Frame-pointer offset of the hidden static-link argument (pushed last by callers).
STATIC_LINK_OFFSET = 4


def instruction(opcode: str, *operands: str) -> Rope:
    """One formatted assembly line."""
    if operands:
        return Rope.leaf(f"\t{opcode}\t{', '.join(operands)}\n")
    return Rope.leaf(f"\t{opcode}\n")


def label_definition(label: str) -> Rope:
    return Rope.leaf(f"{label}:\n")


def comment(text: str) -> Rope:
    return Rope.leaf(f"# {text}\n")


def join(parts: Iterable[CodeValue]) -> CodeValue:
    return code_join(parts)


def empty_code() -> Rope:
    return Rope.empty()


# ------------------------------------------------------------------ stack operations


def push_immediate(value: int) -> Rope:
    return instruction("pushl", f"${value}")


def push_register(register: str) -> Rope:
    return instruction("pushl", register)


def pop_to(register: str) -> Rope:
    return instruction("movl", "(sp)+", register)


def binary_operation(opcode: str) -> CodeValue:
    """Pop two operands, apply ``opcode`` (three-operand form), push the result."""
    return join(
        [
            pop_to("r1"),                      # right operand
            pop_to("r0"),                      # left operand
            instruction(opcode, "r0", "r1", "r0"),
            push_register("r0"),
        ]
    )


def comparison(branch_opcode: str, true_label: str, end_label: str) -> CodeValue:
    """Pop two operands, push 1 if the comparison holds, 0 otherwise."""
    return join(
        [
            pop_to("r1"),
            pop_to("r0"),
            instruction("cmpl", "r0", "r1"),
            instruction(branch_opcode, true_label),
            push_immediate(0),
            instruction("brb", end_label),
            label_definition(true_label),
            push_immediate(1),
            label_definition(end_label),
        ]
    )


def negate_top() -> CodeValue:
    return join(
        [pop_to("r0"), instruction("mnegl", "r0", "r0"), push_register("r0")]
    )


def logical_not_top() -> CodeValue:
    return join(
        [pop_to("r0"), instruction("xorl2", "$1", "r0"), push_register("r0")]
    )


# ------------------------------------------------------------------ addressing


def static_link_chase(levels_up: int) -> List[Rope]:
    """Load into r2 the frame pointer of the scope ``levels_up`` static levels out."""
    lines: List[Rope] = [instruction("movl", "fp", "r2")]
    for _ in range(levels_up):
        lines.append(instruction("movl", f"{STATIC_LINK_OFFSET}(r2)", "r2"))
    return lines


def push_variable_address(offset: int, levels_up: int, is_global: bool, name: str) -> CodeValue:
    """Push the address of a scalar variable slot."""
    if is_global:
        return instruction("pushab", f"G_{name}")
    if levels_up == 0:
        return join([instruction("moval", f"{offset}(fp)", "r0"), push_register("r0")])
    return join(
        static_link_chase(levels_up)
        + [instruction("moval", f"{offset}(r2)", "r0"), push_register("r0")]
    )


def push_parameter_reference(offset: int, levels_up: int) -> CodeValue:
    """Push the address stored in a ``var`` parameter slot (the callee sees an address)."""
    if levels_up == 0:
        return join([instruction("movl", f"{offset}(fp)", "r0"), push_register("r0")])
    return join(
        static_link_chase(levels_up)
        + [instruction("movl", f"{offset}(r2)", "r0"), push_register("r0")]
    )


def dereference_top() -> CodeValue:
    """Replace the address on top of the stack by the word it points to."""
    return join(
        [pop_to("r0"), instruction("movl", "(r0)", "r0"), push_register("r0")]
    )


def store_through_address() -> CodeValue:
    """Stack holds [... address value]; store value through address, pop both."""
    return join(
        [
            pop_to("r0"),                      # value
            pop_to("r1"),                      # address
            instruction("movl", "r0", "(r1)"),
        ]
    )


def index_address(element_size: int, low_bound: int) -> CodeValue:
    """Stack holds [... base_address index]; replace by element address."""
    return join(
        [
            pop_to("r0"),                                  # index
            pop_to("r1"),                                  # base address
            instruction("subl2", f"${low_bound}", "r0"),
            instruction("mull2", f"${element_size}", "r0"),
            instruction("addl3", "r0", "r1", "r0"),
            push_register("r0"),
        ]
    )


def field_address(offset: int) -> CodeValue:
    """Stack holds [... record_address]; replace by field address."""
    if offset == 0:
        return empty_code()
    return join(
        [pop_to("r0"), instruction("addl2", f"${offset}", "r0"), push_register("r0")]
    )


# ------------------------------------------------------------------ procedures


def procedure_prologue(label: str, frame_size: int, name: str = "") -> CodeValue:
    parts: List[CodeValue] = []
    if name:
        parts.append(comment(f"procedure {name}"))
    parts.append(label_definition(label))
    parts.append(instruction(".word", "0x0"))
    if frame_size > 0:
        parts.append(instruction("subl2", f"${frame_size}", "sp"))
    return join(parts)


def procedure_epilogue(is_function: bool, result_offset: int = 0) -> CodeValue:
    parts: List[CodeValue] = []
    if is_function:
        parts.append(instruction("movl", f"{result_offset}(fp)", "r0"))
    parts.append(instruction("ret"))
    return join(parts)


def call_procedure(label: str, argument_count: int) -> CodeValue:
    """Arguments (and the static link) are already pushed right-to-left."""
    return instruction("calls", f"${argument_count}", label)


def push_function_result() -> CodeValue:
    return push_register("r0")


def push_static_link(levels_up: int) -> CodeValue:
    """Push the static link for a callee declared ``levels_up`` levels out (0 = child)."""
    if levels_up == 0:
        return push_register("fp")
    return join(static_link_chase(levels_up) + [push_register("r2")])


# ------------------------------------------------------------------ program skeleton


def program_header(name: str) -> CodeValue:
    return join(
        [
            comment(f"program {name} (generated by repro.pascal)"),
            instruction(".text"),
            instruction(".globl", "_main"),
        ]
    )


def main_entry(frame_size: int) -> CodeValue:
    parts: List[CodeValue] = [
        label_definition("_main"),
        instruction(".word", "0x0"),
    ]
    if frame_size > 0:
        parts.append(instruction("subl2", f"${frame_size}", "sp"))
    return join(parts)


def main_exit() -> CodeValue:
    return join([instruction("pushl", "$0"), instruction("calls", "$1", "_exit")])


def global_variable(name: str, size: int) -> CodeValue:
    return Rope.leaf(f"\t.lcomm\tG_{name}, {size}\n")


def data_section(parts: Sequence[CodeValue]) -> CodeValue:
    if not parts:
        return empty_code()
    return join([instruction(".data"), *parts, instruction(".text")])


def string_literal(label: str, text: str) -> CodeValue:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return join(
        [
            instruction(".data"),
            label_definition(label),
            Rope.leaf(f'\t.asciz\t"{escaped}"\n'),
            instruction(".text"),
        ]
    )


# ------------------------------------------------------------------ runtime library


def runtime_call(routine: str, argument_count: int) -> CodeValue:
    return instruction("calls", f"${argument_count}", routine)


RUNTIME_ROUTINES = (
    "rt_write_int",
    "rt_write_char",
    "rt_write_str",
    "rt_write_bool",
    "rt_writeln",
    "rt_read_int",
    "rt_read_char",
)
