"""Lexical analysis for the Pascal subset."""

from __future__ import annotations

from typing import Dict, List

from repro.parsing.lexer import Lexer, Token, TokenSpec

#: Reserved words; ``write``/``writeln``/``read``/``readln`` are treated as keywords
#: "as in the paper" rather than as predeclared procedures.
KEYWORDS: Dict[str, str] = {
    name: name.upper()
    for name in (
        "program", "const", "type", "var", "procedure", "function",
        "begin", "end", "if", "then", "else", "while", "do", "repeat", "until",
        "for", "to", "downto", "of", "array", "record",
        "div", "mod", "and", "or", "not",
        "write", "writeln", "read", "readln",
    )
}

TOKEN_SPECS = [
    TokenSpec("whitespace", r"[ \t\r\n]+", skip=True),
    TokenSpec("comment", r"\{[^}]*\}", skip=True),
    TokenSpec("comment", r"\(\*[\s\S]*?\*\)", skip=True),
    TokenSpec("NUMBER", r"[0-9]+"),
    TokenSpec("IDENTIFIER", r"[A-Za-z_][A-Za-z0-9_]*"),
    TokenSpec("STRINGLIT", r"'(?:[^']|'')*'"),
    TokenSpec(":=", r":="),
    TokenSpec("..", r"\.\."),
    TokenSpec("<=", r"<="),
    TokenSpec(">=", r">="),
    TokenSpec("<>", r"<>"),
    TokenSpec("<", r"<"),
    TokenSpec(">", r">"),
    TokenSpec("=", r"="),
    TokenSpec("+", r"\+"),
    TokenSpec("-", r"-"),
    TokenSpec("*", r"\*"),
    TokenSpec("(", r"\("),
    TokenSpec(")", r"\)"),
    TokenSpec("[", r"\["),
    TokenSpec("]", r"\]"),
    TokenSpec(".", r"\."),
    TokenSpec(",", r","),
    TokenSpec(";", r";"),
    TokenSpec(":", r":"),
]

_LEXER = Lexer(TOKEN_SPECS, keywords=KEYWORDS)


def tokenize_pascal(source: str) -> List[Token]:
    """Scan Pascal source text into tokens (keywords are case-insensitive)."""
    return _LEXER.tokenize(source)
