"""Sample Pascal programs and a synthetic program generator.

The paper's measurements compile "a compiler and interpreter for a simple language used
in our compiler course": about 1100 lines, 46 procedures, 6 of which are nested deeper
than one level, producing roughly 70 kilobytes of assembly.  That exact program is not
available, so :func:`generate_program` synthesises structurally similar programs: a
parameterisable number of procedures and functions (some nested), each with parameters,
local variables, loops, conditionals and calls to previously declared routines, plus a
main program that exercises them.  The generator is deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Dict, List


HELLO = """
program hello;
begin
  writeln('hello, world')
end.
"""

FACTORIAL = """
program factorial;
var
  n, result: integer;

function fact(n: integer): integer;
begin
  if n <= 1 then
    fact := 1
  else
    fact := n * fact(n - 1)
end;

begin
  n := 10;
  result := fact(n);
  writeln(result)
end.
"""

SUMMATION = """
program summation;
const
  limit = 100;
var
  i, total: integer;
begin
  total := 0;
  for i := 1 to limit do
    total := total + i * i;
  writeln(total)
end.
"""

SORTING = """
program sorting;
const
  size = 32;
type
  table = array [1..32] of integer;
var
  data: table;
  i: integer;

procedure swap(var a: integer; var b: integer);
var t: integer;
begin
  t := a;
  a := b;
  b := t
end;

procedure sort(var items: table; count: integer);
var i, j: integer;
begin
  for i := 1 to count - 1 do
    for j := 1 to count - i do
      if items[j] > items[j + 1] then
        swap(items[j], items[j + 1])
end;

begin
  for i := 1 to size do
    data[i] := (size - i) * 7 mod 13;
  sort(data, size);
  for i := 1 to size do
    writeln(data[i])
end.
"""

RECORDS = """
program accounts;
type
  account = record
    balance: integer;
    owner: integer;
    active: boolean
  end;
  ledger = array [1..16] of integer;
var
  acct: account;
  totals: ledger;
  i: integer;

procedure deposit(var bal: integer; amount: integer);
begin
  bal := bal + amount
end;

begin
  acct.balance := 0;
  acct.owner := 42;
  acct.active := true;
  for i := 1 to 16 do
  begin
    totals[i] := i;
    deposit(acct.balance, totals[i])
  end;
  if acct.active then
    writeln(acct.balance)
end.
"""

NESTED = """
program nested;
var g: integer;

procedure outer(x: integer);
var middle_total: integer;

  procedure inner(y: integer);
  var z: integer;
  begin
    z := y + x;
    middle_total := middle_total + z;
    g := g + z
  end;

begin
  middle_total := 0;
  inner(x);
  inner(x * 2);
  writeln(middle_total)
end;

begin
  g := 0;
  outer(3);
  outer(5);
  writeln(g)
end.
"""

SAMPLE_PROGRAMS: Dict[str, str] = {
    "hello": HELLO,
    "factorial": FACTORIAL,
    "summation": SUMMATION,
    "sorting": SORTING,
    "records": RECORDS,
    "nested": NESTED,
}


# --------------------------------------------------------------------- generator


def _body_statements(rng: random.Random, variables: List[str], callables: List[tuple],
                     depth: int, statements: int, indent: str) -> List[str]:
    """Generate a list of type-correct statements over integer variables."""
    lines: List[str] = []
    for _ in range(statements):
        choice = rng.random()
        target = rng.choice(variables)
        left = rng.choice(variables)
        right = rng.choice(variables)
        constant = rng.randint(1, 97)
        if choice < 0.30:
            operator = rng.choice(["+", "-", "*"])
            lines.append(f"{indent}{target} := {left} {operator} ({right} + {constant});")
        elif choice < 0.45:
            lines.append(
                f"{indent}if {left} > {right} then\n"
                f"{indent}  {target} := {target} + {constant}\n"
                f"{indent}else\n"
                f"{indent}  {target} := {target} - {constant};"
            )
        elif choice < 0.60 and depth < 2:
            inner = _body_statements(rng, variables, callables, depth + 1, 2, indent + "  ")
            lines.append(
                f"{indent}for {target} := 1 to {rng.randint(3, 12)} do\n"
                f"{indent}begin\n" + "\n".join(inner) + f"\n{indent}end;"
            )
        elif choice < 0.72 and depth < 2:
            inner = _body_statements(rng, variables, callables, depth + 1, 2, indent + "  ")
            lines.append(
                f"{indent}while {left} > {constant} do\n"
                f"{indent}begin\n"
                + "\n".join(inner)
                + f"\n{indent}  {left} := {left} div 2;\n{indent}end;"
            )
        elif choice < 0.88 and callables:
            name, kind, arity = rng.choice(callables)
            arguments = ", ".join(rng.choice(variables + [str(constant)]) for _ in range(arity))
            if kind == "function":
                lines.append(f"{indent}{target} := {name}({arguments});")
            else:
                lines.append(f"{indent}{name}({arguments});")
        else:
            lines.append(f"{indent}writeln({target});")
    return lines


def _routine(rng: random.Random, index: int, callables: List[tuple], nested: bool,
             body_statements: int) -> tuple:
    """Generate one procedure or function; returns (text, descriptor)."""
    is_function = rng.random() < 0.4
    name = f"{'func' if is_function else 'proc'}{index}"
    arity = rng.randint(1, 3)
    parameters = "; ".join(f"p{i}: integer" for i in range(1, arity + 1))
    local_names = [f"v{i}" for i in range(1, rng.randint(2, 5) + 1)]
    variables = local_names + [f"p{i}" for i in range(1, arity + 1)]
    header = (
        f"function {name}({parameters}): integer;"
        if is_function
        else f"procedure {name}({parameters});"
    )
    lines = [header, "var " + ", ".join(local_names) + ": integer;"]

    if nested:
        inner_name = f"inner{index}"
        inner_body = _body_statements(rng, ["w1", "w2"] + variables[:2], callables, 1, 3, "    ")
        lines.append(f"  procedure {inner_name}(q: integer);")
        lines.append("  var w1, w2: integer;")
        lines.append("  begin")
        lines.append("    w1 := q;")
        lines.append("    w2 := q * 2;")
        lines.extend(inner_body)
        lines.append("  end;")
        callables_for_body = callables + [(inner_name, "procedure", 1)]
    else:
        callables_for_body = callables

    lines.append("begin")
    for local in local_names:
        lines.append(f"  {local} := {rng.randint(0, 50)};")
    lines.extend(_body_statements(rng, variables, callables_for_body, 0, body_statements, "  "))
    if is_function:
        lines.append(f"  {name} := {rng.choice(variables)}")
    else:
        lines.append(f"  {rng.choice(local_names)} := {rng.choice(variables)}")
    lines.append("end;")
    text = "\n".join(lines)
    return text, (name, "function" if is_function else "procedure", arity)


def generate_program(
    procedures: int = 46,
    nested_procedures: int = 6,
    statements_per_procedure: int = 8,
    main_statements: int = 30,
    seed: int = 1987,
    name: str = "workload",
) -> str:
    """Generate a synthetic Pascal program of roughly the paper's size and shape.

    The defaults produce ≈1100 lines with 46 procedures/functions, 6 of which contain a
    nested procedure (i.e. routines at nesting level deeper than 1), mirroring the
    program measured in the paper.
    """
    rng = random.Random(seed)
    globals_names = [f"g{i}" for i in range(1, 9)]
    pieces: List[str] = [
        f"program {name};",
        "const",
        "  scale = 3;",
        "  bias = 17;",
        "type",
        "  vector = array [1..64] of integer;",
        "  pair = record first: integer; second: integer end;",
        "var",
        "  " + ", ".join(globals_names) + ": integer;",
        "  buffer: vector;",
        "  point: pair;",
        "",
    ]
    callables: List[tuple] = []
    nested_indices = set(
        rng.sample(range(1, procedures + 1), min(nested_procedures, procedures))
    )
    for index in range(1, procedures + 1):
        text, descriptor = _routine(
            rng, index, list(callables), index in nested_indices, statements_per_procedure
        )
        pieces.append(text)
        pieces.append("")
        callables.append(descriptor)

    pieces.append("begin")
    main_variables = globals_names
    for variable in main_variables:
        pieces.append(f"  {variable} := {rng.randint(0, 9)};")
    pieces.extend(
        _body_statements(rng, main_variables, callables, 0, main_statements, "  ")
    )
    pieces.append("  writeln(g1)")
    pieces.append("end.")
    return "\n".join(pieces)


def paper_sized_program(seed: int = 1987) -> str:
    """The default workload used by the benchmark harness (≈1100 lines, 46 routines)."""
    return generate_program(seed=seed)
