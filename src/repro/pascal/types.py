"""The Pascal-subset type system.

Types are immutable value objects.  The subset supports the standard simple types
(integer, boolean, char), string literals (for ``write`` only), one-dimensional arrays
with integer index ranges, and records.  Variant records, enumerations, sets, reals,
files and procedural types are omitted, matching the restrictions listed in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

WORD_SIZE = 4


class PascalType:
    """Base class of all types."""

    name = "type"

    def size(self) -> int:
        """Storage size in bytes."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class IntegerType(PascalType):
    name = "integer"

    def size(self) -> int:
        return WORD_SIZE

    def __eq__(self, other) -> bool:
        return isinstance(other, IntegerType)

    def __hash__(self) -> int:
        return hash("integer")


class BooleanType(PascalType):
    name = "boolean"

    def size(self) -> int:
        return WORD_SIZE

    def __eq__(self, other) -> bool:
        return isinstance(other, BooleanType)

    def __hash__(self) -> int:
        return hash("boolean")


class CharType(PascalType):
    name = "char"

    def size(self) -> int:
        return WORD_SIZE  # chars are stored in full words, as simple compilers do

    def __eq__(self, other) -> bool:
        return isinstance(other, CharType)

    def __hash__(self) -> int:
        return hash("char")


class StringType(PascalType):
    """The type of string literals (only usable with ``write``/``writeln``)."""

    name = "string"

    def size(self) -> int:
        return WORD_SIZE  # a pointer to the literal

    def __eq__(self, other) -> bool:
        return isinstance(other, StringType)

    def __hash__(self) -> int:
        return hash("string")


class ErrorType(PascalType):
    """Propagated when a subexpression had a type error; suppresses cascade errors."""

    name = "<error>"

    def size(self) -> int:
        return WORD_SIZE

    def __eq__(self, other) -> bool:
        return isinstance(other, ErrorType)

    def __hash__(self) -> int:
        return hash("error-type")


class ArrayType(PascalType):
    """``array [low .. high] of element``."""

    def __init__(self, low: int, high: int, element: PascalType):
        if high < low:
            raise ValueError("array upper bound below lower bound")
        self.low = low
        self.high = high
        self.element = element

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.describe()

    @property
    def length(self) -> int:
        return self.high - self.low + 1

    def size(self) -> int:
        return self.length * self.element.size()

    def describe(self) -> str:
        return f"array [{self.low}..{self.high}] of {self.element.describe()}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayType)
            and self.low == other.low
            and self.high == other.high
            and self.element == other.element
        )

    def __hash__(self) -> int:
        return hash(("array", self.low, self.high, self.element))


class RecordType(PascalType):
    """``record field: type; ... end`` with word-aligned field offsets."""

    def __init__(self, fields: Sequence[Tuple[str, PascalType]]):
        self.fields: Tuple[Tuple[str, PascalType], ...] = tuple(fields)
        self._offsets: Dict[str, int] = {}
        offset = 0
        for field_name, field_type in self.fields:
            if field_name in self._offsets:
                raise ValueError(f"duplicate record field {field_name!r}")
            self._offsets[field_name] = offset
            offset += field_type.size()
        self._size = offset

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.describe()

    def size(self) -> int:
        return self._size

    def field_type(self, name: str) -> Optional[PascalType]:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        return None

    def field_offset(self, name: str) -> int:
        return self._offsets[name]

    def describe(self) -> str:
        inner = "; ".join(f"{n}: {t.describe()}" for n, t in self.fields)
        return f"record {inner} end"

    def __eq__(self, other) -> bool:
        return isinstance(other, RecordType) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(("record", self.fields))


INTEGER = IntegerType()
BOOLEAN = BooleanType()
CHAR = CharType()
STRING = StringType()
ERROR_TYPE = ErrorType()

#: Types usable in expressions and assignments.
SIMPLE_TYPES: Dict[str, PascalType] = {
    "integer": INTEGER,
    "boolean": BOOLEAN,
    "char": CHAR,
}


def types_compatible(expected: PascalType, actual: PascalType) -> bool:
    """Assignment/parameter compatibility; errors are compatible with everything to
    avoid cascading diagnostics."""
    if isinstance(expected, ErrorType) or isinstance(actual, ErrorType):
        return True
    return expected == actual


def is_ordinal(pascal_type: PascalType) -> bool:
    """Ordinal types can index arrays and drive ``for`` loops."""
    return isinstance(pascal_type, (IntegerType, BooleanType, CharType, ErrorType))
