"""Semantic functions used by the Pascal attribute grammar.

Every function in this package is a *pure* function of its attribute arguments (the one
sanctioned exception, exactly as in the paper, is unique label generation, which draws
from the evaluator-local :mod:`repro.distributed.unique_ids` base value).  The grammar
in :mod:`repro.pascal.grammar` wires these functions to productions; nothing in here
inspects parse trees or global state.
"""

from repro.pascal.semantics import declarations, expressions, helpers, statements

__all__ = ["declarations", "expressions", "helpers", "statements"]
