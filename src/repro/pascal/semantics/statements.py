"""Semantic functions for statements."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.distributed.unique_ids import next_label
from repro.pascal import machine
from repro.pascal import types as ptypes
from repro.pascal.meanings import (
    FUNCTION_KEY,
    ProcMeaning,
    VarMeaning,
    current_function,
    current_level,
    lookup_meaning,
)
from repro.pascal.semantics.expressions import _call_sequence
from repro.pascal.semantics.helpers import Errors, error, merge_errors, no_errors
from repro.strings.code import CodeValue
from repro.symtab.symbol_table import SymbolTable


# ------------------------------------------------------------------- assignment


def assignment_code(
    target_addr: CodeValue,
    target_type: ptypes.PascalType,
    value_code: CodeValue,
) -> CodeValue:
    return machine.join([target_addr, value_code, machine.store_through_address()])


def assignment_errors(
    environment: SymbolTable,
    target_type: ptypes.PascalType,
    value_type: ptypes.PascalType,
    target_errs: Errors,
    value_errs: Errors,
) -> Errors:
    errors = merge_errors(target_errs, value_errs)
    if isinstance(target_type, (ptypes.ArrayType, ptypes.RecordType)):
        errors = merge_errors(errors, error("cannot assign to an aggregate as a whole"))
    elif not ptypes.types_compatible(target_type, value_type):
        errors = merge_errors(
            errors,
            error(
                f"cannot assign {value_type.describe()} to {target_type.describe()}"
            ),
        )
    return errors


# ------------------------------------------------------------------ control flow


def if_code(condition: CodeValue, then_code: CodeValue) -> CodeValue:
    else_label = next_label("L")
    return machine.join(
        [
            condition,
            machine.pop_to("r0"),
            machine.instruction("tstl", "r0"),
            machine.instruction("beql", else_label),
            then_code,
            machine.label_definition(else_label),
        ]
    )


def if_else_code(
    condition: CodeValue, then_code: CodeValue, else_code: CodeValue
) -> CodeValue:
    else_label = next_label("L")
    end_label = next_label("L")
    return machine.join(
        [
            condition,
            machine.pop_to("r0"),
            machine.instruction("tstl", "r0"),
            machine.instruction("beql", else_label),
            then_code,
            machine.instruction("brw", end_label),
            machine.label_definition(else_label),
            else_code,
            machine.label_definition(end_label),
        ]
    )


def condition_errors(condition_type: ptypes.PascalType, condition_errs: Errors,
                     construct: str) -> Errors:
    errors = tuple(condition_errs)
    if not isinstance(condition_type, (ptypes.BooleanType, ptypes.ErrorType)):
        errors = merge_errors(errors, error(f"{construct} condition must be boolean"))
    return errors


def while_code(condition: CodeValue, body: CodeValue) -> CodeValue:
    loop_label = next_label("L")
    end_label = next_label("L")
    return machine.join(
        [
            machine.label_definition(loop_label),
            condition,
            machine.pop_to("r0"),
            machine.instruction("tstl", "r0"),
            machine.instruction("beql", end_label),
            body,
            machine.instruction("brw", loop_label),
            machine.label_definition(end_label),
        ]
    )


def repeat_code(body: CodeValue, condition: CodeValue) -> CodeValue:
    loop_label = next_label("L")
    return machine.join(
        [
            machine.label_definition(loop_label),
            body,
            condition,
            machine.pop_to("r0"),
            machine.instruction("tstl", "r0"),
            machine.instruction("beql", loop_label),
        ]
    )


def for_code(
    environment: SymbolTable,
    variable_name: str,
    start_code: CodeValue,
    limit_code: CodeValue,
    body: CodeValue,
    downto: bool,
) -> CodeValue:
    """``for v := start to|downto limit do body`` with the limit re-evaluated once."""
    from repro.pascal.semantics.expressions import variable_address

    loop_label = next_label("L")
    end_label = next_label("L")
    address = variable_address(environment, variable_name)
    load_variable = machine.join([address, machine.dereference_top()])
    branch = "blss" if not downto else "bgtr"      # exit when v > limit (or v < limit)
    step = (
        machine.instruction("addl2", "$1", "r0")
        if not downto
        else machine.instruction("subl2", "$1", "r0")
    )
    return machine.join(
        [
            # v := start
            address,
            start_code,
            machine.store_through_address(),
            machine.label_definition(loop_label),
            # test v against the limit
            limit_code,
            load_variable,
            machine.pop_to("r0"),                  # current value
            machine.pop_to("r1"),                  # limit
            machine.instruction("cmpl", "r1", "r0"),
            machine.instruction(branch, end_label),
            body,
            # v := v +/- 1
            load_variable,
            machine.pop_to("r0"),
            step,
            machine.push_register("r0"),
            address,
            machine.pop_to("r1"),
            machine.pop_to("r0"),
            machine.instruction("movl", "r0", "(r1)"),
            machine.instruction("brw", loop_label),
            machine.label_definition(end_label),
        ]
    )


def for_errors(
    environment: SymbolTable,
    variable_name: str,
    start_type: ptypes.PascalType,
    limit_type: ptypes.PascalType,
    start_errs: Errors,
    limit_errs: Errors,
    body_errs: Errors,
) -> Errors:
    errors = merge_errors(start_errs, limit_errs, body_errs)
    meaning = lookup_meaning(environment, variable_name)
    if not isinstance(meaning, VarMeaning):
        errors = merge_errors(errors, error(f"for-loop variable '{variable_name}' is not a variable"))
    elif not isinstance(meaning.type, (ptypes.IntegerType, ptypes.ErrorType)):
        errors = merge_errors(errors, error("for-loop variable must be an integer"))
    for side, side_type in (("initial", start_type), ("final", limit_type)):
        if not isinstance(side_type, (ptypes.IntegerType, ptypes.ErrorType)):
            errors = merge_errors(errors, error(f"for-loop {side} value must be an integer"))
    return errors


# --------------------------------------------------------------- procedure calls


def procedure_call_code(
    environment: SymbolTable,
    name: str,
    argument_codes: Sequence[CodeValue],
    argument_addrs: Sequence[Optional[CodeValue]],
) -> CodeValue:
    meaning = lookup_meaning(environment, name)
    if not isinstance(meaning, ProcMeaning):
        return machine.empty_code()
    if len(argument_codes) != len(meaning.parameters):
        return machine.empty_code()
    return _call_sequence(environment, meaning, argument_codes, argument_addrs)


def procedure_call_errors(
    environment: SymbolTable,
    name: str,
    argument_types: Sequence[ptypes.PascalType],
    argument_addrs: Sequence[Optional[CodeValue]],
    argument_errs: Errors,
) -> Errors:
    from repro.pascal.semantics.expressions import call_errors

    return call_errors(
        environment, name, argument_types, argument_addrs, argument_errs,
        expect_function=False,
    )


# ------------------------------------------------------------------------- I/O


def write_code(argument_codes: Sequence[CodeValue],
               argument_types: Sequence[ptypes.PascalType],
               newline: bool) -> CodeValue:
    parts = []
    for value_code, value_type in zip(argument_codes, argument_types):
        if isinstance(value_type, ptypes.StringType):
            routine = "rt_write_str"
        elif isinstance(value_type, ptypes.CharType):
            routine = "rt_write_char"
        elif isinstance(value_type, ptypes.BooleanType):
            routine = "rt_write_bool"
        else:
            routine = "rt_write_int"
        parts.append(value_code)
        parts.append(machine.runtime_call(routine, 1))
    if newline:
        parts.append(machine.runtime_call("rt_writeln", 0))
    return machine.join(parts)


def write_errors(argument_types: Sequence[ptypes.PascalType], argument_errs: Errors) -> Errors:
    errors = tuple(argument_errs)
    for index, value_type in enumerate(argument_types, start=1):
        if isinstance(value_type, (ptypes.ArrayType, ptypes.RecordType)):
            errors = merge_errors(
                errors, error(f"write argument {index} cannot be an aggregate")
            )
    return errors


def read_code(addresses: Sequence[CodeValue],
              variable_types: Sequence[ptypes.PascalType],
              newline: bool) -> CodeValue:
    parts = []
    for address, variable_type in zip(addresses, variable_types):
        routine = "rt_read_char" if isinstance(variable_type, ptypes.CharType) else "rt_read_int"
        parts.append(address)
        parts.append(machine.runtime_call(routine, 1))
    return machine.join(parts)


def read_errors(variable_types: Sequence[ptypes.PascalType], variable_errs: Errors) -> Errors:
    errors = tuple(variable_errs)
    for index, variable_type in enumerate(variable_types, start=1):
        if not isinstance(
            variable_type, (ptypes.IntegerType, ptypes.CharType, ptypes.ErrorType)
        ):
            errors = merge_errors(
                errors, error(f"read argument {index} must be an integer or char variable")
            )
    return errors


# ------------------------------------------------------- grammar-facing wrappers
#
# Semantic rules can only pass attribute values, never literal flags, so each literal
# parameterisation of the generic builders above gets its own named function.


def simple_call_code(environment: SymbolTable, name: str) -> CodeValue:
    """A parameterless procedure call statement."""
    return procedure_call_code(environment, name, (), ())


def simple_call_errors(environment: SymbolTable, name: str) -> Errors:
    return procedure_call_errors(environment, name, (), (), ())


def if_errors(condition_type: ptypes.PascalType, condition_errs: Errors,
              body_errs: Errors) -> Errors:
    return condition_errors(condition_type, merge_errors(condition_errs, body_errs), "if")


def if_else_errors(condition_type: ptypes.PascalType, condition_errs: Errors,
                   then_errs: Errors, else_errs: Errors) -> Errors:
    return condition_errors(
        condition_type, merge_errors(condition_errs, then_errs, else_errs), "if"
    )


def while_errors(condition_type: ptypes.PascalType, condition_errs: Errors,
                 body_errs: Errors) -> Errors:
    return condition_errors(condition_type, merge_errors(condition_errs, body_errs), "while")


def repeat_errors(condition_type: ptypes.PascalType, condition_errs: Errors,
                  body_errs: Errors) -> Errors:
    return condition_errors(condition_type, merge_errors(body_errs, condition_errs), "repeat")


def for_to_code(environment: SymbolTable, variable_name: str, start_code: CodeValue,
                limit_code: CodeValue, body: CodeValue) -> CodeValue:
    return for_code(environment, variable_name, start_code, limit_code, body, downto=False)


def for_downto_code(environment: SymbolTable, variable_name: str, start_code: CodeValue,
                    limit_code: CodeValue, body: CodeValue) -> CodeValue:
    return for_code(environment, variable_name, start_code, limit_code, body, downto=True)


def write_args_code(argument_codes: Sequence[CodeValue],
                    argument_types: Sequence[ptypes.PascalType]) -> CodeValue:
    return write_code(argument_codes, argument_types, newline=False)


def writeln_args_code(argument_codes: Sequence[CodeValue],
                      argument_types: Sequence[ptypes.PascalType]) -> CodeValue:
    return write_code(argument_codes, argument_types, newline=True)


def writeln_empty_code() -> CodeValue:
    return write_code((), (), newline=True)


def read_args_code(addresses: Sequence[CodeValue],
                   variable_types: Sequence[ptypes.PascalType]) -> CodeValue:
    return read_code(addresses, variable_types, newline=False)


def readln_args_code(addresses: Sequence[CodeValue],
                     variable_types: Sequence[ptypes.PascalType]) -> CodeValue:
    return read_code(addresses, variable_types, newline=True)


def empty_statement_code() -> CodeValue:
    return machine.empty_code()
