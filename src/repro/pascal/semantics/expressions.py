"""Semantic functions for expressions, variables (l-values) and literals.

Conventions (see :mod:`repro.pascal.machine`): an expression's ``code`` attribute pushes
its value on the stack; a variable's ``addr`` attribute pushes its address.  Each
production defines three synthesized attributes — ``code``, ``type`` and ``errs`` — via
the functions below, plus an ``addr`` attribute on expressions that records the l-value
code when the expression is just a variable (needed to pass actuals to ``var``
parameters).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.distributed.unique_ids import next_label
from repro.pascal import machine
from repro.pascal import types as ptypes
from repro.pascal.meanings import (
    ConstMeaning,
    ProcMeaning,
    VarMeaning,
    current_level,
    lookup_meaning,
)
from repro.pascal.semantics.helpers import Errors, error, merge_errors, no_errors
from repro.strings.code import CodeValue
from repro.symtab.symbol_table import SymbolTable

# --------------------------------------------------------------------- literals


def number_code(text: str) -> CodeValue:
    return machine.push_immediate(int(text))


def number_value(text: str) -> int:
    return int(text)


def char_code(text: str) -> CodeValue:
    """``text`` is the quoted literal, e.g. ``'a'``."""
    inner = text[1:-1].replace("''", "'")
    return machine.push_immediate(ord(inner) if inner else 0)


def string_code(text: str) -> CodeValue:
    """Emit the literal into the data segment and push its address."""
    inner = text[1:-1].replace("''", "'")
    label = next_label("S")
    return machine.join(
        [machine.string_literal(label, inner), machine.instruction("pushab", label)]
    )


# --------------------------------------------------------------------- variables


#: Frame offset of a function's result slot (see :mod:`repro.pascal.machine`).
RESULT_SLOT_OFFSET = -4


def variable_address(environment: SymbolTable, name: str) -> CodeValue:
    """Code pushing the address denoted by a bare identifier.

    A function name used as an l-value denotes the function's result slot (Pascal's
    result-assignment convention), addressed relative to the frame of the function's own
    activation.
    """
    meaning = lookup_meaning(environment, name)
    if isinstance(meaning, VarMeaning):
        levels_up = max(0, current_level(environment) - meaning.level)
        if meaning.by_ref:
            return machine.push_parameter_reference(meaning.offset, levels_up)
        return machine.push_variable_address(
            meaning.offset, levels_up, meaning.is_global, meaning.name
        )
    if isinstance(meaning, ProcMeaning) and meaning.is_function:
        levels_up = max(0, current_level(environment) - (meaning.level + 1))
        return machine.push_variable_address(RESULT_SLOT_OFFSET, levels_up, False, name)
    if isinstance(meaning, ConstMeaning):
        # Constants have no address; the error is reported by variable_errors.
        return machine.push_immediate(0)
    return machine.push_immediate(0)


def variable_type(environment: SymbolTable, name: str) -> ptypes.PascalType:
    meaning = lookup_meaning(environment, name)
    if isinstance(meaning, VarMeaning):
        return meaning.type
    if isinstance(meaning, ConstMeaning):
        return meaning.type
    if isinstance(meaning, ProcMeaning) and meaning.is_function:
        return meaning.result_type
    return ptypes.ERROR_TYPE


def variable_errors(environment: SymbolTable, name: str) -> Errors:
    meaning = lookup_meaning(environment, name)
    if meaning is None:
        return error(f"undeclared identifier '{name}'")
    if isinstance(meaning, (VarMeaning,)):
        return no_errors()
    if isinstance(meaning, ConstMeaning):
        return no_errors()
    if isinstance(meaning, ProcMeaning) and meaning.is_function:
        # The function name as an l-value: assignment to the result slot.
        return no_errors()
    return error(f"'{name}' does not denote a variable")


def indexed_address(
    base_addr: CodeValue,
    base_type: ptypes.PascalType,
    index_code: CodeValue,
) -> CodeValue:
    if isinstance(base_type, ptypes.ArrayType):
        return machine.join(
            [base_addr, index_code,
             machine.index_address(base_type.element.size(), base_type.low)]
        )
    return machine.join([base_addr, index_code, machine.index_address(4, 0)])


def indexed_type(base_type: ptypes.PascalType) -> ptypes.PascalType:
    if isinstance(base_type, ptypes.ArrayType):
        return base_type.element
    return ptypes.ERROR_TYPE


def indexed_errors(
    base_type: ptypes.PascalType,
    index_type: ptypes.PascalType,
    base_errs: Errors,
    index_errs: Errors,
) -> Errors:
    errors = merge_errors(base_errs, index_errs)
    if not isinstance(base_type, (ptypes.ArrayType, ptypes.ErrorType)):
        errors = merge_errors(errors, error(f"cannot index a {base_type.describe()}"))
    if not isinstance(index_type, (ptypes.IntegerType, ptypes.ErrorType)):
        errors = merge_errors(errors, error("array index must be an integer"))
    return errors


def field_address_code(
    base_addr: CodeValue, base_type: ptypes.PascalType, field_name: str
) -> CodeValue:
    if isinstance(base_type, ptypes.RecordType):
        field_type = base_type.field_type(field_name)
        if field_type is not None:
            return machine.join(
                [base_addr, machine.field_address(base_type.field_offset(field_name))]
            )
    return base_addr


def field_type_of(base_type: ptypes.PascalType, field_name: str) -> ptypes.PascalType:
    if isinstance(base_type, ptypes.RecordType):
        field_type = base_type.field_type(field_name)
        if field_type is not None:
            return field_type
    return ptypes.ERROR_TYPE


def field_errors(
    base_type: ptypes.PascalType, field_name: str, base_errs: Errors
) -> Errors:
    errors = tuple(base_errs)
    if isinstance(base_type, ptypes.ErrorType):
        return errors
    if not isinstance(base_type, ptypes.RecordType):
        return merge_errors(errors, error(f"cannot select field of {base_type.describe()}"))
    if base_type.field_type(field_name) is None:
        return merge_errors(errors, error(f"record has no field '{field_name}'"))
    return errors


# ------------------------------------------------------------------ value-of / r-values


def value_of_variable(
    environment: SymbolTable, addr_code: CodeValue, variable_type_: ptypes.PascalType,
    name_if_simple: Optional[str] = None,
) -> CodeValue:
    """An expression that is just a variable: push its value (or its address for
    aggregates, which are passed by reference in this code model)."""
    if isinstance(variable_type_, (ptypes.ArrayType, ptypes.RecordType)):
        return addr_code
    return machine.join([addr_code, machine.dereference_top()])


def constant_reference_code(environment: SymbolTable, name: str, addr_code: CodeValue,
                            variable_type_: ptypes.PascalType) -> CodeValue:
    """Used by the ``factor -> variable`` rule: constants fold to immediates."""
    meaning = lookup_meaning(environment, name) if name else None
    if isinstance(meaning, ConstMeaning) and isinstance(meaning.value, int):
        return machine.push_immediate(meaning.value)
    return value_of_variable(environment, addr_code, variable_type_)


# ------------------------------------------------------------- binary operators


class _BinaryOperationCode:
    """Two-operand code builder parameterised by opcode.

    A class (not a closure) so that rule functions — and hence whole grammars — stay
    picklable for the pooled processes substrate.
    """

    def __init__(self, opcode: str, prefix: str):
        self.opcode = opcode
        self.__name__ = f"{prefix}_{opcode}"

    def __call__(self, left: CodeValue, right: CodeValue) -> CodeValue:
        return machine.join([left, right, machine.binary_operation(self.opcode)])


def make_arithmetic_code(opcode: str) -> Callable[[CodeValue, CodeValue], CodeValue]:
    return _BinaryOperationCode(opcode, "arith")


def arithmetic_type(
    left: ptypes.PascalType, right: ptypes.PascalType
) -> ptypes.PascalType:
    if isinstance(left, ptypes.ErrorType) or isinstance(right, ptypes.ErrorType):
        return ptypes.ERROR_TYPE
    return ptypes.INTEGER


def arithmetic_errors(
    left: ptypes.PascalType,
    right: ptypes.PascalType,
    left_errs: Errors,
    right_errs: Errors,
) -> Errors:
    errors = merge_errors(left_errs, right_errs)
    for side, operand in (("left", left), ("right", right)):
        if not isinstance(operand, (ptypes.IntegerType, ptypes.ErrorType)):
            errors = merge_errors(
                errors, error(f"{side} operand of arithmetic operator must be integer")
            )
    return errors


class _ComparisonCode:
    """Comparison code builder parameterised by branch opcode (picklable, see above)."""

    def __init__(self, branch_opcode: str):
        self.branch_opcode = branch_opcode
        self.__name__ = f"compare_{branch_opcode}"

    def __call__(self, left: CodeValue, right: CodeValue) -> CodeValue:
        true_label = next_label("T")
        end_label = next_label("E")
        return machine.join(
            [left, right, machine.comparison(self.branch_opcode, true_label, end_label)]
        )


def make_comparison_code(branch_opcode: str) -> Callable[[CodeValue, CodeValue], CodeValue]:
    return _ComparisonCode(branch_opcode)


def comparison_type(
    left: ptypes.PascalType, right: ptypes.PascalType
) -> ptypes.PascalType:
    return ptypes.BOOLEAN


def comparison_errors(
    left: ptypes.PascalType,
    right: ptypes.PascalType,
    left_errs: Errors,
    right_errs: Errors,
) -> Errors:
    errors = merge_errors(left_errs, right_errs)
    if isinstance(left, ptypes.ErrorType) or isinstance(right, ptypes.ErrorType):
        return errors
    if left != right:
        errors = merge_errors(
            errors,
            error(
                f"cannot compare {left.describe()} with {right.describe()}"
            ),
        )
    elif not ptypes.is_ordinal(left):
        errors = merge_errors(errors, error(f"cannot compare values of {left.describe()}"))
    return errors


def make_boolean_code(opcode: str) -> Callable[[CodeValue, CodeValue], CodeValue]:
    return _BinaryOperationCode(opcode, "bool")


def boolean_result(left: ptypes.PascalType, right: ptypes.PascalType) -> ptypes.PascalType:
    return ptypes.BOOLEAN


def boolean_errors(
    left: ptypes.PascalType,
    right: ptypes.PascalType,
    left_errs: Errors,
    right_errs: Errors,
) -> Errors:
    errors = merge_errors(left_errs, right_errs)
    for side, operand in (("left", left), ("right", right)):
        if not isinstance(operand, (ptypes.BooleanType, ptypes.ErrorType)):
            errors = merge_errors(
                errors, error(f"{side} operand of boolean operator must be boolean")
            )
    return errors


# ------------------------------------------------------------------ unary operators


def negate_code(operand: CodeValue) -> CodeValue:
    return machine.join([operand, machine.negate_top()])


def negate_errors(operand_type: ptypes.PascalType, operand_errs: Errors) -> Errors:
    errors = tuple(operand_errs)
    if not isinstance(operand_type, (ptypes.IntegerType, ptypes.ErrorType)):
        errors = merge_errors(errors, error("unary minus needs an integer operand"))
    return errors


def not_code(operand: CodeValue) -> CodeValue:
    return machine.join([operand, machine.logical_not_top()])


def not_errors(operand_type: ptypes.PascalType, operand_errs: Errors) -> Errors:
    errors = tuple(operand_errs)
    if not isinstance(operand_type, (ptypes.BooleanType, ptypes.ErrorType)):
        errors = merge_errors(errors, error("'not' needs a boolean operand"))
    return errors


# -------------------------------------------------------------------- function calls


def _call_sequence(
    environment: SymbolTable,
    meaning: ProcMeaning,
    argument_codes: Sequence[CodeValue],
    argument_addrs: Sequence[Optional[CodeValue]],
) -> CodeValue:
    """Push actuals right-to-left, push the static link, and call."""
    parts = []
    for parameter, value_code, addr_code in reversed(
        list(zip(meaning.parameters, argument_codes, argument_addrs))
    ):
        if parameter.by_ref:
            parts.append(addr_code if addr_code is not None else value_code)
        else:
            parts.append(value_code)
    levels_up = max(0, current_level(environment) - meaning.level)
    parts.append(machine.push_static_link(levels_up))
    parts.append(machine.call_procedure(meaning.label, len(meaning.parameters) + 1))
    return machine.join(parts)


def function_call_code(
    environment: SymbolTable,
    name: str,
    argument_codes: Sequence[CodeValue],
    argument_addrs: Sequence[Optional[CodeValue]],
) -> CodeValue:
    meaning = lookup_meaning(environment, name)
    if not isinstance(meaning, ProcMeaning) or not meaning.is_function:
        return machine.push_immediate(0)
    if len(argument_codes) != len(meaning.parameters):
        return machine.push_immediate(0)
    return machine.join(
        [
            _call_sequence(environment, meaning, argument_codes, argument_addrs),
            machine.push_function_result(),
        ]
    )


def function_call_type(environment: SymbolTable, name: str) -> ptypes.PascalType:
    meaning = lookup_meaning(environment, name)
    if isinstance(meaning, ProcMeaning) and meaning.result_type is not None:
        return meaning.result_type
    return ptypes.ERROR_TYPE


def call_errors(
    environment: SymbolTable,
    name: str,
    argument_types: Sequence[ptypes.PascalType],
    argument_addrs: Sequence[Optional[CodeValue]],
    argument_errs: Errors,
    expect_function: bool,
) -> Errors:
    """Shared argument checking for function calls and procedure-call statements."""
    errors = tuple(argument_errs)
    meaning = lookup_meaning(environment, name)
    if meaning is None:
        return merge_errors(errors, error(f"undeclared identifier '{name}'"))
    if not isinstance(meaning, ProcMeaning):
        kind = "function" if expect_function else "procedure"
        return merge_errors(errors, error(f"'{name}' is not a {kind}"))
    if expect_function and not meaning.is_function:
        return merge_errors(errors, error(f"procedure '{name}' used as a function"))
    if not expect_function and meaning.is_function:
        # Calling a function as a statement merely discards the result; allow it.
        pass
    if len(argument_types) != len(meaning.parameters):
        return merge_errors(
            errors,
            error(
                f"'{name}' expects {len(meaning.parameters)} argument(s), "
                f"got {len(argument_types)}"
            ),
        )
    for index, (parameter, actual_type) in enumerate(
        zip(meaning.parameters, argument_types), start=1
    ):
        if not ptypes.types_compatible(parameter.type, actual_type):
            errors = merge_errors(
                errors,
                error(
                    f"argument {index} of '{name}': expected {parameter.type.describe()}, "
                    f"got {actual_type.describe()}"
                ),
            )
        if parameter.by_ref and argument_addrs[index - 1] is None:
            errors = merge_errors(
                errors,
                error(f"argument {index} of '{name}' must be a variable (var parameter)"),
            )
    return errors


def function_call_errors(
    environment: SymbolTable,
    name: str,
    argument_types: Sequence[ptypes.PascalType],
    argument_addrs: Sequence[Optional[CodeValue]],
    argument_errs: Errors,
) -> Errors:
    return call_errors(
        environment, name, argument_types, argument_addrs, argument_errs, expect_function=True
    )


# ------------------------------------------------------------------ literal helpers


def literal_code(text: str) -> CodeValue:
    """Code for a quoted literal: single characters are chars, longer texts strings."""
    inner = text[1:-1].replace("''", "'")
    if len(inner) == 1:
        return char_code(text)
    return string_code(text)


def literal_type(text: str) -> ptypes.PascalType:
    inner = text[1:-1].replace("''", "'")
    return ptypes.CHAR if len(inner) == 1 else ptypes.STRING


def no_address():
    """Expressions that are not plain variables have no usable address."""
    return None


def modulo_code(left: CodeValue, right: CodeValue) -> CodeValue:
    """``left mod right`` via divide/multiply/subtract (the VAX has no modulo)."""
    return machine.join(
        [
            left,
            right,
            machine.pop_to("r1"),
            machine.pop_to("r0"),
            machine.instruction("divl3", "r1", "r0", "r2"),
            machine.instruction("mull2", "r1", "r2"),
            machine.instruction("subl3", "r2", "r0", "r0"),
            machine.push_register("r0"),
        ]
    )


# Operator-specific code builders (created once; reused by the grammar definition).
add_code = make_arithmetic_code("addl3")
subtract_code = make_arithmetic_code("subl3")
multiply_code = make_arithmetic_code("mull3")
divide_code = make_arithmetic_code("divl3")
or_code = make_boolean_code("bisl3")
and_code = make_boolean_code("mull3")
equal_code = make_comparison_code("beql")
not_equal_code = make_comparison_code("bneq")
less_code = make_comparison_code("blss")
less_equal_code = make_comparison_code("bleq")
greater_code = make_comparison_code("bgtr")
greater_equal_code = make_comparison_code("bgeq")
