"""Small shared helpers: error lists, attribute tuples, type shortcuts."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.pascal import types as ptypes
from repro.pascal.meanings import lookup_meaning, TypeMeaning
from repro.symtab.symbol_table import SymbolTable

Errors = Tuple[str, ...]


def no_errors() -> Errors:
    return ()


def error(message: str) -> Errors:
    return (message,)


def merge_errors(*error_lists: Errors) -> Errors:
    combined: Tuple[str, ...] = ()
    for errors in error_lists:
        combined += tuple(errors)
    return combined


def empty_list() -> tuple:
    return ()


def singleton(item) -> tuple:
    return (item,)


def append_item(items: tuple, item) -> tuple:
    return tuple(items) + (item,)


def concat_lists(left: tuple, right: tuple) -> tuple:
    return tuple(left) + tuple(right)


def none_value():
    return None


# ------------------------------------------------------------------ type shortcuts


def integer_type() -> ptypes.PascalType:
    return ptypes.INTEGER


def boolean_type() -> ptypes.PascalType:
    return ptypes.BOOLEAN


def char_type() -> ptypes.PascalType:
    return ptypes.CHAR


def string_type() -> ptypes.PascalType:
    return ptypes.STRING


def error_type() -> ptypes.PascalType:
    return ptypes.ERROR_TYPE


def resolve_named_type(environment: SymbolTable, name: str) -> ptypes.PascalType:
    """Resolve a type name to a type, yielding the error type when unknown."""
    meaning = lookup_meaning(environment, name)
    if isinstance(meaning, TypeMeaning):
        return meaning.type
    return ptypes.ERROR_TYPE


def check_named_type(environment: SymbolTable, name: str) -> Errors:
    meaning = lookup_meaning(environment, name)
    if isinstance(meaning, TypeMeaning):
        return no_errors()
    return error(f"unknown type name '{name}'")
