"""Semantic functions for declarations, blocks, procedures and the whole program.

The block structure follows the classic two-pass attribute pattern: declaration parts
synthesize *definition lists* bottom-up, environments built from those definitions flow
back down into procedure bodies and statements, and code flows up again.  This is
exactly the structure that makes the symbol-table phase of the parallel compiler largely
sequential and the code-generation phase parallel (paper, Figure 6).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.distributed.unique_ids import next_label
from repro.pascal import machine
from repro.pascal import types as ptypes
from repro.pascal.meanings import (
    ConstMeaning,
    Parameter,
    ProcMeaning,
    TypeMeaning,
    VarMeaning,
    bind,
    current_level,
    lookup_meaning,
    with_function,
    with_level,
)
from repro.pascal.semantics.helpers import (
    Errors,
    error,
    merge_errors,
    no_errors,
    resolve_named_type,
)
from repro.strings.code import CodeValue
from repro.symtab.symbol_table import SymbolTable

#: Locals start below the (always reserved) function-result slot.
FIRST_LOCAL_OFFSET = -8
RESULT_SLOT_SIZE = 4


# ------------------------------------------------------------------- constants


def constant_from_number(text: str) -> ConstMeaning:
    return ConstMeaning("<anonymous>", int(text), ptypes.INTEGER)


def constant_from_negative_number(text: str) -> ConstMeaning:
    return ConstMeaning("<anonymous>", -int(text), ptypes.INTEGER)


def constant_from_char(text: str) -> ConstMeaning:
    inner = text[1:-1].replace("''", "'")
    if len(inner) == 1:
        return ConstMeaning("<anonymous>", ord(inner), ptypes.CHAR)
    return ConstMeaning("<anonymous>", 0, ptypes.STRING)


def constant_from_identifier(environment: SymbolTable, name: str) -> ConstMeaning:
    meaning = lookup_meaning(environment, name)
    if isinstance(meaning, ConstMeaning):
        return ConstMeaning("<anonymous>", meaning.value, meaning.type)
    return ConstMeaning("<anonymous>", 0, ptypes.ERROR_TYPE)


def constant_identifier_errors(environment: SymbolTable, name: str) -> Errors:
    meaning = lookup_meaning(environment, name)
    if isinstance(meaning, ConstMeaning):
        return no_errors()
    return error(f"'{name}' is not a constant")


def const_definition(name: str, constant: ConstMeaning) -> ConstMeaning:
    return ConstMeaning(name.lower(), constant.value, constant.type)


# ----------------------------------------------------------------------- types


def array_type(low_text: str, high_text: str, element: ptypes.PascalType) -> ptypes.PascalType:
    low, high = int(low_text), int(high_text)
    if high < low:
        return ptypes.ERROR_TYPE
    return ptypes.ArrayType(low, high, element)


def array_type_errors(low_text: str, high_text: str, element_errs: Errors) -> Errors:
    errors = tuple(element_errs)
    if int(high_text) < int(low_text):
        errors = merge_errors(errors, error("array upper bound is below its lower bound"))
    return errors


def record_type(fields: Sequence[Tuple[str, ptypes.PascalType]]) -> ptypes.PascalType:
    seen = set()
    unique = []
    for name, field_type in fields:
        if name in seen:
            continue
        seen.add(name)
        unique.append((name, field_type))
    return ptypes.RecordType(unique)


def record_type_errors(fields: Sequence[Tuple[str, ptypes.PascalType]], field_errs: Errors) -> Errors:
    errors = tuple(field_errs)
    seen = set()
    for name, _ in fields:
        if name in seen:
            errors = merge_errors(errors, error(f"duplicate record field '{name}'"))
        seen.add(name)
    return errors


def fields_from_names(names: Sequence[str], field_type: ptypes.PascalType) -> tuple:
    return tuple((name.lower(), field_type) for name in names)


def type_definition(name: str, denoted: ptypes.PascalType) -> TypeMeaning:
    return TypeMeaning(name.lower(), denoted)


# ------------------------------------------------------------------- variables


def variable_definitions(names: Sequence[str], declared_type: ptypes.PascalType) -> tuple:
    """A variable declaration contributes (name, type) pairs; offsets are assigned later
    at the block level so the layout is a pure function of the whole declaration list."""
    return tuple((name.lower(), declared_type) for name in names)


def _layout_variables(
    definitions: Sequence[Tuple[str, ptypes.PascalType]],
    level: int,
) -> Tuple[Tuple[VarMeaning, ...], int]:
    """Assign offsets (or global labels) to variable definitions; returns frame size."""
    meanings = []
    cumulative = 0
    for name, declared_type in definitions:
        size = declared_type.size()
        if level == 0:
            meanings.append(
                VarMeaning(name, declared_type, level, 0, by_ref=False, is_global=True)
            )
            continue
        cumulative += size
        # The variable's lowest address: locals grow downward below the result slot.
        offset = FIRST_LOCAL_OFFSET + 4 - cumulative
        meanings.append(
            VarMeaning(name, declared_type, level, offset, by_ref=False, is_global=False)
        )
    return tuple(meanings), RESULT_SLOT_SIZE + cumulative


def frame_size(definitions: Sequence[Tuple[str, ptypes.PascalType]]) -> int:
    """Frame size of a block's locals (plus the reserved result slot)."""
    return RESULT_SLOT_SIZE + sum(t.size() for _, t in definitions)


def global_directives(environment: SymbolTable,
                      definitions: Sequence[Tuple[str, ptypes.PascalType]]) -> CodeValue:
    """``.lcomm`` directives for program-level (global) variables."""
    if current_level(environment) != 0:
        return machine.empty_code()
    return machine.join(
        [machine.global_variable(name, declared_type.size()) for name, declared_type in definitions]
    )


def duplicate_name_errors(definitions: Sequence[Tuple[str, object]], what: str) -> Errors:
    errors: Errors = ()
    seen = set()
    for item in definitions:
        name = item[0] if isinstance(item, tuple) else getattr(item, "name", "")
        if name in seen:
            errors = merge_errors(errors, error(f"duplicate {what} '{name}'"))
        seen.add(name)
    return errors


# ----------------------------------------------------------------- environments


def _extend(environment: SymbolTable, definitions) -> SymbolTable:
    for definition in definitions:
        if isinstance(definition, tuple):
            # (name, type) variable definitions are laid out by the caller.
            raise TypeError("variable definitions must be laid out before binding")
        environment = bind(environment, definition.name, definition)
    return environment


def environment_with_constants(environment: SymbolTable, constants) -> SymbolTable:
    return _extend(environment, constants)


def environment_with_types(environment: SymbolTable, constants, type_definitions) -> SymbolTable:
    return _extend(_extend(environment, constants), type_definitions)


def environment_with_variables(
    environment: SymbolTable, constants, type_definitions, variable_definitions_
) -> SymbolTable:
    extended = environment_with_types(environment, constants, type_definitions)
    laid_out, _ = _layout_variables(variable_definitions_, current_level(environment))
    return _extend(extended, laid_out)


def environment_with_procedures(
    environment: SymbolTable, constants, type_definitions, variable_definitions_, procedures
) -> SymbolTable:
    extended = environment_with_variables(
        environment, constants, type_definitions, variable_definitions_
    )
    return _extend(extended, procedures)


# ------------------------------------------------------------------- procedures


def make_parameters(names: Sequence[str], environment: SymbolTable, type_name: str,
                    by_ref: bool) -> tuple:
    declared = resolve_named_type(environment, type_name)
    return tuple(Parameter(name.lower(), declared, by_ref) for name in names)


def parameter_errors(environment: SymbolTable, type_name: str) -> Errors:
    if isinstance(resolve_named_type(environment, type_name), ptypes.ErrorType):
        return error(f"unknown parameter type '{type_name}'")
    return no_errors()


def procedure_definition(
    environment: SymbolTable, name: str, parameters: Sequence[Parameter]
) -> ProcMeaning:
    label = next_label(f"P_{name.lower()}_")
    return ProcMeaning(name.lower(), label, current_level(environment), tuple(parameters), None)


def function_definition(
    environment: SymbolTable,
    name: str,
    parameters: Sequence[Parameter],
    result_type_name: str,
) -> ProcMeaning:
    label = next_label(f"F_{name.lower()}_")
    result_type = resolve_named_type(environment, result_type_name)
    return ProcMeaning(
        name.lower(), label, current_level(environment), tuple(parameters), result_type
    )


def function_result_errors(environment: SymbolTable, result_type_name: str) -> Errors:
    resolved = resolve_named_type(environment, result_type_name)
    if isinstance(resolved, ptypes.ErrorType):
        return error(f"unknown function result type '{result_type_name}'")
    if isinstance(resolved, (ptypes.ArrayType, ptypes.RecordType)):
        return error("function results must be simple types")
    return no_errors()


def procedure_body_environment(
    environment: SymbolTable, definition: ProcMeaning, parameters: Sequence[Parameter]
) -> SymbolTable:
    """The environment a procedure's block is evaluated in: the outer environment plus
    the procedure itself (recursion), its parameters (at positive frame offsets), the
    new nesting level and the enclosing-function marker."""
    inner_level = definition.level + 1
    extended = bind(environment, definition.name, definition)
    extended = with_level(extended, inner_level)
    extended = with_function(extended, definition if definition.is_function else None)
    offset = machine.FIRST_PARAMETER_OFFSET
    for parameter in parameters:
        extended = bind(
            extended,
            parameter.name,
            VarMeaning(
                parameter.name,
                parameter.type,
                inner_level,
                offset,
                by_ref=parameter.by_ref,
                is_global=False,
            ),
        )
        offset += 4 if parameter.by_ref else parameter.type.size()
    return extended


def procedure_code(
    definition: ProcMeaning,
    routines: CodeValue,
    body: CodeValue,
    local_frame_size: int,
) -> CodeValue:
    """The complete routine: nested routines first, then label/prologue/body/epilogue."""
    return machine.join(
        [
            routines,
            machine.procedure_prologue(definition.label, local_frame_size, definition.name),
            body,
            machine.procedure_epilogue(
                definition.is_function, result_offset=-RESULT_SLOT_SIZE
            ),
        ]
    )


def procedure_errors(definition: ProcMeaning, parameter_errs: Errors, block_errs: Errors) -> Errors:
    errors = merge_errors(parameter_errs, block_errs)
    seen = set()
    for parameter in definition.parameters:
        if parameter.name in seen:
            errors = merge_errors(
                errors, error(f"duplicate parameter '{parameter.name}' in '{definition.name}'")
            )
        seen.add(parameter.name)
    return errors


# ---------------------------------------------------------------------- program


def program_code(
    name: str,
    routines: CodeValue,
    body: CodeValue,
    globals_code: CodeValue,
) -> CodeValue:
    """Assemble the whole program: header, nested routines, main entry, body, globals."""
    return machine.join(
        [
            machine.program_header(name),
            routines,
            machine.main_entry(0),
            body,
            machine.main_exit(),
            globals_code,
        ]
    )


def program_errors(name: str, block_errs: Errors) -> Errors:
    return tuple(block_errs)


# ------------------------------------------------------- grammar-facing wrappers


def environment_with_definitions(environment: SymbolTable, definitions) -> SymbolTable:
    """Extend an environment with already-constructed meaning objects (constants, types
    or procedures); used to make earlier declarations visible to later ones."""
    return _extend(environment, definitions)


def value_parameters(names: Sequence[str], environment: SymbolTable, type_name: str) -> tuple:
    return make_parameters(names, environment, type_name, by_ref=False)


def reference_parameters(names: Sequence[str], environment: SymbolTable, type_name: str) -> tuple:
    return make_parameters(names, environment, type_name, by_ref=True)


def block_errors(
    const_definitions,
    type_definitions,
    variable_definitions_,
    procedure_definitions,
    const_errs: Errors,
    type_errs: Errors,
    var_errs: Errors,
    proc_errs: Errors,
    body_errs: Errors,
) -> Errors:
    """All errors of a block: child errors plus duplicate-declaration checks."""
    return merge_errors(
        const_errs,
        type_errs,
        var_errs,
        proc_errs,
        body_errs,
        duplicate_name_errors(const_definitions, "constant"),
        duplicate_name_errors(type_definitions, "type"),
        duplicate_name_errors(variable_definitions_, "variable"),
        duplicate_name_errors(procedure_definitions, "procedure"),
    )


def function_declaration_errors(
    environment: SymbolTable,
    definition: ProcMeaning,
    result_type_name: str,
    parameter_errs: Errors,
    block_errs: Errors,
) -> Errors:
    return merge_errors(
        procedure_errors(definition, parameter_errs, block_errs),
        function_result_errors(environment, result_type_name),
    )
