"""High-level Pascal compilation entry points (sequential and simulated-parallel)."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from repro.analysis.visit_sequences import OrderedEvaluationPlan, build_evaluation_plan
from repro.backends import Substrate
from repro.distributed.compiler import (
    CompilationReport,
    CompilerConfiguration,
    ParallelCompiler,
)
from repro.evaluation.base import EvaluationStatistics
from repro.evaluation.combined import CombinedEvaluator
from repro.evaluation.dynamic import DynamicEvaluator
from repro.evaluation.static import StaticEvaluator
from repro.grammar.grammar import AttributeGrammar
from repro.parsing.parser import Parser
from repro.pascal.grammar import pascal_grammar
from repro.pascal.lexer import tokenize_pascal
from repro.strings.rope import Rope
from repro.tree.node import ParseTreeNode
from repro.tree.stats import tree_statistics


@dataclass
class CompileResult:
    """Outcome of a sequential compilation."""

    code: str
    errors: Tuple[str, ...]
    statistics: EvaluationStatistics
    tree_nodes: int

    @property
    def ok(self) -> bool:
        return not self.errors


@lru_cache(maxsize=None)
def _shared_parser() -> Parser:
    return Parser(pascal_grammar())


@lru_cache(maxsize=None)
def _shared_plan() -> OrderedEvaluationPlan:
    return build_evaluation_plan(pascal_grammar())


class PascalCompiler:
    """Parse and compile Pascal programs with any of the evaluators.

    The grammar, LALR parse table and ordered-evaluation plan are built once per process
    and shared across instances, mirroring the paper's generator which runs the
    grammar-time analyses once.
    """

    def __init__(self, configuration: Optional[CompilerConfiguration] = None):
        self.grammar: AttributeGrammar = pascal_grammar()
        self.parser = _shared_parser()
        self.plan = _shared_plan()
        self.configuration = configuration or CompilerConfiguration()

    # ----------------------------------------------------------------- parsing

    def parse(self, source: str) -> ParseTreeNode:
        """Scan and parse Pascal source into a parse tree."""
        return self.parser.parse(tokenize_pascal(source))

    # -------------------------------------------------------------- sequential

    def compile(self, source: str, evaluator: str = "static") -> CompileResult:
        """Compile sequentially with the chosen evaluator (static/dynamic/combined)."""
        evaluators = {
            "static": StaticEvaluator,
            "dynamic": DynamicEvaluator,
            "combined": CombinedEvaluator,
        }
        if evaluator not in evaluators:
            raise ValueError(f"unknown evaluator {evaluator!r}; choose from {sorted(evaluators)}")
        tree = self.parse(source)
        if evaluator == "dynamic":
            engine = DynamicEvaluator(self.grammar)
        elif evaluator == "combined":
            engine = CombinedEvaluator(self.grammar, plan=self.plan)
        else:
            engine = StaticEvaluator(self.grammar, plan=self.plan)
        statistics = engine.evaluate(tree)
        code_value = tree.get_attribute("code")
        code_text = code_value.flatten() if isinstance(code_value, Rope) else str(code_value)
        return CompileResult(
            code=code_text,
            errors=tuple(tree.get_attribute("errs")),
            statistics=statistics,
            tree_nodes=tree_statistics(tree).node_count,
        )

    # ---------------------------------------------------------------- parallel

    def compile_parallel(
        self,
        source: str,
        machines: int,
        configuration: Optional[CompilerConfiguration] = None,
        backend: Optional[str] = None,
        substrate: Optional[Substrate] = None,
    ) -> CompilationReport:
        """Deprecated: use ``repro.api.Compiler("pascal")`` (this delegates to it).

        ``backend`` selects a one-shot substrate (``"simulated"`` by default, or
        ``"threads"``/``"processes"`` for real concurrency); pass a started
        ``substrate`` instead to borrow a persistent worker pool and skip the
        per-compilation spawn cost.  Returns the full :class:`CompilationReport`
        (timings, timeline, decomposition, message statistics and the generated code).
        """
        warnings.warn(
            "PascalCompiler.compile_parallel is deprecated; use "
            "repro.api.Compiler('pascal', ...).compile(source) "
            "(or Session(...).compiler('pascal'))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._facade(configuration, backend, substrate, machines).compile(
            source
        ).report

    def compile_tree_parallel(
        self,
        tree: ParseTreeNode,
        machines: int,
        configuration: Optional[CompilerConfiguration] = None,
        backend: Optional[str] = None,
        substrate: Optional[Substrate] = None,
    ) -> CompilationReport:
        """Deprecated: like :meth:`compile_parallel` but for an already-parsed tree
        (useful when sweeping machine counts over one program, as the figures do);
        use ``repro.api.Compiler("pascal").compile_tree(tree)`` instead."""
        warnings.warn(
            "PascalCompiler.compile_tree_parallel is deprecated; use "
            "repro.api.Compiler('pascal', ...).compile_tree(tree)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._facade(configuration, backend, substrate, machines).compile_tree(
            tree
        ).report

    def _facade(
        self,
        configuration: Optional[CompilerConfiguration],
        backend: Optional[str],
        substrate: Optional[Substrate],
        machines: int,
    ):
        """The front-door :class:`repro.api.Compiler` these shims delegate to."""
        from repro.api import Compiler  # local import: repro.api builds on this module

        return Compiler(
            "pascal",
            machines=machines,
            backend=backend,
            substrate=substrate,
            configuration=configuration or self.configuration,
        )
