"""A Pascal-subset compiler expressed as an attribute grammar.

This is the paper's headline workload: a sizable Pascal subset (all control constructs
except ``with`` and ``goto``, value and reference parameters, arrays and records)
translated to VAX-style assembly by an attribute grammar, evaluated sequentially or in
parallel.  Parse trees can be split at statement nodes, statement-list nodes, procedure
declarations and lists of procedure declarations, exactly as in the paper.

Public entry points:

* :func:`pascal_grammar` — the attribute grammar (built once, cached);
* :class:`PascalCompiler` — parse + evaluate convenience wrapper with sequential and
  simulated-parallel modes;
* :func:`generate_program` — synthetic Pascal programs matched to the paper's input
  (≈1100 lines, ≈46 procedures, a handful nested deeper than one level).
"""

from repro.pascal.grammar import pascal_grammar
from repro.pascal.compiler import PascalCompiler, CompileResult
from repro.pascal.programs import generate_program, SAMPLE_PROGRAMS
from repro.pascal.lexer import tokenize_pascal

__all__ = [
    "pascal_grammar",
    "PascalCompiler",
    "CompileResult",
    "generate_program",
    "SAMPLE_PROGRAMS",
    "tokenize_pascal",
]
