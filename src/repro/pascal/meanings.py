"""Symbol-table meanings (what an identifier denotes) and environment helpers.

The environment is the applicative :class:`repro.symtab.SymbolTable`; the values bound
to identifiers are the *meaning* objects below.  Two reserved bindings carry scope-wide
context so that it does not have to be threaded as separate inherited attributes:
``$level`` (static nesting depth of the current scope) and ``$function`` (the meaning of
the enclosing function, used to type-check assignments to the function result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.pascal.types import BOOLEAN, CHAR, INTEGER, PascalType
from repro.symtab.symbol_table import SymbolTable

LEVEL_KEY = "$level"
FUNCTION_KEY = "$function"


@dataclass(frozen=True)
class ConstMeaning:
    """A named constant."""

    name: str
    value: object
    type: PascalType


@dataclass(frozen=True)
class TypeMeaning:
    """A named type."""

    name: str
    type: PascalType


@dataclass(frozen=True)
class VarMeaning:
    """A variable, parameter or function-result slot.

    :param level: static nesting level of the declaring scope (0 = program globals).
    :param offset: frame-pointer-relative offset (negative for locals, positive for
        parameters) or absolute data-segment offset for globals.
    :param by_ref: true for ``var`` parameters — the slot holds the address of the
        actual variable rather than its value.
    :param is_global: globals are addressed symbolically rather than via the frame.
    """

    name: str
    type: PascalType
    level: int
    offset: int
    by_ref: bool = False
    is_global: bool = False
    is_result: bool = False


@dataclass(frozen=True)
class Parameter:
    """One formal parameter."""

    name: str
    type: PascalType
    by_ref: bool = False

    def size(self) -> int:
        return 4 if self.by_ref else self.type.size()


@dataclass(frozen=True)
class ProcMeaning:
    """A procedure or function."""

    name: str
    label: str
    level: int
    parameters: Tuple[Parameter, ...]
    result_type: Optional[PascalType] = None   # None for procedures

    @property
    def is_function(self) -> bool:
        return self.result_type is not None


# ------------------------------------------------------------------- environments


def initial_environment() -> SymbolTable:
    """The standard environment: predefined types plus level 0."""
    table = SymbolTable()
    table = table.add("integer", TypeMeaning("integer", INTEGER))
    table = table.add("boolean", TypeMeaning("boolean", BOOLEAN))
    table = table.add("char", TypeMeaning("char", CHAR))
    table = table.add("true", ConstMeaning("true", 1, BOOLEAN))
    table = table.add("false", ConstMeaning("false", 0, BOOLEAN))
    table = table.add("maxint", ConstMeaning("maxint", 2 ** 31 - 1, INTEGER))
    table = table.add(LEVEL_KEY, 0)
    return table


def current_level(environment: SymbolTable) -> int:
    return int(environment.lookup(LEVEL_KEY, 0))


def with_level(environment: SymbolTable, level: int) -> SymbolTable:
    return environment.add(LEVEL_KEY, level)


def current_function(environment: SymbolTable) -> Optional[ProcMeaning]:
    value = environment.lookup(FUNCTION_KEY, None)
    return value if isinstance(value, ProcMeaning) else None


def with_function(environment: SymbolTable, meaning: Optional[ProcMeaning]) -> SymbolTable:
    return environment.add(FUNCTION_KEY, meaning)


def lookup_meaning(environment: SymbolTable, name: str):
    """Look an identifier up, returning ``None`` when undeclared."""
    return environment.lookup(name.lower(), None)


def bind(environment: SymbolTable, name: str, meaning) -> SymbolTable:
    return environment.add(name.lower(), meaning)


def environment_size(environment: SymbolTable) -> int:
    """Abstract transmission size of an environment value."""
    return environment.transmission_size()
