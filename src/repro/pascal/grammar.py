"""The Pascal-subset attribute grammar.

The grammar mirrors the compiler described in the paper: roughly eighty context-free
productions, several hundred semantic rules, splits allowed at statements, statement
lists, procedure declarations and lists of procedure declarations, and the environment
(the global symbol table analogue) marked as a *priority* attribute so it is computed
and propagated to remote evaluators as early as possible.

Attribute conventions:

=================  =======================================================================
``env``            inherited applicative symbol table (includes the nesting level and the
                   enclosing function under reserved keys)
``code``           synthesized code value (rope / string descriptor) pushing a value
``addr``           synthesized l-value code (``None`` for non-variable expressions)
``type``           synthesized :class:`repro.pascal.types.PascalType`
``errs``           synthesized tuple of error messages
``defs``/``def``   synthesized declaration lists / single declarations
``routines``       synthesized code of nested procedure bodies
``body``           synthesized code of a block's compound statement
``globals``        synthesized ``.lcomm`` directives for program-level variables
``size``           synthesized local frame size
=================  =======================================================================
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.attributes import AttributeConverter
from repro.grammar.builder import GrammarBuilder, Rule
from repro.grammar.grammar import AttributeGrammar
from repro.pascal import meanings
from repro.pascal.semantics import declarations as d
from repro.pascal.semantics import expressions as e
from repro.pascal.semantics import helpers as h
from repro.pascal.semantics import statements as s
from repro.strings.code import code_concat, code_size
from repro.symtab.symbol_table import SymbolTable


def _environment_size(table) -> int:
    return table.transmission_size() if isinstance(table, SymbolTable) else 16


def _environment_converter() -> AttributeConverter:
    return AttributeConverter(size_of=_environment_size)


def _code_converter() -> AttributeConverter:
    return AttributeConverter(size_of=code_size)


def cp(target: str, source: str) -> Rule:
    """A copy rule (the single most common rule kind in any attribute grammar)."""
    return Rule(target, [source], name="copy")


@lru_cache(maxsize=None)
def pascal_grammar() -> AttributeGrammar:
    """Build (once) and return the Pascal-subset attribute grammar."""
    b = GrammarBuilder("pascal")

    # ----------------------------------------------------------------- terminals
    b.name_terminals("IDENTIFIER", "NUMBER", "STRINGLIT", value_attribute="string")
    b.keywords(
        "PROGRAM", "CONST", "TYPE", "VAR", "PROCEDURE", "FUNCTION",
        "BEGIN", "END", "IF", "THEN", "ELSE", "WHILE", "DO", "REPEAT", "UNTIL",
        "FOR", "TO", "DOWNTO", "OF", "ARRAY", "RECORD",
        "DIV", "MOD", "AND", "OR", "NOT",
        "WRITE", "WRITELN", "READ", "READLN",
        ";", ":", ",", ".", "..", "(", ")", "[", "]",
        ":=", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*",
    )

    env_conv = _environment_converter()
    code_conv = _code_converter()

    # -------------------------------------------------------------- nonterminals
    b.nonterminal("program", synthesized=["code", "errs"],
                  converters={"code": code_conv})
    b.nonterminal(
        "block",
        synthesized=["routines", "body", "globals", "size", "errs"],
        inherited=["env"],
        converters={"routines": code_conv, "body": code_conv, "env": env_conv},
    )

    b.nonterminal("const_part", synthesized=["defs", "errs"], inherited=["env"])
    b.nonterminal("const_decls", synthesized=["defs", "errs"], inherited=["env"])
    b.nonterminal("const_decl", synthesized=["def", "errs"], inherited=["env"])
    b.nonterminal("constant", synthesized=["value", "errs"], inherited=["env"])

    b.nonterminal("type_part", synthesized=["defs", "errs"], inherited=["env"])
    b.nonterminal("type_decls", synthesized=["defs", "errs"], inherited=["env"])
    b.nonterminal("type_decl", synthesized=["def", "errs"], inherited=["env"])
    b.nonterminal("type_denoter", synthesized=["type", "errs"], inherited=["env"])
    b.nonterminal("field_list", synthesized=["fields", "errs"], inherited=["env"])
    b.nonterminal("field_decl", synthesized=["fields", "errs"], inherited=["env"])
    b.nonterminal("id_list", synthesized=["names"])

    b.nonterminal("var_part", synthesized=["defs", "errs"], inherited=["env"])
    b.nonterminal("var_decls", synthesized=["defs", "errs"], inherited=["env"])
    b.nonterminal("var_decl", synthesized=["defs", "errs"], inherited=["env"])

    # Procedure declarations and their lists are split points (the paper's
    # "procedure declaration nodes and lists of procedure declarations").
    #
    # They carry two inherited environments: ``decl_env`` (constants, types and
    # variables of the enclosing block — enough to build the procedure's interface
    # definition) and ``env`` (the full environment including every procedure of the
    # block — needed to generate code for the body).  Splitting these keeps the
    # symbol-table phase short and sequential while code generation for different
    # procedures proceeds in parallel; it is the grammar-tuning step the paper alludes
    # to when discussing the sequential symbol-table propagation of Figure 6.  A side
    # effect is that all procedures of a block are mutually visible (no ``forward``
    # declarations needed).
    b.nonterminal("proc_part", synthesized=["defs", "code", "errs"],
                  inherited=["decl_env", "env"],
                  converters={"code": code_conv, "env": env_conv, "decl_env": env_conv})
    b.nonterminal(
        "proc_decls", synthesized=["defs", "code", "errs"], inherited=["decl_env", "env"],
        split=True, min_split_size=900, priority=["decl_env", "env"],
        converters={"code": code_conv, "env": env_conv, "decl_env": env_conv},
    )
    b.nonterminal(
        "proc_decl", synthesized=["def", "code", "errs"], inherited=["decl_env", "env"],
        split=True, min_split_size=500, priority=["decl_env", "env"],
        converters={"code": code_conv, "env": env_conv, "decl_env": env_conv},
    )
    b.nonterminal("params", synthesized=["params", "errs"], inherited=["env"])
    b.nonterminal("param_sections", synthesized=["params", "errs"], inherited=["env"])
    b.nonterminal("param_section", synthesized=["params", "errs"], inherited=["env"])

    b.nonterminal("compound_statement", synthesized=["code", "errs"], inherited=["env"],
                  converters={"code": code_conv, "env": env_conv})
    # Statements and statement lists are split points ("statement nodes, statement list
    # nodes"); their inherited environment is the priority attribute.
    b.nonterminal(
        "statement_list", synthesized=["code", "errs"], inherited=["env"],
        split=True, min_split_size=600, priority=["env"],
        converters={"code": code_conv, "env": env_conv},
    )
    b.nonterminal(
        "statement", synthesized=["code", "errs"], inherited=["env"],
        split=True, min_split_size=350, priority=["env"],
        converters={"code": code_conv, "env": env_conv},
    )

    b.nonterminal("variable", synthesized=["addr", "type", "errs"], inherited=["env"],
                  converters={"addr": code_conv, "env": env_conv})
    b.nonterminal("variable_list", synthesized=["addrs", "types", "errs"], inherited=["env"])
    b.nonterminal("expr_list", synthesized=["codes", "types", "addrs", "errs"], inherited=["env"])
    for name in ("expression", "simple_expression", "term", "factor"):
        b.nonterminal(
            name,
            synthesized=["code", "type", "addr", "errs"],
            inherited=["env"],
            converters={"code": code_conv, "env": env_conv},
        )

    # ---------------------------------------------------------------- program

    b.production(
        "program -> PROGRAM IDENTIFIER ; block .",
        Rule("$4.env", [], meanings.initial_environment, name="initial_environment"),
        Rule("$$.code", ["$2.string", "$4.routines", "$4.body", "$4.globals"],
             d.program_code, name="program_code"),
        Rule("$$.errs", ["$2.string", "$4.errs"], d.program_errors, name="program_errors"),
    )

    # ------------------------------------------------------------------ blocks

    b.production(
        "block -> const_part type_part var_part proc_part compound_statement",
        cp("$1.env", "$$.env"),
        Rule("$2.env", ["$$.env", "$1.defs"], d.environment_with_constants,
             name="env_with_constants"),
        Rule("$3.env", ["$$.env", "$1.defs", "$2.defs"], d.environment_with_types,
             name="env_with_types"),
        Rule("$4.decl_env", ["$$.env", "$1.defs", "$2.defs", "$3.defs"],
             d.environment_with_variables, name="env_with_variables"),
        Rule("$4.env", ["$$.env", "$1.defs", "$2.defs", "$3.defs", "$4.defs"],
             d.environment_with_procedures, name="env_with_procedures"),
        Rule("$5.env", ["$$.env", "$1.defs", "$2.defs", "$3.defs", "$4.defs"],
             d.environment_with_procedures, name="env_with_procedures"),
        cp("$$.routines", "$4.code"),
        cp("$$.body", "$5.code"),
        Rule("$$.size", ["$3.defs"], d.frame_size, name="frame_size"),
        Rule("$$.globals", ["$$.env", "$3.defs"], d.global_directives, name="global_directives"),
        Rule("$$.errs",
             ["$1.defs", "$2.defs", "$3.defs", "$4.defs",
              "$1.errs", "$2.errs", "$3.errs", "$4.errs", "$5.errs"],
             d.block_errors, name="block_errors"),
    )

    # --------------------------------------------------------------- constants

    b.production(
        "const_part -> CONST const_decls",
        cp("$2.env", "$$.env"),
        cp("$$.defs", "$2.defs"),
        cp("$$.errs", "$2.errs"),
    )
    b.production(
        "const_part ->",
        Rule("$$.defs", [], h.empty_list, name="empty_list"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "const_decls -> const_decls const_decl",
        cp("$1.env", "$$.env"),
        Rule("$2.env", ["$$.env", "$1.defs"], d.environment_with_definitions,
             name="env_with_defs"),
        Rule("$$.defs", ["$1.defs", "$2.def"], h.append_item, name="append"),
        Rule("$$.errs", ["$1.errs", "$2.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "const_decls -> const_decl",
        cp("$1.env", "$$.env"),
        Rule("$$.defs", ["$1.def"], h.singleton, name="singleton"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "const_decl -> IDENTIFIER = constant ;",
        cp("$3.env", "$$.env"),
        Rule("$$.def", ["$1.string", "$3.value"], d.const_definition, name="const_definition"),
        cp("$$.errs", "$3.errs"),
    )
    b.production(
        "constant -> NUMBER",
        Rule("$$.value", ["$1.string"], d.constant_from_number, name="constant_from_number"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "constant -> - NUMBER",
        Rule("$$.value", ["$2.string"], d.constant_from_negative_number,
             name="constant_from_negative_number"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "constant -> STRINGLIT",
        Rule("$$.value", ["$1.string"], d.constant_from_char, name="constant_from_char"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "constant -> IDENTIFIER",
        Rule("$$.value", ["$$.env", "$1.string"], d.constant_from_identifier,
             name="constant_from_identifier"),
        Rule("$$.errs", ["$$.env", "$1.string"], d.constant_identifier_errors,
             name="constant_identifier_errors"),
    )

    # ------------------------------------------------------------------- types

    b.production(
        "type_part -> TYPE type_decls",
        cp("$2.env", "$$.env"),
        cp("$$.defs", "$2.defs"),
        cp("$$.errs", "$2.errs"),
    )
    b.production(
        "type_part ->",
        Rule("$$.defs", [], h.empty_list, name="empty_list"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "type_decls -> type_decls type_decl",
        cp("$1.env", "$$.env"),
        Rule("$2.env", ["$$.env", "$1.defs"], d.environment_with_definitions,
             name="env_with_defs"),
        Rule("$$.defs", ["$1.defs", "$2.def"], h.append_item, name="append"),
        Rule("$$.errs", ["$1.errs", "$2.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "type_decls -> type_decl",
        cp("$1.env", "$$.env"),
        Rule("$$.defs", ["$1.def"], h.singleton, name="singleton"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "type_decl -> IDENTIFIER = type_denoter ;",
        cp("$3.env", "$$.env"),
        Rule("$$.def", ["$1.string", "$3.type"], d.type_definition, name="type_definition"),
        cp("$$.errs", "$3.errs"),
    )
    b.production(
        "type_denoter -> IDENTIFIER",
        Rule("$$.type", ["$$.env", "$1.string"], h.resolve_named_type, name="resolve_named_type"),
        Rule("$$.errs", ["$$.env", "$1.string"], h.check_named_type, name="check_named_type"),
    )
    b.production(
        "type_denoter -> ARRAY [ NUMBER .. NUMBER ] OF type_denoter",
        cp("$8.env", "$$.env"),
        Rule("$$.type", ["$3.string", "$5.string", "$8.type"], d.array_type, name="array_type"),
        Rule("$$.errs", ["$3.string", "$5.string", "$8.errs"], d.array_type_errors,
             name="array_type_errors"),
    )
    b.production(
        "type_denoter -> RECORD field_list END",
        cp("$2.env", "$$.env"),
        Rule("$$.type", ["$2.fields"], d.record_type, name="record_type"),
        Rule("$$.errs", ["$2.fields", "$2.errs"], d.record_type_errors, name="record_type_errors"),
    )
    b.production(
        "field_list -> field_list ; field_decl",
        cp("$1.env", "$$.env"),
        cp("$3.env", "$$.env"),
        Rule("$$.fields", ["$1.fields", "$3.fields"], h.concat_lists, name="concat"),
        Rule("$$.errs", ["$1.errs", "$3.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "field_list -> field_decl",
        cp("$1.env", "$$.env"),
        cp("$$.fields", "$1.fields"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "field_decl -> id_list : type_denoter",
        cp("$3.env", "$$.env"),
        Rule("$$.fields", ["$1.names", "$3.type"], d.fields_from_names, name="fields_from_names"),
        cp("$$.errs", "$3.errs"),
    )
    b.production(
        "id_list -> id_list , IDENTIFIER",
        Rule("$$.names", ["$1.names", "$3.string"], h.append_item, name="append"),
    )
    b.production(
        "id_list -> IDENTIFIER",
        Rule("$$.names", ["$1.string"], h.singleton, name="singleton"),
    )

    # --------------------------------------------------------------- variables

    b.production(
        "var_part -> VAR var_decls",
        cp("$2.env", "$$.env"),
        cp("$$.defs", "$2.defs"),
        cp("$$.errs", "$2.errs"),
    )
    b.production(
        "var_part ->",
        Rule("$$.defs", [], h.empty_list, name="empty_list"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "var_decls -> var_decls var_decl",
        cp("$1.env", "$$.env"),
        cp("$2.env", "$$.env"),
        Rule("$$.defs", ["$1.defs", "$2.defs"], h.concat_lists, name="concat"),
        Rule("$$.errs", ["$1.errs", "$2.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "var_decls -> var_decl",
        cp("$1.env", "$$.env"),
        cp("$$.defs", "$1.defs"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "var_decl -> id_list : type_denoter ;",
        cp("$3.env", "$$.env"),
        Rule("$$.defs", ["$1.names", "$3.type"], d.variable_definitions,
             name="variable_definitions"),
        cp("$$.errs", "$3.errs"),
    )

    # -------------------------------------------------------------- procedures

    b.production(
        "proc_part -> proc_decls",
        cp("$1.decl_env", "$$.decl_env"),
        cp("$1.env", "$$.env"),
        cp("$$.defs", "$1.defs"),
        cp("$$.code", "$1.code"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "proc_part ->",
        Rule("$$.defs", [], h.empty_list, name="empty_list"),
        Rule("$$.code", [], s.empty_statement_code, name="empty_code"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "proc_decls -> proc_decls proc_decl",
        cp("$1.decl_env", "$$.decl_env"),
        cp("$1.env", "$$.env"),
        cp("$2.decl_env", "$$.decl_env"),
        cp("$2.env", "$$.env"),
        Rule("$$.defs", ["$1.defs", "$2.def"], h.append_item, name="append"),
        Rule("$$.code", ["$1.code", "$2.code"], code_concat, name="code_concat"),
        Rule("$$.errs", ["$1.errs", "$2.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "proc_decls -> proc_decl",
        cp("$1.decl_env", "$$.decl_env"),
        cp("$1.env", "$$.env"),
        Rule("$$.defs", ["$1.def"], h.singleton, name="singleton"),
        cp("$$.code", "$1.code"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "proc_decl -> PROCEDURE IDENTIFIER params ; block ;",
        cp("$3.env", "$$.decl_env"),
        Rule("$$.def", ["$$.decl_env", "$2.string", "$3.params"], d.procedure_definition,
             name="procedure_definition"),
        Rule("$5.env", ["$$.env", "$$.def", "$3.params"], d.procedure_body_environment,
             name="procedure_body_environment"),
        Rule("$$.code", ["$$.def", "$5.routines", "$5.body", "$5.size"], d.procedure_code,
             name="procedure_code"),
        Rule("$$.errs", ["$$.def", "$3.errs", "$5.errs"], d.procedure_errors,
             name="procedure_errors"),
    )
    b.production(
        "proc_decl -> FUNCTION IDENTIFIER params : IDENTIFIER ; block ;",
        cp("$3.env", "$$.decl_env"),
        Rule("$$.def", ["$$.decl_env", "$2.string", "$3.params", "$5.string"],
             d.function_definition, name="function_definition"),
        Rule("$7.env", ["$$.env", "$$.def", "$3.params"], d.procedure_body_environment,
             name="procedure_body_environment"),
        Rule("$$.code", ["$$.def", "$7.routines", "$7.body", "$7.size"], d.procedure_code,
             name="procedure_code"),
        Rule("$$.errs", ["$$.decl_env", "$$.def", "$5.string", "$3.errs", "$7.errs"],
             d.function_declaration_errors, name="function_declaration_errors"),
    )
    b.production(
        "params -> ( param_sections )",
        cp("$2.env", "$$.env"),
        cp("$$.params", "$2.params"),
        cp("$$.errs", "$2.errs"),
    )
    b.production(
        "params ->",
        Rule("$$.params", [], h.empty_list, name="empty_list"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "param_sections -> param_sections ; param_section",
        cp("$1.env", "$$.env"),
        cp("$3.env", "$$.env"),
        Rule("$$.params", ["$1.params", "$3.params"], h.concat_lists, name="concat"),
        Rule("$$.errs", ["$1.errs", "$3.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "param_sections -> param_section",
        cp("$1.env", "$$.env"),
        cp("$$.params", "$1.params"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "param_section -> id_list : IDENTIFIER",
        Rule("$$.params", ["$1.names", "$$.env", "$3.string"], d.value_parameters,
             name="value_parameters"),
        Rule("$$.errs", ["$$.env", "$3.string"], d.parameter_errors, name="parameter_errors"),
    )
    b.production(
        "param_section -> VAR id_list : IDENTIFIER",
        Rule("$$.params", ["$2.names", "$$.env", "$4.string"], d.reference_parameters,
             name="reference_parameters"),
        Rule("$$.errs", ["$$.env", "$4.string"], d.parameter_errors, name="parameter_errors"),
    )

    # -------------------------------------------------------------- statements

    b.production(
        "compound_statement -> BEGIN statement_list END",
        cp("$2.env", "$$.env"),
        cp("$$.code", "$2.code"),
        cp("$$.errs", "$2.errs"),
    )
    b.production(
        "statement_list -> statement_list ; statement",
        cp("$1.env", "$$.env"),
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$1.code", "$3.code"], code_concat, name="code_concat"),
        Rule("$$.errs", ["$1.errs", "$3.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "statement_list -> statement",
        cp("$1.env", "$$.env"),
        cp("$$.code", "$1.code"),
        cp("$$.errs", "$1.errs"),
    )

    b.production(
        "statement -> variable := expression",
        cp("$1.env", "$$.env"),
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$1.addr", "$1.type", "$3.code"], s.assignment_code,
             name="assignment_code"),
        Rule("$$.errs", ["$$.env", "$1.type", "$3.type", "$1.errs", "$3.errs"],
             s.assignment_errors, name="assignment_errors"),
    )
    b.production(
        "statement -> IDENTIFIER",
        Rule("$$.code", ["$$.env", "$1.string"], s.simple_call_code, name="simple_call_code"),
        Rule("$$.errs", ["$$.env", "$1.string"], s.simple_call_errors, name="simple_call_errors"),
    )
    b.production(
        "statement -> IDENTIFIER ( expr_list )",
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$$.env", "$1.string", "$3.codes", "$3.addrs"],
             s.procedure_call_code, name="procedure_call_code"),
        Rule("$$.errs", ["$$.env", "$1.string", "$3.types", "$3.addrs", "$3.errs"],
             s.procedure_call_errors, name="procedure_call_errors"),
    )
    b.production(
        "statement -> compound_statement",
        cp("$1.env", "$$.env"),
        cp("$$.code", "$1.code"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "statement -> IF expression THEN statement",
        cp("$2.env", "$$.env"),
        cp("$4.env", "$$.env"),
        Rule("$$.code", ["$2.code", "$4.code"], s.if_code, name="if_code"),
        Rule("$$.errs", ["$2.type", "$2.errs", "$4.errs"], s.if_errors, name="if_errors"),
    )
    b.production(
        "statement -> IF expression THEN statement ELSE statement",
        cp("$2.env", "$$.env"),
        cp("$4.env", "$$.env"),
        cp("$6.env", "$$.env"),
        Rule("$$.code", ["$2.code", "$4.code", "$6.code"], s.if_else_code, name="if_else_code"),
        Rule("$$.errs", ["$2.type", "$2.errs", "$4.errs", "$6.errs"], s.if_else_errors,
             name="if_else_errors"),
    )
    b.production(
        "statement -> WHILE expression DO statement",
        cp("$2.env", "$$.env"),
        cp("$4.env", "$$.env"),
        Rule("$$.code", ["$2.code", "$4.code"], s.while_code, name="while_code"),
        Rule("$$.errs", ["$2.type", "$2.errs", "$4.errs"], s.while_errors, name="while_errors"),
    )
    b.production(
        "statement -> REPEAT statement_list UNTIL expression",
        cp("$2.env", "$$.env"),
        cp("$4.env", "$$.env"),
        Rule("$$.code", ["$2.code", "$4.code"], s.repeat_code, name="repeat_code"),
        Rule("$$.errs", ["$4.type", "$4.errs", "$2.errs"], s.repeat_errors, name="repeat_errors"),
    )
    b.production(
        "statement -> FOR IDENTIFIER := expression TO expression DO statement",
        cp("$4.env", "$$.env"),
        cp("$6.env", "$$.env"),
        cp("$8.env", "$$.env"),
        Rule("$$.code", ["$$.env", "$2.string", "$4.code", "$6.code", "$8.code"],
             s.for_to_code, name="for_to_code"),
        Rule("$$.errs",
             ["$$.env", "$2.string", "$4.type", "$6.type", "$4.errs", "$6.errs", "$8.errs"],
             s.for_errors, name="for_errors"),
    )
    b.production(
        "statement -> FOR IDENTIFIER := expression DOWNTO expression DO statement",
        cp("$4.env", "$$.env"),
        cp("$6.env", "$$.env"),
        cp("$8.env", "$$.env"),
        Rule("$$.code", ["$$.env", "$2.string", "$4.code", "$6.code", "$8.code"],
             s.for_downto_code, name="for_downto_code"),
        Rule("$$.errs",
             ["$$.env", "$2.string", "$4.type", "$6.type", "$4.errs", "$6.errs", "$8.errs"],
             s.for_errors, name="for_errors"),
    )
    b.production(
        "statement -> WRITE ( expr_list )",
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$3.codes", "$3.types"], s.write_args_code, name="write_args_code"),
        Rule("$$.errs", ["$3.types", "$3.errs"], s.write_errors, name="write_errors"),
    )
    b.production(
        "statement -> WRITELN ( expr_list )",
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$3.codes", "$3.types"], s.writeln_args_code, name="writeln_args_code"),
        Rule("$$.errs", ["$3.types", "$3.errs"], s.write_errors, name="write_errors"),
    )
    b.production(
        "statement -> WRITELN",
        Rule("$$.code", [], s.writeln_empty_code, name="writeln_empty_code"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "statement -> READ ( variable_list )",
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$3.addrs", "$3.types"], s.read_args_code, name="read_args_code"),
        Rule("$$.errs", ["$3.types", "$3.errs"], s.read_errors, name="read_errors"),
    )
    b.production(
        "statement -> READLN ( variable_list )",
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$3.addrs", "$3.types"], s.readln_args_code, name="readln_args_code"),
        Rule("$$.errs", ["$3.types", "$3.errs"], s.read_errors, name="read_errors"),
    )
    b.production(
        "statement ->",
        Rule("$$.code", [], s.empty_statement_code, name="empty_statement_code"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )

    # ----------------------------------------------------- variables (l-values)

    b.production(
        "variable -> IDENTIFIER",
        Rule("$$.addr", ["$$.env", "$1.string"], e.variable_address, name="variable_address"),
        Rule("$$.type", ["$$.env", "$1.string"], e.variable_type, name="variable_type"),
        Rule("$$.errs", ["$$.env", "$1.string"], e.variable_errors, name="variable_errors"),
    )
    b.production(
        "variable -> variable [ expression ]",
        cp("$1.env", "$$.env"),
        cp("$3.env", "$$.env"),
        Rule("$$.addr", ["$1.addr", "$1.type", "$3.code"], e.indexed_address,
             name="indexed_address"),
        Rule("$$.type", ["$1.type"], e.indexed_type, name="indexed_type"),
        Rule("$$.errs", ["$1.type", "$3.type", "$1.errs", "$3.errs"], e.indexed_errors,
             name="indexed_errors"),
    )
    b.production(
        "variable -> variable . IDENTIFIER",
        cp("$1.env", "$$.env"),
        Rule("$$.addr", ["$1.addr", "$1.type", "$3.string"], e.field_address_code,
             name="field_address_code"),
        Rule("$$.type", ["$1.type", "$3.string"], e.field_type_of, name="field_type_of"),
        Rule("$$.errs", ["$1.type", "$3.string", "$1.errs"], e.field_errors, name="field_errors"),
    )
    b.production(
        "variable_list -> variable_list , variable",
        cp("$1.env", "$$.env"),
        cp("$3.env", "$$.env"),
        Rule("$$.addrs", ["$1.addrs", "$3.addr"], h.append_item, name="append"),
        Rule("$$.types", ["$1.types", "$3.type"], h.append_item, name="append"),
        Rule("$$.errs", ["$1.errs", "$3.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "variable_list -> variable",
        cp("$1.env", "$$.env"),
        Rule("$$.addrs", ["$1.addr"], h.singleton, name="singleton"),
        Rule("$$.types", ["$1.type"], h.singleton, name="singleton"),
        cp("$$.errs", "$1.errs"),
    )

    # -------------------------------------------------------------- expressions

    b.production(
        "expr_list -> expr_list , expression",
        cp("$1.env", "$$.env"),
        cp("$3.env", "$$.env"),
        Rule("$$.codes", ["$1.codes", "$3.code"], h.append_item, name="append"),
        Rule("$$.types", ["$1.types", "$3.type"], h.append_item, name="append"),
        Rule("$$.addrs", ["$1.addrs", "$3.addr"], h.append_item, name="append"),
        Rule("$$.errs", ["$1.errs", "$3.errs"], h.merge_errors, name="merge_errors"),
    )
    b.production(
        "expr_list -> expression",
        cp("$1.env", "$$.env"),
        Rule("$$.codes", ["$1.code"], h.singleton, name="singleton"),
        Rule("$$.types", ["$1.type"], h.singleton, name="singleton"),
        Rule("$$.addrs", ["$1.addr"], h.singleton, name="singleton"),
        cp("$$.errs", "$1.errs"),
    )

    b.production(
        "expression -> simple_expression",
        cp("$1.env", "$$.env"),
        cp("$$.code", "$1.code"),
        cp("$$.type", "$1.type"),
        cp("$$.addr", "$1.addr"),
        cp("$$.errs", "$1.errs"),
    )
    for operator, code_function in (
        ("=", e.equal_code),
        ("<>", e.not_equal_code),
        ("<", e.less_code),
        ("<=", e.less_equal_code),
        (">", e.greater_code),
        (">=", e.greater_equal_code),
    ):
        b.production(
            f"expression -> simple_expression {operator} simple_expression",
            cp("$1.env", "$$.env"),
            cp("$3.env", "$$.env"),
            Rule("$$.code", ["$1.code", "$3.code"], code_function, name=code_function.__name__),
            Rule("$$.type", ["$1.type", "$3.type"], e.comparison_type, name="comparison_type"),
            Rule("$$.addr", [], e.no_address, name="no_address"),
            Rule("$$.errs", ["$1.type", "$3.type", "$1.errs", "$3.errs"],
                 e.comparison_errors, name="comparison_errors"),
        )

    b.production(
        "simple_expression -> term",
        cp("$1.env", "$$.env"),
        cp("$$.code", "$1.code"),
        cp("$$.type", "$1.type"),
        cp("$$.addr", "$1.addr"),
        cp("$$.errs", "$1.errs"),
    )
    for operator, code_function, type_function, errs_function in (
        ("+", e.add_code, e.arithmetic_type, e.arithmetic_errors),
        ("-", e.subtract_code, e.arithmetic_type, e.arithmetic_errors),
        ("OR", e.or_code, e.boolean_result, e.boolean_errors),
    ):
        b.production(
            f"simple_expression -> simple_expression {operator} term",
            cp("$1.env", "$$.env"),
            cp("$3.env", "$$.env"),
            Rule("$$.code", ["$1.code", "$3.code"], code_function, name=code_function.__name__),
            Rule("$$.type", ["$1.type", "$3.type"], type_function, name=type_function.__name__),
            Rule("$$.addr", [], e.no_address, name="no_address"),
            Rule("$$.errs", ["$1.type", "$3.type", "$1.errs", "$3.errs"], errs_function,
                 name=errs_function.__name__),
        )
    b.production(
        "simple_expression -> - term",
        cp("$2.env", "$$.env"),
        Rule("$$.code", ["$2.code"], e.negate_code, name="negate_code"),
        Rule("$$.type", ["$2.type", "$2.type"], e.arithmetic_type, name="arithmetic_type"),
        Rule("$$.addr", [], e.no_address, name="no_address"),
        Rule("$$.errs", ["$2.type", "$2.errs"], e.negate_errors, name="negate_errors"),
    )
    b.production(
        "simple_expression -> + term",
        cp("$2.env", "$$.env"),
        cp("$$.code", "$2.code"),
        cp("$$.type", "$2.type"),
        Rule("$$.addr", [], e.no_address, name="no_address"),
        cp("$$.errs", "$2.errs"),
    )

    b.production(
        "term -> factor",
        cp("$1.env", "$$.env"),
        cp("$$.code", "$1.code"),
        cp("$$.type", "$1.type"),
        cp("$$.addr", "$1.addr"),
        cp("$$.errs", "$1.errs"),
    )
    for operator, code_function, type_function, errs_function in (
        ("*", e.multiply_code, e.arithmetic_type, e.arithmetic_errors),
        ("DIV", e.divide_code, e.arithmetic_type, e.arithmetic_errors),
        ("MOD", e.modulo_code, e.arithmetic_type, e.arithmetic_errors),
        ("AND", e.and_code, e.boolean_result, e.boolean_errors),
    ):
        b.production(
            f"term -> term {operator} factor",
            cp("$1.env", "$$.env"),
            cp("$3.env", "$$.env"),
            Rule("$$.code", ["$1.code", "$3.code"], code_function, name=code_function.__name__),
            Rule("$$.type", ["$1.type", "$3.type"], type_function, name=type_function.__name__),
            Rule("$$.addr", [], e.no_address, name="no_address"),
            Rule("$$.errs", ["$1.type", "$3.type", "$1.errs", "$3.errs"], errs_function,
                 name=errs_function.__name__),
        )

    b.production(
        "factor -> NUMBER",
        Rule("$$.code", ["$1.string"], e.number_code, name="number_code"),
        Rule("$$.type", [], h.integer_type, name="integer_type"),
        Rule("$$.addr", [], e.no_address, name="no_address"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "factor -> STRINGLIT",
        Rule("$$.code", ["$1.string"], e.literal_code, name="literal_code"),
        Rule("$$.type", ["$1.string"], e.literal_type, name="literal_type"),
        Rule("$$.addr", [], e.no_address, name="no_address"),
        Rule("$$.errs", [], h.no_errors, name="no_errors"),
    )
    b.production(
        "factor -> variable",
        cp("$1.env", "$$.env"),
        Rule("$$.code", ["$$.env", "$1.addr", "$1.type"], e.value_of_variable,
             name="value_of_variable"),
        cp("$$.type", "$1.type"),
        cp("$$.addr", "$1.addr"),
        cp("$$.errs", "$1.errs"),
    )
    b.production(
        "factor -> IDENTIFIER ( expr_list )",
        cp("$3.env", "$$.env"),
        Rule("$$.code", ["$$.env", "$1.string", "$3.codes", "$3.addrs"],
             e.function_call_code, name="function_call_code"),
        Rule("$$.type", ["$$.env", "$1.string"], e.function_call_type, name="function_call_type"),
        Rule("$$.addr", [], e.no_address, name="no_address"),
        Rule("$$.errs", ["$$.env", "$1.string", "$3.types", "$3.addrs", "$3.errs"],
             e.function_call_errors, name="function_call_errors"),
    )
    b.production(
        "factor -> ( expression )",
        cp("$2.env", "$$.env"),
        cp("$$.code", "$2.code"),
        cp("$$.type", "$2.type"),
        cp("$$.addr", "$2.addr"),
        cp("$$.errs", "$2.errs"),
    )
    b.production(
        "factor -> NOT factor",
        cp("$2.env", "$$.env"),
        Rule("$$.code", ["$2.code"], e.not_code, name="not_code"),
        Rule("$$.type", ["$2.type", "$2.type"], e.boolean_result, name="boolean_result"),
        Rule("$$.addr", [], e.no_address, name="no_address"),
        Rule("$$.errs", ["$2.type", "$2.errs"], e.not_errors, name="not_errors"),
    )

    return b.build(start="program")
