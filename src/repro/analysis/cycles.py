"""Circularity test.

As in the paper, "we restrict our attention to grammars for which the resulting
dependency graph is acyclic".  The test below is the standard conservative one based on
induced dependencies (the same relation the ordered-evaluation analysis uses): if any
production graph augmented with the induced dependency relation of its nonterminal
occurrences has a cycle, the grammar is rejected.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.dependencies import (
    DependencyGraph,
    augmented_production_graphs,
    induced_dependencies,
)
from repro.grammar.grammar import AttributeGrammar, GrammarError


class CircularGrammarError(GrammarError):
    """Raised when a grammar's attribute dependencies can form a cycle."""

    def __init__(self, production_label: str, cycle: List[object]):
        path = " -> ".join(repr(v) for v in cycle)
        super().__init__(
            f"attribute dependencies can be circular in production {production_label!r}: {path}"
        )
        self.production_label = production_label
        self.cycle = cycle


def check_noncircular(
    grammar: AttributeGrammar,
    ids: Optional[Dict[str, DependencyGraph]] = None,
) -> Dict[str, DependencyGraph]:
    """Verify the grammar is (conservatively) non-circular.

    Returns the induced dependency relation so callers can reuse it (the ordered
    analysis needs the same information).  Raises :class:`CircularGrammarError` on
    failure.
    """
    if ids is None:
        ids = induced_dependencies(grammar)
    for production, graph in zip(
        grammar.productions, augmented_production_graphs(grammar, ids).values()
    ):
        cycle = graph.find_cycle()
        if cycle:
            raise CircularGrammarError(production.label, cycle)
    return ids
