"""Precompiled per-grammar evaluation tables.

The evaluators' inner loops — building an instance dependency graph and firing
semantic rules — spend most of their time on lookups that depend only on the grammar:
scanning ``production.rules`` for the rule defining an occurrence (a linear scan with
``AttributeRef`` equality per probe), resolving ``AttributeRef`` objects against tree
nodes, and re-deriving each attribute's kind and priority from declaration objects.
All of that is precompiled here, once per grammar per process, into index-keyed
tables: rules are addressed by ``(position, name)`` pairs or by their index in the
production, and every rule carries flat ``(position, name, is_terminal)`` fetch specs
so argument gathering is an integer child-index walk plus a dict probe on the node's
attribute store.

The tables are pure derived data — they reference the grammar's own rule and symbol
objects, never copies — and are cached weakly per grammar, so a pooled worker builds
them exactly once per shipped grammar bundle, right next to the cached
:class:`~repro.analysis.visit_sequences.OrderedEvaluationPlan`.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional, Tuple

from repro.grammar.attributes import AttributeKind
from repro.grammar.grammar import AttributeGrammar
from repro.grammar.productions import SemanticRule
from repro.grammar.symbols import Nonterminal, Terminal
from repro.tree.node import ParseTreeNode


class RuleTable:
    """Precompiled form of one semantic rule of one production.

    ``arg_fetch`` holds one ``(position, name, is_terminal)`` triple per rule
    argument, in call order; ``nonterminal_args`` is the subset that creates
    dependency edges (terminal arguments are always available).  ``function`` and
    ``cost`` are hoisted off the rule so the firing loop touches one object.
    """

    __slots__ = (
        "rule",
        "index",
        "function",
        "cost",
        "target_position",
        "target_name",
        "arg_fetch",
        "nonterminal_args",
    )

    def __init__(self, rule: SemanticRule, production, index: int = 0) -> None:
        self.rule = rule
        # Position of the rule within ``production.rules`` — the shared indexing of
        # the visit sequences and the plan-compiled per-rule functions.
        self.index = index
        self.function = rule.function
        self.cost = rule.cost
        self.target_position = rule.target.position
        self.target_name = rule.target.name
        fetch: List[Tuple[int, str, bool]] = []
        nonterminal_args: List[Tuple[int, str]] = []
        for ref in rule.arguments:
            symbol = production.symbol_at(ref.position)
            is_terminal = isinstance(symbol, Terminal)
            fetch.append((ref.position, ref.name, is_terminal))
            if not is_terminal:
                nonterminal_args.append((ref.position, ref.name))
        self.arg_fetch = tuple(fetch)
        self.nonterminal_args = tuple(nonterminal_args)

    def fetch_arguments(self, node: ParseTreeNode) -> List[Any]:
        """Gather argument values relative to the rule-owning ``node``.

        The scheduler guarantees availability before firing; a missing value
        surfaces as ``KeyError`` exactly like ``ParseTreeNode.get_attribute``.
        """
        values: List[Any] = []
        children = node.children
        for position, name, is_terminal in self.arg_fetch:
            source = node if position == 0 else children[position - 1]
            if is_terminal:
                values.append(source.token_value)
            else:
                values.append(source.attributes[name])
        return values


class ProductionTables:
    """All precompiled rules of one production, by index and by target occurrence."""

    __slots__ = ("rules", "by_target")

    def __init__(self, production) -> None:
        self.rules: Tuple[RuleTable, ...] = tuple(
            RuleTable(rule, production, index)
            for index, rule in enumerate(production.rules)
        )
        self.by_target: Dict[Tuple[int, str], RuleTable] = {
            (table.target_position, table.target_name): table for table in self.rules
        }


class SymbolTables:
    """Flat attribute metadata of one nonterminal: ``(name, is_synthesized, priority)``."""

    __slots__ = ("attrs", "priority_of")

    def __init__(self, nonterminal: Nonterminal) -> None:
        self.attrs: Tuple[Tuple[str, bool, bool], ...] = tuple(
            (decl.name, decl.kind is AttributeKind.SYNTHESIZED, decl.priority)
            for decl in nonterminal.attributes.values()
        )
        self.priority_of: Dict[str, bool] = {
            name: priority for name, _synth, priority in self.attrs
        }


class EvaluationTables:
    """The full precompiled table set of one grammar."""

    __slots__ = ("productions", "nonterminals")

    def __init__(self, grammar: AttributeGrammar) -> None:
        self.productions: List[ProductionTables] = [
            ProductionTables(production) for production in grammar.productions
        ]
        self.nonterminals: Dict[str, SymbolTables] = {
            name: SymbolTables(nonterminal)
            for name, nonterminal in grammar.nonterminals.items()
        }


_tables_cache: "weakref.WeakKeyDictionary[AttributeGrammar, EvaluationTables]" = (
    weakref.WeakKeyDictionary()
)


def evaluation_tables(grammar: AttributeGrammar) -> EvaluationTables:
    """The cached :class:`EvaluationTables` of ``grammar`` (built on first use)."""
    tables = _tables_cache.get(grammar)
    if tables is None:
        tables = EvaluationTables(grammar)
        _tables_cache[grammar] = tables
    return tables
