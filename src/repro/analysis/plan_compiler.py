"""Plan-compiled evaluators: per-grammar generated Python, no table dispatch.

The precompiled tables (:mod:`repro.analysis.tables`) already reduced rule firing to
index walks, but every firing still pays the interpretive overhead of the generic
loops: build an argument list by iterating ``arg_fetch`` triples, branch per argument
on ``position``/``is_terminal``, apply the function, resolve the target, branch per
instruction object in the visit driver.  All of those decisions depend only on the
grammar, so this module takes the final step and *compiles them away*: for each
grammar it generates specialized Python source — one straight-line function per
semantic rule and one generator per ``(production, visit)`` segment — and ``exec``\\ s
it once per process.  At run time a rule firing is a single positional call with the
argument fetches inlined (``node.attributes['env']``, ``_ch[0].token_value``) and a
static visit is a generator that interleaves inlined rule firings with
``yield child, visit_number`` hand-offs to the iterative driver.

Two independent products, both cached weakly per grammar (right next to the tables
and the ordered-evaluation plan):

* :func:`compiled_rules` — per-production tuples of ``compute(node) -> value``
  functions, indexed like ``ProductionTables.rules``.  Used by the dynamic and
  combined schedulers in place of ``table.function(*table.fetch_arguments(node))``.
  A missing argument raises ``KeyError`` exactly like ``fetch_arguments`` does.
* :func:`compiled_segments` — per-production tuples of per-visit generator
  functions ``segment(node, statistics)``.  Used by the static evaluator's visit
  driver in place of interpreting ``EvalInstruction``/``VisitChildInstruction``
  objects.  Statistics accounting is emitted so that the result is bit-identical to
  the table path: ``rules_evaluated`` is batched per contiguous run of rule firings
  (integer addition is exact), while ``rule_extra_cost`` keeps one ``+=`` per
  non-zero-cost rule in firing order (float accumulation order is preserved; adding
  ``0.0`` to the non-negative accumulator is the identity, so zero-cost rules are
  skipped).  Evaluation-order violations raise the same ``EvaluationError`` message
  the table path produces, byte for byte.

The generated code calls the grammar's own semantic-rule functions — nothing is
re-implemented — so the table path remains the bit-identical parity reference, gated
by ``CompilerConfiguration(use_compiled_plans=False)`` exactly as
``use_precompiled_tables=False`` keeps the seed dict path alive.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Tuple

from repro.analysis.tables import evaluation_tables
from repro.analysis.visit_sequences import (
    EvalInstruction,
    OrderedEvaluationPlan,
    VisitChildInstruction,
)
from repro.grammar.grammar import AttributeGrammar

#: Compiled ``compute(node) -> value`` functions, one tuple per production,
#: indexed like ``ProductionTables.rules``.
CompiledRules = Tuple[Tuple[Callable[..., Any], ...], ...]

#: Compiled segment generators, one tuple per production, one entry per LHS visit.
CompiledSegments = Tuple[Tuple[Callable[..., Any], ...], ...]


# ------------------------------------------------------------------ source emission


def _fetch_expression(
    position: int, name: str, is_terminal: bool, self_expr: str
) -> str:
    """The inlined form of one ``(position, name, is_terminal)`` fetch triple."""
    if position == 0:
        return f"{self_expr}[{name!r}]"
    if is_terminal:
        return f"_ch[{position - 1}].token_value"
    return f"_ch[{position - 1}].attributes[{name!r}]"


def rules_source(grammar: AttributeGrammar) -> Tuple[str, Dict[str, Any]]:
    """Generated source + exec namespace for the per-rule compute functions.

    Each function mirrors ``table.function(*table.fetch_arguments(node))``: the
    argument fetches are inlined in call order and a missing attribute raises the
    same ``KeyError`` the generic fetch loop raises.
    """
    tables = evaluation_tables(grammar)
    lines: List[str] = []
    namespace: Dict[str, Any] = {}
    for production_index, production_tables in enumerate(tables.productions):
        for rule_index, table in enumerate(production_tables.rules):
            function_name = f"_f{production_index}_{rule_index}"
            namespace[function_name] = table.function
            arguments = [
                _fetch_expression(position, name, is_terminal, "node.attributes")
                for position, name, is_terminal in table.arg_fetch
            ]
            lines.append(f"def _c{production_index}_{rule_index}(node):")
            if any(position > 0 for position, _name, _terminal in table.arg_fetch):
                lines.append("    _ch = node.children")
            lines.append(f"    return {function_name}({', '.join(arguments)})")
    return "\n".join(lines) + "\n", namespace


def segments_source(
    grammar: AttributeGrammar, plan: OrderedEvaluationPlan
) -> Tuple[str, Dict[str, Any]]:
    """Generated source + exec namespace for the per-(production, visit) segments.

    Every segment compiles to one generator function ``(node, _s)``: rule firings
    are inlined statements (including the target store — ``set_attribute`` is a
    plain dict assignment), child visits are ``yield child, visit_number``
    hand-offs, and statistics updates are emitted to be bit-identical to the table
    path (see the module docstring for the float-ordering argument).
    """
    # Imported here, not at module level: the evaluation package imports this module
    # through the evaluators, so a top-level import would be circular.
    from repro.evaluation.base import EvaluationError

    tables = evaluation_tables(grammar)
    lines: List[str] = []
    namespace: Dict[str, Any] = {"_err": EvaluationError}

    for production in grammar.productions:
        production_index = production.index
        production_tables = tables.productions[production_index]
        sequence = plan.sequences[production_index]
        for visit_index, segment in enumerate(sequence.segments):
            uses_attributes = False
            uses_children = False
            for instruction in segment:
                if isinstance(instruction, VisitChildInstruction):
                    uses_children = True
                    continue
                table = production_tables.rules[instruction.rule_index]
                if table.target_position == 0:
                    uses_attributes = True
                else:
                    uses_children = True
                for position, _name, _terminal in table.arg_fetch:
                    if position == 0:
                        uses_attributes = True
                    else:
                        uses_children = True

            lines.append(f"def _s{production_index}_{visit_index + 1}(node, _s):")
            if uses_attributes:
                lines.append("    _a = node.attributes")
            if uses_children:
                lines.append("    _ch = node.children")

            pending_rules = 0
            pending_costs: List[Any] = []
            yielded = False

            def flush() -> None:
                nonlocal pending_rules
                if not pending_rules:
                    return
                lines.append(f"    _s.rules_evaluated += {pending_rules}")
                for cost in pending_costs:
                    lines.append(f"    _s.rule_extra_cost += {cost!r}")
                pending_rules = 0
                pending_costs.clear()

            for instruction in segment:
                if isinstance(instruction, VisitChildInstruction):
                    flush()
                    yielded = True
                    lines.append(
                        f"    yield _ch[{instruction.child_position - 1}], "
                        f"{instruction.visit_number}"
                    )
                    continue
                assert isinstance(instruction, EvalInstruction)
                rule_index = instruction.rule_index
                table = production_tables.rules[rule_index]
                function_name = f"_f{production_index}_{rule_index}"
                namespace[function_name] = table.function
                target = _fetch_expression(
                    table.target_position, table.target_name, False, "_a"
                )
                arguments = [
                    _fetch_expression(position, name, is_terminal, "_a")
                    for position, name, is_terminal in table.arg_fetch
                ]
                fetches_attributes = any(
                    not is_terminal for _p, _n, is_terminal in table.arg_fetch
                )
                if fetches_attributes:
                    # Fetch into locals first so a missing argument raises the table
                    # path's exact order-violation EvaluationError, while errors from
                    # the semantic function itself still propagate unwrapped.
                    prefix = (
                        f"static evaluation order violation at "
                        f"{production.label!r}: {table.rule.target!r} argument "
                        f"not yet available "
                    )
                    locals_ = [f"_x{i}" for i in range(len(arguments))]
                    lines.append("    try:")
                    lines.append(
                        "        "
                        + "; ".join(
                            f"{local} = {expr}"
                            for local, expr in zip(locals_, arguments)
                        )
                    )
                    lines.append("    except KeyError as _e:")
                    lines.append(
                        f"        raise _err({prefix!r} + '(%s)' % (_e,)) from None"
                    )
                    call = f"{function_name}({', '.join(locals_)})"
                else:
                    call = f"{function_name}({', '.join(arguments)})"
                lines.append(f"    {target} = {call}")
                pending_rules += 1
                if table.cost:
                    pending_costs.append(table.cost)

            flush()
            if not yielded:
                lines.append("    yield from ()")
    return "\n".join(lines) + "\n", namespace


# ----------------------------------------------------------------------- compiling


def _execute(source: str, namespace: Dict[str, Any], filename: str) -> Dict[str, Any]:
    code = compile(source, filename, "exec")
    exec(code, namespace)  # noqa: S102 — source is generated from the grammar itself
    return namespace


_rules_cache: "weakref.WeakKeyDictionary[AttributeGrammar, CompiledRules]" = (
    weakref.WeakKeyDictionary()
)
# Segments depend on the plan as well as the grammar; the entry stores a weak
# reference to the plan it was built from (a strong one would pin the grammar via
# ``plan.grammar`` and defeat the weak keying) and rebuilds on a different plan.
_segments_cache: (
    "weakref.WeakKeyDictionary[AttributeGrammar, Tuple[Any, CompiledSegments]]"
) = weakref.WeakKeyDictionary()


def compiled_rules(grammar: AttributeGrammar) -> CompiledRules:
    """The cached compiled ``compute`` functions of ``grammar`` (built on first use)."""
    compiled = _rules_cache.get(grammar)
    if compiled is None:
        source, namespace = rules_source(grammar)
        executed = _execute(
            source, namespace, f"<compiled-rules:{id(grammar):#x}>"
        )
        tables = evaluation_tables(grammar)
        compiled = tuple(
            tuple(
                executed[f"_c{production_index}_{rule_index}"]
                for rule_index in range(len(production_tables.rules))
            )
            for production_index, production_tables in enumerate(tables.productions)
        )
        _rules_cache[grammar] = compiled
    return compiled


def compiled_segments(
    grammar: AttributeGrammar, plan: OrderedEvaluationPlan
) -> CompiledSegments:
    """The cached compiled visit segments of ``grammar`` under ``plan``."""
    entry = _segments_cache.get(grammar)
    if entry is not None:
        plan_ref, compiled = entry
        if plan_ref() is plan:
            return compiled
    source, namespace = segments_source(grammar, plan)
    executed = _execute(source, namespace, f"<compiled-plan:{id(grammar):#x}>")
    compiled = tuple(
        tuple(
            executed[f"_s{production.index}_{visit_index + 1}"]
            for visit_index in range(len(plan.sequences[production.index].segments))
        )
        for production in grammar.productions
    )
    _segments_cache[grammar] = (weakref.ref(plan), compiled)
    return compiled
