"""Grammar-time analysis: dependency graphs, circularity, ordered evaluation.

The static evaluator used by the paper is Kastens' *ordered attribute grammar* (OAG)
evaluator: a grammar-time analysis computes, for every nonterminal, a total order on its
attributes (grouped into alternating inherited/synthesized *visit* sets) and, for every
production, a *visit sequence* — a fixed schedule of semantic-rule evaluations and child
visits.  Evaluation then needs no runtime dependency analysis at all.

This package implements:

* :mod:`repro.analysis.dependencies` — production-local dependency graphs and the
  induced (transitive) dependencies among the attributes of each nonterminal;
* :mod:`repro.analysis.cycles` — the non-circularity test over induced dependencies;
* :mod:`repro.analysis.ordered` — attribute partitions and visit numbers;
* :mod:`repro.analysis.visit_sequences` — per-production visit sequences consumed by the
  static and combined evaluators;
* :mod:`repro.analysis.tables` — precompiled per-grammar rule/argument index tables
  (cached alongside the evaluation plan) that the evaluators' hot loops run on.
"""

from repro.analysis.dependencies import (
    DependencyGraph,
    production_dependency_graph,
    induced_dependencies,
)
from repro.analysis.cycles import CircularGrammarError, check_noncircular
from repro.analysis.ordered import (
    NotOrderedError,
    AttributePartition,
    compute_partitions,
)
from repro.analysis.tables import (
    EvaluationTables,
    ProductionTables,
    RuleTable,
    SymbolTables,
    evaluation_tables,
)
from repro.analysis.visit_sequences import (
    VisitInstruction,
    EvalInstruction,
    VisitChildInstruction,
    VisitSequence,
    OrderedEvaluationPlan,
    build_evaluation_plan,
)

__all__ = [
    "DependencyGraph",
    "production_dependency_graph",
    "induced_dependencies",
    "CircularGrammarError",
    "check_noncircular",
    "NotOrderedError",
    "AttributePartition",
    "compute_partitions",
    "VisitInstruction",
    "EvalInstruction",
    "VisitChildInstruction",
    "VisitSequence",
    "OrderedEvaluationPlan",
    "build_evaluation_plan",
    "EvaluationTables",
    "ProductionTables",
    "RuleTable",
    "SymbolTables",
    "evaluation_tables",
]
