"""Visit-sequence construction for the static (ordered) evaluator.

For every production we compute a schedule of instructions, partitioned into one
*segment* per visit of the left-hand-side nonterminal.  When the static evaluator is
asked to perform visit ``v`` of a node derived by production ``p``, it executes segment
``v`` of ``p``'s visit sequence.  Instructions are:

* :class:`EvalInstruction` — evaluate one semantic rule and store the result;
* :class:`VisitChildInstruction` — recursively perform visit ``v'`` of child ``i``.

The schedule is obtained by topologically sorting a small task graph whose vertices are
rule evaluations, child visits and segment boundaries, with edges expressing attribute
availability.  If the task graph is cyclic the production cannot be scheduled with the
partitions at hand and the grammar is rejected as *not ordered*
(:class:`repro.analysis.ordered.NotOrderedError`); the dynamic evaluator remains
available for such grammars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dependencies import DependencyGraph, induced_dependencies
from repro.analysis.ordered import AttributePartition, NotOrderedError, compute_partitions
from repro.grammar.attributes import AttributeKind
from repro.grammar.grammar import AttributeGrammar
from repro.grammar.productions import AttributeRef, Production, SemanticRule
from repro.grammar.symbols import Nonterminal, Terminal


@dataclass(frozen=True)
class EvalInstruction:
    """Evaluate one semantic rule of the production."""

    rule_index: int

    def describe(self, production: Production) -> str:
        rule = production.rules[self.rule_index]
        return f"eval {rule.target!r} := {rule.name}"


@dataclass(frozen=True)
class VisitChildInstruction:
    """Perform visit ``visit_number`` of the child at ``child_position`` (1-based)."""

    child_position: int
    visit_number: int

    def describe(self, production: Production) -> str:
        child = production.symbol_at(self.child_position)
        return f"visit {child.name}[{self.child_position}] #{self.visit_number}"


VisitInstruction = (EvalInstruction, VisitChildInstruction)


@dataclass
class VisitSequence:
    """The per-production schedule: one instruction list per LHS visit."""

    production_index: int
    segments: List[List[object]] = field(default_factory=list)

    @property
    def visit_count(self) -> int:
        return len(self.segments)

    def segment(self, visit_number: int) -> List[object]:
        return self.segments[visit_number - 1]

    def describe(self, production: Production) -> str:
        lines = [f"visit sequence for {production.label}:"]
        for number, segment in enumerate(self.segments, start=1):
            lines.append(f"  visit {number}:")
            for instruction in segment:
                lines.append(f"    {instruction.describe(production)}")
        return "\n".join(lines)


@dataclass
class OrderedEvaluationPlan:
    """Everything the static and combined evaluators need at run time."""

    grammar: AttributeGrammar
    partitions: Dict[str, AttributePartition]
    sequences: Dict[int, VisitSequence]
    induced: Dict[str, DependencyGraph]

    def partition_of(self, nonterminal_name: str) -> AttributePartition:
        return self.partitions[nonterminal_name]

    def sequence_of(self, production: Production) -> VisitSequence:
        return self.sequences[production.index]

    def visit_count(self, nonterminal_name: str) -> int:
        return self.partitions[nonterminal_name].visit_count


# ---------------------------------------------------------------------------- tasks

_BOUNDARY = "boundary"
_EVAL = "eval"
_VISIT = "visit"


def build_evaluation_plan(
    grammar: AttributeGrammar,
    partitions: Optional[Dict[str, AttributePartition]] = None,
    ids: Optional[Dict[str, DependencyGraph]] = None,
) -> OrderedEvaluationPlan:
    """Build partitions and visit sequences for every production of ``grammar``."""
    if ids is None:
        ids = induced_dependencies(grammar)
    if partitions is None:
        partitions = compute_partitions(grammar, ids)
    sequences: Dict[int, VisitSequence] = {}
    for production in grammar.productions:
        sequences[production.index] = _build_sequence(production, partitions)
    return OrderedEvaluationPlan(grammar, partitions, sequences, ids)


def _producer_task(
    production: Production,
    partitions: Dict[str, AttributePartition],
    rule_for: Dict[AttributeRef, int],
    ref: AttributeRef,
) -> Optional[Tuple]:
    """The task whose completion makes occurrence ``ref`` available, or ``None``."""
    symbol = production.symbol_at(ref.position)
    if isinstance(symbol, Terminal):
        return None
    assert isinstance(symbol, Nonterminal)
    decl = symbol.attribute(ref.name)
    if ref.position == 0:
        if decl.kind is AttributeKind.INHERITED:
            visit = partitions[symbol.name].visit_of(ref.name)
            if visit <= 1:
                return None
            return (_BOUNDARY, visit - 1)
        return (_EVAL, rule_for[ref])
    if decl.kind is AttributeKind.SYNTHESIZED:
        visit = partitions[symbol.name].visit_of(ref.name)
        return (_VISIT, ref.position, visit)
    return (_EVAL, rule_for[ref])


def _build_sequence(
    production: Production, partitions: Dict[str, AttributePartition]
) -> VisitSequence:
    lhs_partition = partitions[production.lhs.name]
    lhs_visits = max(1, lhs_partition.visit_count)

    rule_for: Dict[AttributeRef, int] = {
        rule.target: index for index, rule in enumerate(production.rules)
    }

    graph = DependencyGraph()
    # Boundary chain.
    for visit in range(1, lhs_visits + 1):
        graph.add_vertex((_BOUNDARY, visit))
        if visit > 1:
            graph.add_edge((_BOUNDARY, visit - 1), (_BOUNDARY, visit))
    # Child visit chains.
    for position in production.nonterminal_positions():
        child = production.symbol_at(position)
        assert isinstance(child, Nonterminal)
        child_visits = max(1, partitions[child.name].visit_count)
        for visit in range(1, child_visits + 1):
            graph.add_vertex((_VISIT, position, visit))
            if visit > 1:
                graph.add_edge((_VISIT, position, visit - 1), (_VISIT, position, visit))
    # Rule evaluations.
    for index, rule in enumerate(production.rules):
        task = (_EVAL, index)
        graph.add_vertex(task)
        for argument in rule.arguments:
            producer = _producer_task(production, partitions, rule_for, argument)
            if producer is not None:
                graph.add_edge(producer, task)
        target_symbol = production.symbol_at(rule.target.position)
        assert isinstance(target_symbol, Nonterminal)
        decl = target_symbol.attribute(rule.target.name)
        if rule.target.position == 0:
            # LHS synthesized attribute: pin the evaluation into its visit's segment.
            visit = lhs_partition.visit_of(rule.target.name)
            if visit > 1:
                graph.add_edge((_BOUNDARY, visit - 1), task)
            graph.add_edge(task, (_BOUNDARY, visit))
        else:
            # Child inherited attribute: must be ready before the corresponding visit.
            child_partition = partitions[target_symbol.name]
            visit = child_partition.visit_of(rule.target.name)
            graph.add_edge(task, (_VISIT, rule.target.position, visit))

    try:
        order = graph.topological_order()
    except ValueError:
        raise NotOrderedError(
            f"production {production.label!r} cannot be scheduled with the computed "
            "attribute partitions; the grammar is not ordered (use the dynamic evaluator)"
        ) from None

    segments: List[List[object]] = [[] for _ in range(lhs_visits)]
    current = 0
    for task in order:
        kind = task[0]
        if kind == _BOUNDARY:
            # After boundary v, subsequent tasks belong to segment v+1 (0-based index v);
            # anything after the final boundary is folded into the last segment.
            current = task[1]
            continue
        segment_index = min(current, lhs_visits - 1)
        if kind == _EVAL:
            segments[segment_index].append(EvalInstruction(task[1]))
        else:
            segments[segment_index].append(
                VisitChildInstruction(task[1], task[2])
            )
    return VisitSequence(production.index, segments)
