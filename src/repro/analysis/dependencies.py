"""Dependency graphs over attribute occurrences and attributes.

Two levels of dependency information are computed from a grammar:

* the *production-local* graph ``DP(p)``: for each production, an edge from occurrence
  ``a`` to occurrence ``b`` whenever a semantic rule of ``p`` computes ``b`` from ``a``
  (edges point from prerequisite to dependent, i.e. in evaluation order);
* the *induced* relation ``IDS(X)``: for each nonterminal ``X``, the transitive
  dependencies among the attributes of ``X`` that can arise in any parse tree.  This is
  the classical fixpoint over all productions, and is what the combined evaluator enters
  into its dynamic graph for statically evaluated subtree roots ("the transitive
  dependencies between the child's attributes as precomputed by the static evaluator
  generator").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.grammar.grammar import AttributeGrammar
from repro.grammar.productions import AttributeRef, Production
from repro.grammar.symbols import Nonterminal


class DependencyGraph:
    """A small directed-graph helper with hashable vertices.

    Edges point from prerequisite to dependent: an edge ``a -> b`` means ``a`` must be
    evaluated before ``b``.
    """

    def __init__(self):
        self._successors: Dict[object, Set[object]] = {}
        self._predecessors: Dict[object, Set[object]] = {}

    def add_vertex(self, vertex) -> None:
        self._successors.setdefault(vertex, set())
        self._predecessors.setdefault(vertex, set())

    def add_edge(self, source, target) -> bool:
        """Add an edge, returning ``True`` if it was not already present."""
        self.add_vertex(source)
        self.add_vertex(target)
        if target in self._successors[source]:
            return False
        self._successors[source].add(target)
        self._predecessors[target].add(source)
        return True

    def has_edge(self, source, target) -> bool:
        return target in self._successors.get(source, ())

    def vertices(self) -> Tuple:
        return tuple(self._successors)

    def successors(self, vertex) -> FrozenSet:
        return frozenset(self._successors.get(vertex, ()))

    def predecessors(self, vertex) -> FrozenSet:
        return frozenset(self._predecessors.get(vertex, ()))

    def edges(self) -> Tuple[Tuple[object, object], ...]:
        return tuple(
            (source, target)
            for source, targets in self._successors.items()
            for target in targets
        )

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._successors.values())

    def transitive_closure(self) -> "DependencyGraph":
        """Return a new graph containing an edge for every nonempty path."""
        closure = DependencyGraph()
        for vertex in self._successors:
            closure.add_vertex(vertex)
            # Breadth-first reachability from each vertex.
            seen: Set[object] = set()
            frontier = list(self._successors[vertex])
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                closure.add_edge(vertex, node)
                frontier.extend(self._successors.get(node, ()))
        return closure

    def topological_order(self) -> List[object]:
        """Kahn topological sort; raises ``ValueError`` if the graph has a cycle."""
        in_degree = {v: len(self._predecessors[v]) for v in self._successors}
        ready = sorted(
            (v for v, d in in_degree.items() if d == 0), key=repr
        )
        order: List[object] = []
        while ready:
            vertex = ready.pop()
            order.append(vertex)
            for successor in sorted(self._successors[vertex], key=repr):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._successors):
            raise ValueError("dependency graph contains a cycle")
        return order

    def find_cycle(self) -> List[object]:
        """Return one cycle as a list of vertices, or an empty list if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {v: WHITE for v in self._successors}
        parent: Dict[object, object] = {}

        for start in self._successors:
            if color[start] != WHITE:
                continue
            stack = [(start, iter(sorted(self._successors[start], key=repr)))]
            color[start] = GRAY
            while stack:
                vertex, iterator = stack[-1]
                advanced = False
                for successor in iterator:
                    if color[successor] == WHITE:
                        color[successor] = GRAY
                        parent[successor] = vertex
                        stack.append(
                            (successor, iter(sorted(self._successors[successor], key=repr)))
                        )
                        advanced = True
                        break
                    if color[successor] == GRAY:
                        # Found a back edge; reconstruct the cycle.
                        cycle = [successor, vertex]
                        node = vertex
                        while node != successor and node in parent:
                            node = parent[node]
                            cycle.append(node)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[vertex] = BLACK
                    stack.pop()
        return []


def production_dependency_graph(production: Production) -> DependencyGraph:
    """The production-local dependency graph DP(p) over attribute occurrences."""
    graph = DependencyGraph()
    for ref in production.defined_occurrences():
        graph.add_vertex(ref)
    for ref in production.used_occurrences():
        graph.add_vertex(ref)
    for rule in production.rules:
        for argument in rule.arguments:
            graph.add_edge(argument, rule.target)
    return graph


def induced_dependencies(
    grammar: AttributeGrammar,
) -> Dict[str, DependencyGraph]:
    """Compute the induced dependency relation IDS(X) for every nonterminal X.

    The result maps nonterminal name to a graph whose vertices are attribute names of
    that nonterminal and whose edge ``a -> b`` means that in some parse tree the instance
    of ``b`` at a node labelled ``X`` can (transitively) depend on the instance of ``a``
    at the same node.

    The computation is the standard fixpoint: project the transitive closure of each
    production graph, augmented with the current IDS edges of every nonterminal
    occurrence, onto each occurrence, and repeat until no new edges appear.  This is the
    same approximation Kastens' ordered evaluator uses (it can reject some non-circular
    grammars, but never accepts a circular one).
    """
    ids: Dict[str, DependencyGraph] = {}
    for name, nonterminal in grammar.nonterminals.items():
        graph = DependencyGraph()
        for attribute in nonterminal.attribute_names:
            graph.add_vertex(attribute)
        ids[name] = graph

    local_graphs = {p.index: production_dependency_graph(p) for p in grammar.productions}

    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            graph = _augmented_production_graph(production, local_graphs[production.index], ids)
            closure = graph.transitive_closure()
            for position in (0, *production.nonterminal_positions()):
                symbol = production.symbol_at(position)
                assert isinstance(symbol, Nonterminal)
                target_ids = ids[symbol.name]
                for a in symbol.attribute_names:
                    for b in symbol.attribute_names:
                        if a == b:
                            continue
                        if closure.has_edge(AttributeRef(position, a), AttributeRef(position, b)):
                            if target_ids.add_edge(a, b):
                                changed = True
    return ids


def _augmented_production_graph(
    production: Production,
    local: DependencyGraph,
    ids: Dict[str, DependencyGraph],
) -> DependencyGraph:
    """DP(p) plus the current IDS edges instantiated at every nonterminal occurrence."""
    graph = DependencyGraph()
    for vertex in local.vertices():
        graph.add_vertex(vertex)
    for source, target in local.edges():
        graph.add_edge(source, target)
    for position in (0, *production.nonterminal_positions()):
        symbol = production.symbol_at(position)
        assert isinstance(symbol, Nonterminal)
        symbol_ids = ids[symbol.name]
        for a, b in symbol_ids.edges():
            graph.add_edge(AttributeRef(position, a), AttributeRef(position, b))
    return graph


def augmented_production_graphs(
    grammar: AttributeGrammar, ids: Dict[str, DependencyGraph]
) -> Dict[int, DependencyGraph]:
    """Per-production graphs DP(p) ∪ IDS instantiated at each occurrence.

    Used both by the circularity test and by visit-sequence construction.
    """
    graphs: Dict[int, DependencyGraph] = {}
    for production in grammar.productions:
        local = production_dependency_graph(production)
        graphs[production.index] = _augmented_production_graph(production, local, ids)
    return graphs
