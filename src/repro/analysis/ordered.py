"""Attribute partitions for ordered (Kastens-style) evaluation.

For every nonterminal ``X`` the induced dependency relation ``IDS(X)`` is used to split
the attributes of ``X`` into an alternating sequence of synthesized / inherited sets,
built backwards from the attributes nothing else depends on.  Reversing the construction
order gives the chronological order in which a static evaluator must see the attributes,
and grouping consecutive (inherited, synthesized) pairs gives the *visits*: during visit
``v`` the parent supplies the inherited attributes of the visit and the child's visit
procedure computes the synthesized attributes of the visit.

A grammar for which this construction gets stuck (no attribute of either kind can be
scheduled although attributes remain) is *not ordered*; such grammars must fall back to
the dynamic evaluator, exactly as the paper notes ("dynamic evaluators can handle a
wider variety of languages").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.dependencies import DependencyGraph, induced_dependencies
from repro.grammar.attributes import AttributeKind
from repro.grammar.grammar import AttributeGrammar, GrammarError
from repro.grammar.symbols import Nonterminal


class NotOrderedError(GrammarError):
    """Raised when a grammar is not evaluable with a static (ordered) evaluator."""


@dataclass(frozen=True)
class Visit:
    """One visit to a nonterminal: inherited attributes consumed, synthesized produced."""

    number: int
    inherited: FrozenSet[str]
    synthesized: FrozenSet[str]


@dataclass
class AttributePartition:
    """The visit structure of one nonterminal."""

    nonterminal: str
    visits: List[Visit] = field(default_factory=list)

    @property
    def visit_count(self) -> int:
        return len(self.visits)

    def visit_of(self, attribute: str) -> int:
        """The visit number during which ``attribute`` becomes available."""
        for visit in self.visits:
            if attribute in visit.inherited or attribute in visit.synthesized:
                return visit.number
        raise KeyError(
            f"attribute {attribute!r} is not in the partition of {self.nonterminal!r}"
        )

    def inherited_up_to(self, visit_number: int) -> FrozenSet[str]:
        """All inherited attributes needed before visit ``visit_number`` completes."""
        names = set()
        for visit in self.visits[:visit_number]:
            names.update(visit.inherited)
        return frozenset(names)

    def synthesized_of(self, visit_number: int) -> FrozenSet[str]:
        return self.visits[visit_number - 1].synthesized

    def inherited_of(self, visit_number: int) -> FrozenSet[str]:
        return self.visits[visit_number - 1].inherited

    def static_dependencies(self) -> Dict[str, FrozenSet[str]]:
        """For each synthesized attribute, the inherited attributes it waits for.

        This is the conservative transitive relation introduced by the static evaluation
        order: a synthesized attribute produced during visit ``v`` is treated as
        depending on every inherited attribute supplied at visit ``v`` or earlier.  The
        combined evaluator enters exactly these edges into its dynamic dependency graph
        for statically evaluated subtree roots.
        """
        result: Dict[str, FrozenSet[str]] = {}
        for visit in self.visits:
            needed = self.inherited_up_to(visit.number)
            for attribute in visit.synthesized:
                result[attribute] = needed
        return result


def compute_partitions(
    grammar: AttributeGrammar,
    ids: Optional[Dict[str, DependencyGraph]] = None,
) -> Dict[str, AttributePartition]:
    """Compute the attribute partition (visit structure) of every nonterminal."""
    if ids is None:
        ids = induced_dependencies(grammar)
    partitions: Dict[str, AttributePartition] = {}
    for name, nonterminal in grammar.nonterminals.items():
        partitions[name] = _partition_nonterminal(nonterminal, ids[name])
    return partitions


def _partition_nonterminal(
    nonterminal: Nonterminal, ids: DependencyGraph
) -> AttributePartition:
    kind_of = {
        name: decl.kind for name, decl in nonterminal.attributes.items()
    }
    remaining = set(kind_of)
    # Build sets backwards: sets[0] is evaluated last and must be synthesized.
    reversed_sets: List[Tuple[AttributeKind, FrozenSet[str]]] = []
    parity = AttributeKind.SYNTHESIZED

    while remaining:
        candidates = frozenset(
            attribute
            for attribute in remaining
            if kind_of[attribute] is parity
            and not (ids.successors(attribute) & (remaining - {attribute}))
        )
        if not candidates:
            other = (
                AttributeKind.INHERITED
                if parity is AttributeKind.SYNTHESIZED
                else AttributeKind.SYNTHESIZED
            )
            other_candidates = frozenset(
                attribute
                for attribute in remaining
                if kind_of[attribute] is other
                and not (ids.successors(attribute) & (remaining - {attribute}))
            )
            if not other_candidates:
                raise NotOrderedError(
                    f"nonterminal {nonterminal.name!r} is not orderable: attributes "
                    f"{sorted(remaining)} cannot be scheduled (fall back to the dynamic "
                    "evaluator)"
                )
        reversed_sets.append((parity, candidates))
        remaining -= candidates
        parity = (
            AttributeKind.INHERITED
            if parity is AttributeKind.SYNTHESIZED
            else AttributeKind.SYNTHESIZED
        )

    chronological = list(reversed(reversed_sets))
    # Drop empty sets at either end; they carry no scheduling information.
    while chronological and not chronological[0][1]:
        chronological.pop(0)
    while chronological and not chronological[-1][1]:
        chronological.pop()

    visits: List[Visit] = []
    index = 0
    while index < len(chronological):
        kind, attributes = chronological[index]
        inherited: FrozenSet[str] = frozenset()
        synthesized: FrozenSet[str] = frozenset()
        if kind is AttributeKind.INHERITED:
            inherited = attributes
            index += 1
            if index < len(chronological) and chronological[index][0] is AttributeKind.SYNTHESIZED:
                synthesized = chronological[index][1]
                index += 1
        else:
            synthesized = attributes
            index += 1
        visits.append(Visit(len(visits) + 1, inherited, synthesized))

    if not visits:
        # Attribute-less nonterminals still get one (empty) visit so that static
        # evaluation walks into their subtrees.
        visits.append(Visit(1, frozenset(), frozenset()))
    return AttributePartition(nonterminal.name, visits)
