"""The sockets backend: evaluator workers on other host processes, over TCP.

The fourth substrate.  Mailboxes live on a :class:`~repro.cluster.coordinator.
ClusterCoordinator` inside the driving process; evaluator jobs run on
:mod:`repro.cluster.worker` processes — separate Python interpreters reachable
only through a socket, on this machine or any other.  Every protocol message
round-trips through pickle inside a length-prefixed frame, so this substrate is
the real multi-host deployment shape of the paper's design: parser and string
librarian co-located with the caller, evaluators sharded across machines.

Two fleets are supported:

* **managed (default)** — the substrate spawns ``workers`` local worker
  processes (``python -m repro.cluster.worker --connect 127.0.0.1:<port>``) at
  start and replaces them if they die while work is pending.  This is the
  loopback cluster the tests, benchmarks and CI run.
* **external** — construct with ``manage_workers=False`` (or ``workers=0``),
  publish :attr:`SocketsSubstrate.address`, and start workers by hand on any
  hosts that can reach it; :meth:`SocketsSubstrate.wait_for_workers` blocks
  until the fleet is up.

Fault tolerance is the coordinator's: regions are consistent-hashed to worker
shards, worker death (connection loss or heartbeat expiry) reassigns orphaned
regions with exponential backoff, and ``speculate_after`` enables speculative
re-execution of stragglers.  Deterministic replay plus duplicate-output
suppression make a compile's result byte-identical whether or not a worker was
killed halfway through — see :mod:`repro.cluster.coordinator`.

Unlike the processes substrate this needs no ``fork`` start method: workers are
fresh interpreters, so the sockets substrate also runs where only ``spawn`` is
available.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    Mailbox,
    Substrate,
    WorkerJob,
    apply_send_faults,
    blocking_receive,
    drive,
)
from repro.cluster.coordinator import ClusterCoordinator, ClusterMailbox, ClusterStats
from repro.faults import plan as _faults


def _worker_environment() -> Dict[str, str]:
    """Environment for a spawned local worker: this repro importable, nothing else."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    environment = dict(os.environ)
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return environment


class SocketsSubstrate(Substrate):
    """A persistent compile cluster reached over TCP (loopback or real hosts)."""

    name = "sockets"

    #: Default bound on blocking receives (seconds) when none is configured.
    DEFAULT_RECEIVE_TIMEOUT = 120.0

    def __init__(
        self,
        workers: int = 0,
        receive_timeout: Optional[float] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        manage_workers: bool = True,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 15.0,
        max_attempts: int = 3,
        retry_backoff: float = 0.05,
        speculate_after: Optional[float] = None,
        job_timeout: Optional[float] = None,
        worker_startup_timeout: float = 30.0,
        worker_store: Optional[str] = None,
    ):
        super().__init__()
        self.receive_timeout = (
            self.DEFAULT_RECEIVE_TIMEOUT if receive_timeout is None else receive_timeout
        )
        # A managed loopback fleet always has at least two shards so one compile
        # genuinely crosses worker boundaries (and a kill leaves a survivor).
        self._target_workers = max(2, workers) if manage_workers else workers
        self._manage_workers = manage_workers
        self.worker_startup_timeout = worker_startup_timeout
        #: Path handed to managed workers as ``--store``: respawned workers then
        #: resolve language bundles from disk instead of re-downloading them.
        self.worker_store = worker_store
        self._coordinator = ClusterCoordinator(
            host,
            port,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            max_attempts=max_attempts,
            retry_backoff=retry_backoff,
            speculate_after=speculate_after,
            job_timeout=job_timeout,
            worker_request=self._on_worker_needed if manage_workers else None,
        )
        self._lock = threading.Lock()
        self._local_workers: List[subprocess.Popen] = []
        self._sessions: Dict[int, "SocketsSession"] = {}
        self._session_seq = 0
        self._started = False
        self._stopped = False

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> "SocketsSubstrate":
        with self._lock:
            if self._stopped:
                raise BackendError("sockets substrate has been shut down")
            if self._started:
                return self
            self._started = True
        self._coordinator.start()
        if self._manage_workers and self._target_workers > 0:
            self._spawn_local_workers(self._target_workers)
            joined = self._coordinator.wait_for_workers(
                self._target_workers, timeout=self.worker_startup_timeout
            )
            if joined < self._target_workers:
                self.shutdown()
                raise BackendError(
                    f"only {joined}/{self._target_workers} local cluster workers "
                    f"joined within {self.worker_startup_timeout:.0f}s"
                )
        return self

    def shutdown(self) -> None:
        with self._lock:
            if self._stopped or not self._started:
                self._stopped = True
                return
            self._stopped = True
            sessions = list(self._sessions.values())
            local = list(self._local_workers)
        for session in sessions:
            # Fail the whole in-flight run: the coordinator is about to stop
            # routing frames, so completion records would never arrive.
            with session._lock:
                session._errors.append(
                    ("substrate", "sockets substrate was shut down mid-run")
                )
            session._failed.set()
            session._jobs_event.set()
            session._wake_mailboxes("sockets substrate shut down")
        self._coordinator.shutdown()
        deadline = time.monotonic() + 5.0
        for process in local:
            try:
                process.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)

    def session(
        self,
        machines: int = 1,
        *,
        receive_timeout: Optional[float] = None,
    ) -> "SocketsSession":
        self.start()
        with self._lock:
            self._sessions_opened += 1
            self._session_seq += 1
            session_id = self._session_seq
        return SocketsSession(
            self,
            session_id,
            self.receive_timeout if receive_timeout is None else receive_timeout,
        )

    # ------------------------------------------------------------------ cluster

    @property
    def address(self) -> Tuple[str, int]:
        """Where external workers connect: ``python -m repro.cluster.worker
        --connect HOST:PORT`` (valid after :meth:`start`)."""
        return self._coordinator.address

    @property
    def coordinator(self) -> ClusterCoordinator:
        return self._coordinator

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> int:
        """Block until ``count`` workers have joined; returns how many are alive."""
        self.start()
        return self._coordinator.wait_for_workers(count, timeout=timeout)

    def cluster_stats(self) -> ClusterStats:
        """Fleet and fault-tolerance counters (feeds ``ServiceStats``)."""
        return self._coordinator.cluster_stats()

    def worker_ids(self, *, with_work: bool = False) -> List[int]:
        """Alive cluster worker ids (optionally only those evaluating a region)."""
        return self._coordinator.worker_ids(with_work=with_work)

    def kill_worker(self, worker_id: int) -> bool:
        """Fault injection: kill the worker's OS process (managed fleets) or sever
        its connection (external ones).  Returns False for unknown workers."""
        info = self._coordinator.directory.get(worker_id)
        if info is None:
            return False
        pid = info.capabilities.get("pid")
        with self._lock:
            local = list(self._local_workers)
        for process in local:
            if process.pid == pid and process.poll() is None:
                process.kill()
                return True
        return self._coordinator.disconnect_worker(worker_id)

    def pause_worker(self, worker_id: int) -> bool:
        """Fault injection: SIGSTOP a managed worker so it goes silent without
        closing its socket — death is then only detectable by heartbeat expiry."""
        info = self._coordinator.directory.get(worker_id)
        pid = None if info is None else info.capabilities.get("pid")
        with self._lock:
            local = list(self._local_workers)
        for process in local:
            if process.pid == pid and process.poll() is None:
                os.kill(process.pid, signal.SIGSTOP)
                return True
        return False

    # ---------------------------------------------------------------- internals

    def _spawn_local_workers(self, count: int) -> None:
        host, port = self._coordinator.address
        with self._lock:
            if self._stopped:
                return
            self._local_workers = [
                process for process in self._local_workers if process.poll() is None
            ]
            needed = count - len(self._local_workers)
            environment = _worker_environment() if needed > 0 else None
            command = [
                sys.executable,
                "-m",
                "repro.cluster.worker",
                "--connect",
                f"{host}:{port}",
            ]
            if self.worker_store is not None:
                command.extend(["--store", str(self.worker_store)])
            for _ in range(needed):
                self._local_workers.append(
                    subprocess.Popen(
                        command,
                        env=environment,
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                    )
                )

    def _on_worker_needed(self) -> None:
        """Coordinator callback: work is stranded without a live worker — keep the
        managed fleet at its target size (dead processes are replaced, not mourned)."""
        self._spawn_local_workers(self._target_workers)

    def _register(self, session: "SocketsSession") -> None:
        with self._lock:
            self._sessions[session.session_id] = session

    def _unregister(self, session: "SocketsSession") -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    def _submit_jobs(
        self, session: "SocketsSession", jobs: List[Tuple[WorkerJob, str]]
    ) -> None:
        for index, (job, name) in enumerate(jobs):
            try:
                self._coordinator.submit(session, name, job)
            except BaseException:
                # Jobs from this one on were never submitted: settle their share
                # of the session's completion count so close() doesn't stall.
                session._account_unsubmitted(len(jobs) - index)
                raise

    def _abort_session(self, session: "SocketsSession") -> None:
        self._coordinator.abort_session(session)
        session._wake_mailboxes("session aborted")


class SocketsSession(Backend):
    """One compilation run on a :class:`SocketsSubstrate` cluster."""

    name = "sockets"
    packed_wire = True

    def __init__(self, substrate: SocketsSubstrate, session_id: int, receive_timeout: float):
        super().__init__()
        self._substrate = substrate
        self.session_id = session_id
        self.receive_timeout = receive_timeout
        self._worker_jobs: List[Tuple[WorkerJob, str]] = []
        self._coordinators: List[Tuple[Generator, str]] = []
        self._leased: List[ClusterMailbox] = []
        self._failed = threading.Event()
        self._errors: List[Tuple[str, str]] = []
        self._lock = threading.Lock()
        self._messages = 0
        self._bytes = 0
        self._jobs_remaining = 0
        self._jobs_event = threading.Event()
        self._start: Optional[float] = None
        self._ran = False
        self._closed = False

    # ----------------------------------------------------------------- plumbing

    def mailbox(self, name: str) -> ClusterMailbox:
        mailbox = self._substrate.coordinator.lease_mailbox(self.session_id, name)
        self._leased.append(mailbox)
        return mailbox

    def spawn(
        self,
        body: Any,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        if coordinator:
            if isinstance(body, WorkerJob):
                body = body.materialize(self)
            self._coordinators.append((body, name))
            return
        if not isinstance(body, WorkerJob):
            raise BackendError(
                "sockets workers run from picklable WorkerJob specs; raw generator "
                "bodies cannot cross a host boundary"
            )
        self._worker_count += 1
        self._worker_jobs.append((body, name))

    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        assert isinstance(mailbox, ClusterMailbox)
        messages = [message]
        if _faults.ACTIVE is not None:
            replacement = apply_send_faults(mailbox.name, message)
            if replacement is not None:
                messages = replacement
        # Coordinator-side sends go through route() — not straight into the local
        # queue — so they land in the mailbox's replayable log; that log is what a
        # re-executed evaluator on a fresh worker replays after a death.
        for item in messages:
            self._substrate.coordinator.route(mailbox.uid, item)
        with self._lock:
            self._messages += len(messages)
            self._bytes += size_bytes * len(messages)

    def run(self) -> float:
        if self._ran:
            raise BackendError("a run session can only be run once")
        self._ran = True
        self._start = time.perf_counter()
        self._substrate._register(self)
        self._jobs_remaining = len(self._worker_jobs)
        if self._jobs_remaining == 0:
            self._jobs_event.set()
        else:
            self._substrate._submit_jobs(self, self._worker_jobs)
        coordinator_threads = [
            threading.Thread(
                target=self._run_coordinator, args=(body, name), name=name, daemon=True
            )
            for body, name in self._coordinators
        ]
        for thread in coordinator_threads:
            thread.start()
        self._jobs_event.wait()
        for thread in coordinator_threads:
            thread.join()
        if self._errors:
            name, detail = self._errors[0]
            raise BackendError(f"worker {name!r} failed: {detail}")
        return time.perf_counter() - self._start

    @property
    def now(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def telemetry(self) -> BackendTelemetry:
        with self._lock:
            return BackendTelemetry(
                network_messages=self._messages, network_bytes=self._bytes
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._ran and not self._jobs_event.is_set():
            # Torn down mid-flight (an error escaped between run() and result
            # collection, or run() itself raised): unwind coordinators and abort
            # our attempts across the fleet.
            self._failed.set()
            self._substrate._abort_session(self)
            self._jobs_event.wait(timeout=10.0)
        # Unlike the processes registry there is nothing to leak on a wedged run:
        # mailbox uids are never reused, and the coordinator drops late frames for
        # released sessions on the floor.
        self._substrate.coordinator.release_session(self.session_id)
        self._leased = []
        self._substrate._unregister(self)

    # ---------------------------------------------------------------- internals

    def _wake_mailboxes(self, reason: str) -> None:
        """Rouse coordinator bodies blocked on leased mailboxes.  Remote receivers
        are woken by their own abort frames; wake tokens never enter the logs."""
        for mailbox in self._leased:
            self._substrate.coordinator.wake_mailbox(mailbox, reason)

    def _account_unsubmitted(self, count: int) -> None:
        """Settle completion accounting for jobs that never reached the cluster."""
        with self._lock:
            self._jobs_remaining -= count
            if self._jobs_remaining <= 0:
                self._jobs_event.set()

    def _job_done(self, name: str, messages: int, size_bytes: int) -> None:
        with self._lock:
            self._messages += messages
            self._bytes += size_bytes
            self._jobs_remaining -= 1
            if self._jobs_remaining <= 0:
                self._jobs_event.set()

    def _job_failed(self, name: str, detail: str) -> None:
        with self._lock:
            self._errors.append((name, detail))
        self._failed.set()
        self._substrate._abort_session(self)
        with self._lock:
            self._jobs_remaining -= 1
            if self._jobs_remaining <= 0:
                self._jobs_event.set()

    def _run_coordinator(self, body: Generator, name: str) -> None:
        try:
            drive(body, lambda mailbox: self._coordinator_receive(mailbox, name))
        except BaseException as error:  # noqa: BLE001 — reported via run()
            with self._lock:
                self._errors.append((name, repr(error)))
            self._failed.set()
            self._substrate._abort_session(self)

    def _coordinator_receive(self, mailbox: ClusterMailbox, who: str) -> Any:
        return blocking_receive(
            mailbox.queue, self.receive_timeout, self._failed, who, mailbox.name
        )


# ------------------------------------------------------------------ one-shot API


class SocketsBackend(Backend):
    """One-shot sockets lifecycle: a private loopback cluster for a single run.

    Matches the create→spawn→run→close shape of the other one-shot backends, at
    the cost of spawning (and then discarding) a small local worker fleet per
    compilation — for repeated compiles use :class:`SocketsSubstrate` and keep
    the fleet warm.
    """

    name = "sockets"
    packed_wire = True

    def __init__(self, receive_timeout: Optional[float] = None, workers: int = 2):
        super().__init__()
        self._substrate = SocketsSubstrate(
            workers=workers, receive_timeout=receive_timeout
        )
        self._substrate.start()
        self._session = self._substrate.session()
        self._closed = False

    def mailbox(self, name: str) -> ClusterMailbox:
        return self._session.mailbox(name)

    def spawn(self, body: Any, *, name: str, machine: int = 0,
              coordinator: bool = False) -> None:
        self._session.spawn(body, name=name, machine=machine, coordinator=coordinator)

    def send(self, source: int, destination: int, message: Any, size_bytes: int,
             mailbox: Mailbox) -> None:
        self._session.send(source, destination, message, size_bytes, mailbox)

    def run(self) -> float:
        return self._session.run()

    @property
    def now(self) -> float:
        return self._session.now

    def publish_report(self, region_id: int, report: Any) -> None:
        self._session.publish_report(region_id, report)

    @property
    def reports(self) -> Dict[int, Any]:
        return self._session.reports

    @property
    def worker_count(self) -> int:
        return self._session.worker_count

    def telemetry(self) -> BackendTelemetry:
        return self._session.telemetry()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._session.close()
        finally:
            self._substrate.shutdown()
