"""The simulated backend: the paper's network multiprocessor as a substrate.

Translates backend requests into the discrete-event simulator's operations, preserving
the exact event ordering of the original (pre-backend) compiler: a :class:`Compute`
request occupies the modelled machine's single CPU for its scaled cost, a
:class:`Receive` blocks on a simulator ``Store``, and sends go through the shared
Ethernet-like medium (free and immediate when co-located).  All timings it reports are
simulated seconds, which keeps every figure reproduction byte-for-byte deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Generator, List, Optional

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    Compute,
    Mailbox,
    Receive,
    Substrate,
    WorkerJob,
)
from repro.runtime.cluster import Cluster
from repro.runtime.cost import CostModel
from repro.runtime.machine import Machine
from repro.runtime.network import NetworkParameters
from repro.runtime.simulator import Store


class SimulatedMailbox(Mailbox):
    """A mailbox backed by a simulator :class:`Store`."""

    __slots__ = ("store",)

    def __init__(self, name: str, store: Store):
        super().__init__(name)
        self.store = store


class SimulatedBackend(Backend):
    """Run the distributed protocol on the simulated cluster."""

    name = "simulated"

    def __init__(
        self,
        machines: int,
        network: Optional[NetworkParameters] = None,
        cost_model: Optional[CostModel] = None,
        machine_speeds: Optional[List[float]] = None,
    ):
        super().__init__()
        self.cluster = Cluster(
            machines, network=network, cost_model=cost_model, machine_speeds=machine_speeds
        )

    # ----------------------------------------------------------------- plumbing

    def mailbox(self, name: str) -> SimulatedMailbox:
        return SimulatedMailbox(name, self.cluster.environment.store(name))

    def spawn(
        self,
        body: Any,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        if isinstance(body, WorkerJob):
            body = body.materialize(self)
        if not coordinator:
            self._worker_count += 1
        self.cluster.spawn(self._drive(body, self.cluster.machine(machine)), name=name)

    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        assert isinstance(mailbox, SimulatedMailbox)
        self.cluster.send(
            self.cluster.machine(source),
            self.cluster.machine(destination),
            message,
            size_bytes,
            mailbox=mailbox.store,
        )

    def run(self) -> float:
        started = time.perf_counter()
        self.cluster.run()
        unfinished = self.cluster.environment.unfinished_processes()
        if unfinished:
            raise BackendError(
                "parallel compilation deadlocked; unfinished processes: "
                + ", ".join(process.name for process in unfinished)
            )
        return time.perf_counter() - started

    @property
    def now(self) -> float:
        return self.cluster.now

    def telemetry(self) -> BackendTelemetry:
        stats = self.cluster.network_stats()
        return BackendTelemetry(
            timeline=self.cluster.timeline(),
            utilization=self.cluster.utilization(),
            network_messages=stats.messages,
            network_bytes=stats.bytes_sent,
            network_busy_time=stats.busy_time,
        )

    # ---------------------------------------------------------------- internals

    def _drive(self, body: Generator, machine: Machine) -> Generator:
        """Adapt a request generator to the simulator's yield protocol."""
        value: Any = None
        while True:
            try:
                request = body.send(value)
            except StopIteration:
                return
            if isinstance(request, Compute):
                yield from machine.compute(request.cost, request.kind, request.label)
                value = None
            elif isinstance(request, Receive):
                assert isinstance(request.mailbox, SimulatedMailbox)
                value = yield from machine.receive(request.mailbox.store)
            else:
                raise BackendError(
                    f"process body yielded an unsupported request: {request!r}"
                )


class SimulatedSubstrate(Substrate):
    """The persistent form of the simulated backend.

    The simulator has no OS resources to pool — the whole point of pooling here is API
    uniformity: a service can hold one :class:`SimulatedSubstrate` and open a session
    per compilation.  Every session gets a *fresh* modelled cluster, which is exactly
    what keeps figure reproductions byte-for-byte deterministic no matter how many
    compilations share the substrate or how they interleave.
    """

    name = "simulated"

    def __init__(
        self,
        network: Optional[NetworkParameters] = None,
        cost_model: Optional[CostModel] = None,
        machine_speeds: Optional[List[float]] = None,
    ):
        super().__init__()
        self.network = network
        self.cost_model = cost_model
        self.machine_speeds = machine_speeds
        self._lock = threading.Lock()
        self._stopped = False

    def start(self) -> "SimulatedSubstrate":
        if self._stopped:
            raise BackendError("simulated substrate has been shut down")
        return self

    def shutdown(self) -> None:
        self._stopped = True

    def session(
        self,
        machines: int = 1,
        *,
        receive_timeout: Optional[float] = None,
    ) -> SimulatedBackend:
        if self._stopped:
            raise BackendError("simulated substrate has been shut down")
        with self._lock:
            self._sessions_opened += 1
        return SimulatedBackend(
            machines,
            network=self.network,
            cost_model=self.cost_model,
            machine_speeds=self.machine_speeds,
        )
