"""The execution-substrate abstraction shared by all backends.

The distributed compiler's processes (parser, evaluators, string librarian) are written
once as *request generators*: plain Python generators that yield :class:`Compute` and
:class:`Receive` requests and call :meth:`Backend.send` / :meth:`Backend.publish_report`
directly.  A backend decides what those requests mean:

* the **simulated** backend translates them into discrete-event simulator operations
  (CPU occupancy on a modelled machine, blocking mailbox reads) and charges modelled
  time — this is the paper-faithful substrate every figure is measured on;
* the **threads** and **processes** backends execute the very same generators on real
  OS threads / OS processes: the real CPU work happens inline between yields, so a
  :class:`Compute` request resumes immediately (its modelled cost is ignored) and a
  :class:`Receive` is a genuine blocking read from a ``queue.Queue`` /
  ``multiprocessing.Queue`` mailbox.

Because the process bodies never import a substrate directly, the coordinator,
evaluator and librarian logic exists exactly once and every backend runs the identical
protocol.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.runtime.machine import ActivityInterval, ActivityKind


class BackendError(RuntimeError):
    """Raised when a backend cannot complete the distributed protocol."""


@dataclass(frozen=True)
class Compute:
    """Request: account ``cost`` modelled CPU seconds of work just performed.

    The simulated backend occupies the machine's CPU for ``cost`` scaled seconds; real
    backends treat the request as bookkeeping only (the actual computation already ran
    inline inside the process body).
    """

    cost: float
    kind: ActivityKind = ActivityKind.OTHER
    label: str = ""


@dataclass(frozen=True)
class Receive:
    """Request: block until a message is available in ``mailbox`` and resume with it."""

    mailbox: "Mailbox"


class Mailbox:
    """A named FIFO channel owned by one receiving process.

    Concrete backends attach their own transport handle (a simulator ``Store``, a
    ``queue.Queue`` or a ``multiprocessing.Queue``).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class BackendTelemetry:
    """Substrate-level measurements gathered during one run.

    The simulated backend fills every field from the cluster model; real backends
    report message counts/bytes observed at their transport and leave the
    modelled-time fields (timeline, utilization, busy time) empty.
    """

    timeline: Dict[str, List[ActivityInterval]] = field(default_factory=dict)
    utilization: Dict[str, float] = field(default_factory=dict)
    network_messages: int = 0
    network_bytes: int = 0
    network_busy_time: float = 0.0


class Backend(abc.ABC):
    """One execution substrate: mailboxes, process spawning, message transport, clock.

    Lifecycle: create mailboxes, ``spawn`` process bodies (coordinator bodies — the
    parser and the librarian — are guaranteed to execute in the driving Python process
    so they can share memory with the caller; worker bodies may execute on real OS
    threads or processes), then ``run()`` drives everything to completion and returns
    the wall-clock seconds spent.
    """

    #: Short name used by the ``backend=`` knob of the parallel compiler.
    name: str = "abstract"

    def __init__(self) -> None:
        self._reports: Dict[int, Any] = {}
        self._worker_count = 0

    # ----------------------------------------------------------------- plumbing

    @abc.abstractmethod
    def mailbox(self, name: str) -> Mailbox:
        """Create a new (empty) mailbox."""

    @abc.abstractmethod
    def spawn(
        self,
        body: Generator,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        """Register a process body to run on (modelled or real) ``machine``.

        ``coordinator`` bodies always execute in the driving process; worker bodies are
        placed on the substrate's parallel execution units.
        """

    @abc.abstractmethod
    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        """Deliver ``message`` (of modelled size ``size_bytes``) into ``mailbox``.

        ``source``/``destination`` are machine indexes; the simulated backend uses them
        to charge network time, real backends only for diagnostics.
        """

    @abc.abstractmethod
    def run(self) -> float:
        """Execute all spawned bodies to completion; return wall-clock seconds."""

    # -------------------------------------------------------------------- clock

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """The backend's notion of elapsed time since ``run()`` started.

        Simulated seconds on the simulator, wall-clock seconds on real substrates.
        """

    # ------------------------------------------------------------ result plane

    def publish_report(self, region_id: int, report: Any) -> None:
        """Make a worker's final report visible to the coordinator.

        Runs out-of-band (not through the modelled network) so that publishing results
        never perturbs modelled timings; the processes backend overrides this to ship
        the report across the OS-process boundary.
        """
        self._reports[region_id] = report

    @property
    def reports(self) -> Dict[int, Any]:
        """Reports published by workers, keyed by region id (valid after ``run()``)."""
        return dict(self._reports)

    @property
    def worker_count(self) -> int:
        """How many non-coordinator bodies were spawned."""
        return self._worker_count

    def telemetry(self) -> BackendTelemetry:
        """Substrate measurements (valid after ``run()``)."""
        return BackendTelemetry()


def poll_receive(fifo: Any, timeout: float, failed: Any, who: str, mailbox_name: str) -> Any:
    """Blocking queue read with cooperative failure detection for real substrates.

    Polls ``fifo`` (a ``queue.Queue`` or ``multiprocessing.Queue``) in short slices so
    that a failure flagged by another worker (``failed``, a ``threading.Event``)
    unwinds this reader promptly instead of deadlocking the whole run; gives up with a
    diagnostic after ``timeout`` seconds.
    """
    import queue as queue_module

    deadline = time.monotonic() + timeout
    while True:
        if failed.is_set():
            raise BackendError(f"{who} aborted: another worker failed")
        try:
            return fifo.get(timeout=0.05)
        except queue_module.Empty:
            if time.monotonic() > deadline:
                raise BackendError(
                    f"{who} timed out after {timeout:.0f}s waiting on "
                    f"mailbox {mailbox_name!r} (protocol deadlock?)"
                ) from None


def drive(body: Generator, receive: Any) -> None:
    """Drive a request generator on a real substrate.

    ``receive`` is a callable ``(mailbox) -> message`` implementing a blocking mailbox
    read.  :class:`Compute` requests resume immediately and their modelled cost is
    discarded — the real CPU work already happened inline inside the generator, and
    wall-clock time is what real substrates measure.
    """
    value: Any = None
    while True:
        try:
            request = body.send(value)
        except StopIteration:
            return
        if isinstance(request, Compute):
            value = None
        elif isinstance(request, Receive):
            value = receive(request.mailbox)
        else:
            raise BackendError(f"process body yielded an unsupported request: {request!r}")
