"""The execution-substrate abstraction shared by all backends.

The distributed compiler's processes (parser, evaluators, string librarian) are written
once as *request generators*: plain Python generators that yield :class:`Compute` and
:class:`Receive` requests and call :meth:`Backend.send` / :meth:`Backend.publish_report`
directly.  A backend decides what those requests mean:

* the **simulated** backend translates them into discrete-event simulator operations
  (CPU occupancy on a modelled machine, blocking mailbox reads) and charges modelled
  time — this is the paper-faithful substrate every figure is measured on;
* the **threads** and **processes** backends execute the very same generators on real
  OS threads / OS processes: the real CPU work happens inline between yields, so a
  :class:`Compute` request resumes immediately (its modelled cost is ignored) and a
  :class:`Receive` is a genuine blocking read from a ``queue.Queue`` /
  ``multiprocessing.Queue`` mailbox.

Because the process bodies never import a substrate directly, the coordinator,
evaluator and librarian logic exists exactly once and every backend runs the identical
protocol.

The contract is split in two layers:

* a :class:`Substrate` is the **persistent** half: a worker pool and mailbox registry
  created once (explicit :meth:`~Substrate.start` / :meth:`~Substrate.shutdown`, or a
  ``with`` block) and reused across many compilations — long-lived OS threads or forked
  worker processes pull work from a job channel instead of dying after one run;
* a :class:`Backend` is the **per-compilation run session**: mailboxes, spawned bodies,
  one :meth:`~Backend.run` barrier, reports and telemetry, all scoped to a single job.
  Sessions are created with :meth:`Substrate.session` and torn down with
  :meth:`Backend.close` (idempotent, safe on every error path).

The legacy one-shot classes (``SimulatedBackend``, ``ThreadsBackend``,
``ProcessesBackend``) remain: they are sessions bound to a private single-use
substrate, preserving the original create→spawn→run API byte-for-byte.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Mapping, Optional

from repro.faults import plan as _faults
from repro.faults.plan import FaultError
from repro.runtime.machine import ActivityInterval, ActivityKind


class BackendError(RuntimeError):
    """Raised when a backend cannot complete the distributed protocol."""


@dataclass(frozen=True)
class Compute:
    """Request: account ``cost`` modelled CPU seconds of work just performed.

    The simulated backend occupies the machine's CPU for ``cost`` scaled seconds; real
    backends treat the request as bookkeeping only (the actual computation already ran
    inline inside the process body).
    """

    cost: float
    kind: ActivityKind = ActivityKind.OTHER
    label: str = ""


@dataclass(frozen=True)
class Receive:
    """Request: block until a message is available in ``mailbox`` and resume with it."""

    mailbox: "Mailbox"


class Mailbox:
    """A named FIFO channel owned by one receiving process.

    Concrete backends attach their own transport handle (a simulator ``Store``, a
    ``queue.Queue`` or a ``multiprocessing.Queue``).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True)
class SharedBundle:
    """A shared object carrying an explicit, stable cache key.

    By default pooled substrates deduplicate shared objects by *identity*, which only
    helps callers that keep one object alive across jobs.  Wrapping the payload in a
    :class:`SharedBundle` keys the worker-side cache on ``key`` instead — e.g. the
    language registry uses ``language:<name>#<generation>/<evaluator>`` so that every
    compiler created for a registered language maps to one cache entry and the
    grammar+plan payload crosses to each pooled worker once ever, no matter how many
    caller-side compiler instances exist.  Keys must be globally unique per payload:
    the first payload seen under a key is the one every worker receives.
    """

    key: str
    payload: Any


@dataclass(frozen=True)
class WorkerJob:
    """A substrate-neutral description of a worker process body.

    ``factory(transport, **kwargs, **shared)`` must return the request generator to
    drive; it is called with the session (or, on pooled process workers, a child-side
    transport proxy) as its first argument.  In-process substrates materialise the body
    immediately; the pooled processes substrate pickles the job and rebuilds the body
    inside a long-lived worker, which is why ``factory`` must be a module-level callable
    and ``kwargs`` must pickle (``Mailbox`` values are translated to registry indexes
    automatically, including inside dicts/lists/tuples).

    ``shared`` holds large immutable objects (grammars, evaluation plans) that pooled
    workers cache and reuse: each worker receives the pickled payload once and reuses
    it for every later job that shares it.  Values are cached by identity, or by
    explicit name when wrapped in a :class:`SharedBundle`.
    """

    factory: Callable[..., Generator]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    shared: Mapping[str, Any] = field(default_factory=dict)

    def materialize(self, transport: Any) -> Generator:
        """Build the process body in-process (non-pooled and in-memory substrates)."""
        shared = {
            name: value.payload if isinstance(value, SharedBundle) else value
            for name, value in self.shared.items()
        }
        return self.factory(transport, **dict(self.kwargs), **shared)


@dataclass
class BackendTelemetry:
    """Substrate-level measurements gathered during one run.

    The simulated backend fills every field from the cluster model; real backends
    report message counts/bytes observed at their transport and leave the
    modelled-time fields (timeline, utilization, busy time) empty.
    """

    timeline: Dict[str, List[ActivityInterval]] = field(default_factory=dict)
    utilization: Dict[str, float] = field(default_factory=dict)
    network_messages: int = 0
    network_bytes: int = 0
    network_busy_time: float = 0.0


class Backend(abc.ABC):
    """One compilation run session: mailboxes, process spawning, transport, clock.

    Lifecycle: create mailboxes, ``spawn`` process bodies (coordinator bodies — the
    parser and the librarian — are guaranteed to execute in the driving Python process
    so they can share memory with the caller; worker bodies may execute on real OS
    threads or processes), then ``run()`` drives everything to completion and returns
    the wall-clock seconds spent.  ``close()`` tears the session down and must be
    called on every path — including when ``run()`` or result collection raised — so
    that no worker thread or forked process outlives a failed compilation.
    """

    #: Short name used by the ``backend=`` knob of the parallel compiler.
    name: str = "abstract"

    #: True when protocol messages cross a serialisation boundary (another OS
    #: process or another host), so regions should ship in the packed
    #: array-of-ints codec instead of the readable linearized records.
    packed_wire: bool = False

    #: True when the receiving end shares a kernel with the sender (forked OS
    #: processes), so packed regions may ship zero-copy as shared-memory segment
    #: handles (:mod:`repro.tree.shm`).  Implies ``packed_wire``.  The sockets
    #: substrate and plain pickling keep the packed-bytes path.
    shared_ship: bool = False

    def __init__(self) -> None:
        self._reports: Dict[int, Any] = {}
        self._worker_count = 0
        self._shipped_segments: List[Any] = []

    # ----------------------------------------------------------------- plumbing

    @abc.abstractmethod
    def mailbox(self, name: str) -> Mailbox:
        """Create (or lease from the substrate's registry) a new empty mailbox."""

    @abc.abstractmethod
    def spawn(
        self,
        body: Any,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        """Register a process body to run on (modelled or real) ``machine``.

        ``body`` is either a request generator or a :class:`WorkerJob` describing one.
        ``coordinator`` bodies always execute in the driving process; worker bodies are
        placed on the substrate's parallel execution units.
        """

    @abc.abstractmethod
    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        """Deliver ``message`` (of modelled size ``size_bytes``) into ``mailbox``.

        ``source``/``destination`` are machine indexes; the simulated backend uses them
        to charge network time, real backends only for diagnostics.
        """

    @abc.abstractmethod
    def run(self) -> float:
        """Execute all spawned bodies to completion; return wall-clock seconds."""

    # -------------------------------------------------------------------- clock

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """The backend's notion of elapsed time since ``run()`` started.

        Simulated seconds on the simulator, wall-clock seconds on real substrates.
        """

    # ------------------------------------------------------------ result plane

    def publish_report(self, region_id: int, report: Any) -> None:
        """Make a worker's final report visible to the coordinator.

        Runs out-of-band (not through the modelled network) so that publishing results
        never perturbs modelled timings; the processes backend overrides this to ship
        the report across the OS-process boundary.
        """
        self._reports[region_id] = report

    @property
    def reports(self) -> Dict[int, Any]:
        """Reports published by workers, keyed by region id (valid after ``run()``)."""
        return dict(self._reports)

    @property
    def worker_count(self) -> int:
        """How many non-coordinator bodies were spawned."""
        return self._worker_count

    def telemetry(self) -> BackendTelemetry:
        """Substrate measurements (valid after ``run()``)."""
        return BackendTelemetry()

    # ----------------------------------------------------- shared-memory ships

    def adopt_segment(self, segment: Any) -> None:
        """Take ownership of a shipped shared-memory segment for this session.

        The parser calls this for every region it parks in shared memory
        (:func:`repro.tree.shm.share_packed`); the session releases all adopted
        segments in :meth:`release_segments`, which every ``close()`` — success,
        abort, worker death, substrate shutdown — must reach.
        """
        self._shipped_segments.append(segment)

    def release_segments(self) -> None:
        """Unlink every adopted shared-memory segment (idempotent, never raises)."""
        segments, self._shipped_segments = self._shipped_segments, []
        for segment in segments:
            try:
                segment.release()
            except Exception:  # release must never mask the original teardown error
                pass

    # ---------------------------------------------------------------- teardown

    def close(self) -> None:
        """Tear the session down (idempotent; safe before, during and after ``run``).

        On a pooled substrate this aborts any of the session's still-running bodies and
        returns leased mailboxes to the registry; on a one-shot backend it joins or
        terminates the private worker pool.  The substrate itself stays alive.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Substrate(abc.ABC):
    """The persistent half of an execution backend: worker pool + mailbox registry.

    Created once and reused across many compilations::

        with create_substrate("threads") as substrate:
            report_a = compiler.compile_tree(tree_a, 4, substrate=substrate)
            report_b = compiler.compile_tree(tree_b, 4, substrate=substrate)

    ``start()`` brings the pool up (idempotent), ``session()`` hands out a
    per-compilation :class:`Backend` run session, and ``shutdown()`` joins/terminates
    every pooled worker.  Sessions may run concurrently on one substrate — that is what
    the :mod:`repro.service` layer builds on.
    """

    #: Short name matching the ``backend=`` knob ("simulated", "threads", "processes").
    name: str = "abstract"

    def __init__(self) -> None:
        self._sessions_opened = 0

    @abc.abstractmethod
    def start(self) -> "Substrate":
        """Bring the worker pool up.  Idempotent; returns ``self`` for chaining."""

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Stop every pooled worker.  Idempotent; the substrate cannot be restarted."""

    @abc.abstractmethod
    def session(
        self,
        machines: int,
        *,
        receive_timeout: Optional[float] = None,
    ) -> Backend:
        """Open a new run session for one compilation on ``machines`` workers.

        ``machines`` parameterises the simulated cluster (real substrates size
        themselves from the bodies actually spawned); ``receive_timeout`` overrides the
        substrate's blocking-receive bound for this session only.
        """

    @property
    def sessions_opened(self) -> int:
        """How many run sessions this substrate has handed out so far."""
        return self._sessions_opened

    def close(self) -> None:
        """Alias for :meth:`shutdown` (idempotent), matching the session vocabulary.

        A ``with`` block followed by an explicit ``close()``/``shutdown()`` — or the
        reverse — is safe on every substrate.
        """
        self.shutdown()

    def __enter__(self) -> "Substrate":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


class WakeToken:
    """Control message injected into a mailbox to rouse a blocked receiver.

    Real substrates sleep inside a genuinely blocking ``queue.get`` — there is no
    polling loop left to notice a failure flag.  Whoever flips a session's failure
    (or abort) flag therefore also puts a ``WakeToken`` into every mailbox the
    session owns; receivers discard the token, re-check their flag, and either abort
    or go back to sleep for the remainder of their deadline.  Tokens are never part
    of the compilation protocol, so a stale one (failure already handled, or a wake
    raced with a normal message) is simply dropped.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str = ""):
        self.reason = reason

    def __repr__(self) -> str:
        return f"WakeToken({self.reason!r})"


def apply_send_faults(mailbox_name: str, message: Any) -> Optional[List[Any]]:
    """Consult the active fault plan for one ``mailbox.send`` opportunity.

    Returns ``None`` for "deliver normally" (the overwhelmingly common case —
    callers guard with ``if _faults.ACTIVE is not None`` so an idle plane costs
    one attribute check), or the list of messages to deliver instead: ``[]``
    for a dropped message, ``[message, message]`` for a duplicated one.  A
    ``delay`` action sleeps here, in the sender; an ``error`` action raises
    :class:`~repro.faults.FaultError` out of the send.
    """
    plan = _faults.ACTIVE
    if plan is None:
        return None
    hit = plan.check("mailbox.send", mailbox_name)
    if hit is None:
        return None
    if hit.action == "drop":
        return []
    if hit.action == "duplicate":
        return [message, message]
    if hit.action in ("delay", "stall"):
        hit.sleep()
        return None
    raise FaultError("mailbox.send", hit.action, mailbox_name)


def apply_receive_faults(who: str, mailbox_name: str) -> None:
    """One ``mailbox.receive`` opportunity: delay the receiver or raise typed.

    Called at the top of every real-substrate receive; callers guard with
    ``if _faults.ACTIVE is not None`` so the disabled plane stays free.
    """
    plan = _faults.ACTIVE
    if plan is None:
        return
    hit = plan.check("mailbox.receive", mailbox_name)
    if hit is None:
        return
    if hit.action in ("delay", "stall"):
        hit.sleep()
        return
    raise FaultError("mailbox.receive", hit.action, f"{who} on {mailbox_name}")


def deadline_get(fifo: Any, deadline: float, timeout: float, who: str, mailbox_name: str) -> Any:
    """One blocking read against an absolute deadline, with the shared diagnostic.

    The single implementation of "sleep until a message or the deadline" used by
    every real-substrate receive loop; callers keep their own reaction to
    :class:`WakeToken`\\ s and abort flags around it.
    """
    import queue as queue_module

    remaining = deadline - time.monotonic()
    if remaining > 0:
        try:
            return fifo.get(timeout=remaining)
        except queue_module.Empty:
            pass
    raise BackendError(
        f"{who} timed out after {timeout:.0f}s waiting on "
        f"mailbox {mailbox_name!r} (protocol deadlock?)"
    )


def blocking_receive(fifo: Any, timeout: float, failed: Any, who: str, mailbox_name: str) -> Any:
    """Blocking queue read with a real deadline and token-based failure wake-up.

    The reader sleeps in the OS until a message lands in ``fifo`` (a ``queue.Queue``
    or ``multiprocessing.Queue``) — no polling slices, so message latency is bounded
    by the transport, not by a tick interval.  A failure flagged by another worker
    (``failed``, a ``threading.Event``) is delivered as a :class:`WakeToken`; gives
    up with a diagnostic after ``timeout`` seconds.
    """
    if _faults.ACTIVE is not None:
        apply_receive_faults(who, mailbox_name)
    deadline = time.monotonic() + timeout
    while True:
        if failed.is_set():
            raise BackendError(f"{who} aborted: another worker failed")
        message = deadline_get(fifo, deadline, timeout, who, mailbox_name)
        if isinstance(message, WakeToken):
            continue
        return message


#: Backwards-compatible alias for the pre-token polling primitive (same signature).
poll_receive = blocking_receive


def drain_fifo(fifo: Any, settle_timeout: float = 0.0) -> int:
    """Empty a queue, optionally waiting once for in-flight feeders to land.

    The fast path never blocks: ``get_nowait`` until empty.  With a ``settle_timeout``
    (used after failed runs, where another process may still be mid-``put``), a single
    bounded blocking read replaces repeated short polling ticks; every message that
    arrives within the window resets it.  Returns the number of messages discarded.
    """
    import queue as queue_module

    drained = 0
    while True:
        try:
            fifo.get_nowait()
            drained += 1
        except queue_module.Empty:
            if settle_timeout <= 0:
                return drained
            try:
                fifo.get(timeout=settle_timeout)
                drained += 1
            except queue_module.Empty:
                return drained


def drive(body: Generator, receive: Any) -> None:
    """Drive a request generator on a real substrate.

    ``receive`` is a callable ``(mailbox) -> message`` implementing a blocking mailbox
    read.  :class:`Compute` requests resume immediately and their modelled cost is
    discarded — the real CPU work already happened inline inside the generator, and
    wall-clock time is what real substrates measure.
    """
    value: Any = None
    while True:
        try:
            request = body.send(value)
        except StopIteration:
            return
        if isinstance(request, Compute):
            value = None
        elif isinstance(request, Receive):
            value = receive(request.mailbox)
        else:
            raise BackendError(f"process body yielded an unsupported request: {request!r}")
