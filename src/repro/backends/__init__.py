"""Execution backends: interchangeable substrates for the parallel compiler.

Three implementations of the same :class:`~repro.backends.base.Backend` interface:

* ``"simulated"`` — the paper's modelled network multiprocessor (deterministic
  discrete-event simulation, simulated seconds);
* ``"threads"`` — one OS thread per evaluator region, ``queue.Queue`` mailboxes;
* ``"processes"`` — one forked OS process per evaluator region, picklable protocol
  messages over ``multiprocessing.Queue``.

Select one with ``ParallelCompiler(grammar, backend="processes")`` or per call with
``compile_tree(..., backend="threads")``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    Compute,
    Mailbox,
    Receive,
)
from repro.backends.processes import ProcessesBackend
from repro.backends.simulated import SimulatedBackend
from repro.backends.threads import ThreadsBackend
from repro.runtime.cost import CostModel
from repro.runtime.network import NetworkParameters

#: Names accepted by :func:`create_backend` and the compiler's ``backend=`` knob.
BACKEND_NAMES = ("simulated", "threads", "processes")


def create_backend(
    name: str,
    machines: int,
    network: Optional[NetworkParameters] = None,
    cost_model: Optional[CostModel] = None,
    machine_speeds: Optional[List[float]] = None,
    receive_timeout: Optional[float] = None,
) -> Backend:
    """Instantiate the backend called ``name``.

    ``machines``/``network``/``cost_model``/``machine_speeds`` parameterise the
    simulated cluster and are ignored by the real substrates; ``receive_timeout``
    bounds blocking receives on the real substrates and is ignored by the simulator.
    """
    if name == "simulated":
        return SimulatedBackend(
            machines, network=network, cost_model=cost_model, machine_speeds=machine_speeds
        )
    if name == "threads":
        return ThreadsBackend() if receive_timeout is None else ThreadsBackend(receive_timeout)
    if name == "processes":
        return ProcessesBackend() if receive_timeout is None else ProcessesBackend(receive_timeout)
    raise ValueError(f"unknown backend {name!r}; choose from {BACKEND_NAMES}")


__all__ = [
    "Backend",
    "BackendError",
    "BackendTelemetry",
    "BACKEND_NAMES",
    "Compute",
    "Mailbox",
    "ProcessesBackend",
    "Receive",
    "SimulatedBackend",
    "ThreadsBackend",
    "create_backend",
]
