"""Execution backends: interchangeable substrates for the parallel compiler.

Four implementations of the same :class:`~repro.backends.base.Backend` interface:

* ``"simulated"`` — the paper's modelled network multiprocessor (deterministic
  discrete-event simulation, simulated seconds);
* ``"threads"`` — OS threads with ``queue.Queue`` mailboxes;
* ``"processes"`` — forked OS processes with picklable protocol messages over
  ``multiprocessing.Queue``;
* ``"sockets"`` — separate worker host processes over TCP (loopback by default,
  any reachable machine in general), backed by the :mod:`repro.cluster`
  coordinator: consistent-hash sharding, heartbeats, and region reassignment
  that survives killing a worker mid-compile.

Each comes in two lifecycles:

* **one-shot** (:func:`create_backend`): build → spawn → run → discard, exactly the
  original semantics — ``ParallelCompiler(grammar, backend="processes")`` or per call
  with ``compile_tree(..., backend="threads")``;
* **pooled** (:func:`create_substrate`): a persistent :class:`Substrate` whose worker
  pool and mailbox registry survive across compilations —
  ``compile_tree(..., substrate=pool)`` or the :mod:`repro.service` layer on top.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    Compute,
    Mailbox,
    Receive,
    SharedBundle,
    Substrate,
    WorkerJob,
)
from repro.backends.processes import ProcessesBackend, ProcessesSubstrate
from repro.backends.simulated import SimulatedBackend, SimulatedSubstrate
from repro.backends.sockets import SocketsBackend, SocketsSubstrate
from repro.backends.threads import ThreadsBackend, ThreadsSubstrate
from repro.runtime.cost import CostModel
from repro.runtime.network import NetworkParameters

#: Names accepted by :func:`create_backend` and the compiler's ``backend=`` knob.
BACKEND_NAMES = ("simulated", "threads", "processes", "sockets")


def create_backend(
    name: str,
    machines: int,
    network: Optional[NetworkParameters] = None,
    cost_model: Optional[CostModel] = None,
    machine_speeds: Optional[List[float]] = None,
    receive_timeout: Optional[float] = None,
) -> Backend:
    """Instantiate the one-shot backend called ``name``.

    ``machines``/``network``/``cost_model``/``machine_speeds`` parameterise the
    simulated cluster and are ignored by the real substrates; ``receive_timeout``
    bounds blocking receives on the real substrates and is ignored by the simulator.
    """
    if name == "simulated":
        return SimulatedBackend(
            machines, network=network, cost_model=cost_model, machine_speeds=machine_speeds
        )
    if name == "threads":
        return ThreadsBackend() if receive_timeout is None else ThreadsBackend(receive_timeout)
    if name == "processes":
        return ProcessesBackend() if receive_timeout is None else ProcessesBackend(receive_timeout)
    if name == "sockets":
        return SocketsBackend(receive_timeout=receive_timeout)
    raise ValueError(f"unknown backend {name!r}; choose from {BACKEND_NAMES}")


def create_substrate(
    name: str,
    workers: int = 0,
    network: Optional[NetworkParameters] = None,
    cost_model: Optional[CostModel] = None,
    machine_speeds: Optional[List[float]] = None,
    receive_timeout: Optional[float] = None,
) -> Substrate:
    """Instantiate the persistent (pooled) substrate called ``name``.

    ``workers`` is the initial pool size for the real substrates (both grow on demand
    so a compilation's whole worker batch always runs concurrently); the simulated
    substrate pools nothing and simply hands out fresh deterministic clusters.
    Remember to ``start()`` it (or use a ``with`` block) and ``shutdown()`` when done.
    """
    if name == "simulated":
        return SimulatedSubstrate(
            network=network, cost_model=cost_model, machine_speeds=machine_speeds
        )
    if name == "threads":
        return ThreadsSubstrate(workers=workers, receive_timeout=receive_timeout)
    if name == "processes":
        return ProcessesSubstrate(workers=workers, receive_timeout=receive_timeout)
    if name == "sockets":
        return SocketsSubstrate(workers=workers, receive_timeout=receive_timeout)
    raise ValueError(f"unknown substrate {name!r}; choose from {BACKEND_NAMES}")


__all__ = [
    "Backend",
    "BackendError",
    "BackendTelemetry",
    "BACKEND_NAMES",
    "Compute",
    "Mailbox",
    "ProcessesBackend",
    "ProcessesSubstrate",
    "Receive",
    "SharedBundle",
    "SimulatedBackend",
    "SimulatedSubstrate",
    "SocketsBackend",
    "SocketsSubstrate",
    "Substrate",
    "ThreadsBackend",
    "ThreadsSubstrate",
    "WorkerJob",
    "create_backend",
    "create_substrate",
]
