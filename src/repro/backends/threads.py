"""The in-process threads backend: a persistent pool of worker threads.

Mailboxes are ``queue.Queue`` instances, sends are queue puts, receives are blocking
queue gets.  Python's GIL serialises pure-Python compute, so this backend demonstrates
real *concurrency* (overlapping blocking waits, true message passing) rather than
parallel speedup — but it exercises the identical protocol code on a real substrate and
is the cheapest way to run the evaluators off the simulator.

Two lifecycles share the implementation:

* :class:`ThreadsSubstrate` — the persistent pool: long-lived worker threads pull
  process bodies from a shared job channel and survive across compilations, so
  per-compilation thread spawn/join cost disappears and many run sessions can execute
  concurrently on one pool (the pool grows on demand so that every body of a session
  can run at once — bodies block on each other's messages, so a session's batch must
  never queue behind itself);
* :class:`ThreadsBackend` — the legacy one-shot API: a single run session bound to a
  private pool that is started lazily and retired when the run finishes.

Failure handling: any body that raises flips the owning *session's* failure flag and
injects a :class:`~repro.backends.base.WakeToken` into every mailbox of the session;
the other bodies sleep in genuinely blocking receives (no polling ticks) and the
token rouses them so the session unwinds promptly instead of deadlocking, while
unrelated sessions on the same pool keep running.  :meth:`ThreadsSession.run`
re-raises the first error.
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
import weakref
from typing import Any, Generator, List, Optional, Tuple

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    FaultError,
    Mailbox,
    Substrate,
    WakeToken,
    WorkerJob,
    apply_send_faults,
    blocking_receive,
    drive,
)
from repro.faults import plan as _faults


class QueueMailbox(Mailbox):
    """A mailbox backed by a FIFO queue (``queue.Queue`` or ``multiprocessing.Queue``)."""

    __slots__ = ("queue",)

    def __init__(self, name: str, fifo: Any):
        super().__init__(name)
        self.queue = fifo


class ThreadsSubstrate(Substrate):
    """A persistent pool of OS worker threads shared by many run sessions."""

    name = "threads"

    #: Default bound on blocking receives (seconds) when none is configured.
    DEFAULT_RECEIVE_TIMEOUT = 60.0

    def __init__(self, workers: int = 0, receive_timeout: Optional[float] = None):
        super().__init__()
        self.receive_timeout = (
            self.DEFAULT_RECEIVE_TIMEOUT if receive_timeout is None else receive_timeout
        )
        self._initial_workers = workers
        self._jobs: "queue.SimpleQueue[Optional[Tuple[ThreadsSession, Generator, str]]]" = (
            queue.SimpleQueue()
        )
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._busy = 0
        self._pending = 0
        self._active: "weakref.WeakSet[ThreadsSession]" = weakref.WeakSet()
        self._started = False
        self._stopped = False
        self._leaked_workers = 0

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> "ThreadsSubstrate":
        with self._lock:
            if self._stopped:
                raise BackendError("threads substrate has been shut down")
            if not self._started:
                self._started = True
                for _ in range(self._initial_workers):
                    self._spawn_worker_locked()
        return self

    def shutdown(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            count = len(self._threads)
            threads = list(self._threads)
            sessions = list(self._active)
        # Unwind any compilation still in flight: its blocked receives sleep inside a
        # real queue.get, so flip the failure flag AND wake every mailbox — the pool
        # threads come back promptly instead of sitting out the full receive timeout.
        for session in sessions:
            if not session._done.is_set():
                session._fail("threads substrate shut down mid-run")
        for _ in range(count):
            self._jobs.put(None)
        leaked = []
        for thread in threads:
            thread.join(timeout=5.0)
            if thread.is_alive():
                leaked.append(thread.name)
        if leaked:
            # A worker that outlives its join window is wedged in user compute (a
            # blocked receive would have been woken above).  Surface the leak
            # instead of silently abandoning the thread: the count feeds
            # ServiceStats.leaked_workers and the warning names the threads.
            with self._lock:
                self._leaked_workers += len(leaked)
            warnings.warn(
                f"threads substrate shutdown left {len(leaked)} worker thread(s) "
                f"running past the 5s join window: {', '.join(sorted(leaked))}",
                RuntimeWarning,
                stacklevel=2,
            )
        # Any job the exiting workers never picked up must still be settled, or its
        # session's run() would wait on the completion event forever.
        while True:
            try:
                item = self._jobs.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            session, _body, name = item
            session._body_never_ran(
                name, BackendError("threads substrate shut down before body ran")
            )

    def session(
        self,
        machines: int = 1,
        *,
        receive_timeout: Optional[float] = None,
    ) -> "ThreadsSession":
        self.start()
        with self._lock:
            self._sessions_opened += 1
        return ThreadsSession(
            self, self.receive_timeout if receive_timeout is None else receive_timeout
        )

    @property
    def pool_size(self) -> int:
        """How many worker threads are alive (grows with the largest batch seen)."""
        with self._lock:
            return len(self._threads)

    @property
    def leaked_workers(self) -> int:
        """Worker threads that survived their shutdown join window (should be 0)."""
        with self._lock:
            return self._leaked_workers

    # ---------------------------------------------------------------- internals

    def _spawn_worker_locked(self) -> None:
        thread = threading.Thread(
            target=self._worker_loop,
            name=f"repro-pool-{len(self._threads)}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _dispatch(self, session: "ThreadsSession", prepared: List[Tuple[Generator, str]]) -> None:
        """Enqueue one session's bodies, growing the pool so they all run at once."""
        with self._lock:
            if self._stopped:
                raise BackendError("threads substrate has been shut down")
            if not self._started:
                raise BackendError(
                    "threads substrate not started; call start() or use a with block"
                )
            available = len(self._threads) - self._busy - self._pending
            for _ in range(max(0, len(prepared) - available)):
                self._spawn_worker_locked()
            self._pending += len(prepared)
            self._active.add(session)
            # Enqueue under the lock so shutdown() (which also takes it) observes
            # either no jobs or all of them — never a half-dispatched batch whose
            # missing half could strand the session's completion event.
            for body, name in prepared:
                self._jobs.put((session, body, name))

    def _worker_loop(self) -> None:
        while True:
            item = self._jobs.get()
            if item is None:
                return
            session, body, name = item
            with self._lock:
                self._pending -= 1
                self._busy += 1
            try:
                session._run_body(body, name)
            finally:
                # Release the pool slot BEFORE signalling the session's completion
                # event: a caller woken by run() may immediately dispatch its next
                # batch, and must see this thread as available again — otherwise the
                # pool grows by one idle thread per back-to-back compilation.
                with self._lock:
                    self._busy -= 1
                session._body_finished()


class ThreadsSession(Backend):
    """One compilation run on a :class:`ThreadsSubstrate` pool."""

    name = "threads"

    def __init__(self, substrate: ThreadsSubstrate, receive_timeout: float):
        super().__init__()
        self._substrate = substrate
        self.receive_timeout = receive_timeout
        self._bodies: List[Tuple[Any, str]] = []
        self._failed = threading.Event()
        self._errors: List[Tuple[str, BaseException]] = []
        self._lock = threading.Lock()
        self._messages = 0
        self._bytes = 0
        self._start: Optional[float] = None
        self._remaining = 0
        self._done = threading.Event()
        self._ran = False
        self._closed = False
        self._mailboxes: List[QueueMailbox] = []

    # ----------------------------------------------------------------- plumbing

    def mailbox(self, name: str) -> QueueMailbox:
        mailbox = QueueMailbox(name, queue.Queue())
        self._mailboxes.append(mailbox)
        return mailbox

    def spawn(
        self,
        body: Any,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        if not coordinator:
            self._worker_count += 1
        self._bodies.append((body, name))

    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        assert isinstance(mailbox, QueueMailbox)
        if _faults.ACTIVE is not None:
            replacement = apply_send_faults(mailbox.name, message)
            if replacement is not None:
                for copy in replacement:
                    mailbox.queue.put(copy)
                with self._lock:
                    self._messages += len(replacement)
                    self._bytes += size_bytes * len(replacement)
                return
        mailbox.queue.put(message)
        with self._lock:
            self._messages += 1
            self._bytes += size_bytes

    def run(self) -> float:
        if self._ran:
            raise BackendError("a run session can only be run once")
        self._ran = True
        self._start = time.perf_counter()
        prepared: List[Tuple[Generator, str]] = []
        for body, name in self._bodies:
            if isinstance(body, WorkerJob):
                body = body.materialize(self)
            prepared.append((body, name))
        self._remaining = len(prepared)
        if not prepared:
            self._done.set()
            return 0.0
        try:
            self._substrate._dispatch(self, prepared)
        except BaseException:
            # Nothing was enqueued: settle the completion event ourselves so
            # close() doesn't wait for bodies that will never run.
            with self._lock:
                self._remaining = 0
                self._done.set()
            raise
        self._done.wait()
        if self._errors:
            name, error = self._errors[0]
            raise BackendError(f"worker {name!r} failed: {error}") from error
        return time.perf_counter() - self._start

    @property
    def now(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def telemetry(self) -> BackendTelemetry:
        return BackendTelemetry(network_messages=self._messages, network_bytes=self._bytes)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._ran and not self._done.is_set():
            # Unwind any of this session's bodies still blocked in a receive: flip the
            # failure flag and wake every mailbox so sleeping readers return at once.
            self._fail("session closed mid-run")
            self._done.wait(timeout=10.0)

    # ---------------------------------------------------------------- internals

    def _fail(self, reason: str) -> None:
        """Flag the session failed and wake every blocked receiver it owns."""
        self._failed.set()
        for mailbox in self._mailboxes:
            mailbox.queue.put(WakeToken(reason))

    def _run_body(self, body: Generator, name: str) -> None:
        try:
            drive(body, lambda mailbox: self._receive(mailbox, name))
        except BaseException as error:  # noqa: BLE001 — reported via run()
            with self._lock:
                self._errors.append((name, error))
            self._fail(f"worker {name!r} failed")

    def _body_finished(self) -> None:
        """Completion accounting, called by the pool after the slot is released."""
        with self._lock:
            self._remaining -= 1
            if self._remaining == 0:
                self._done.set()

    def _receive(self, mailbox: QueueMailbox, who: str) -> Any:
        if _faults.ACTIVE is not None:
            # A thread cannot be SIGKILLed, so a "crash" here is a typed error:
            # the session unwinds its siblings and run() raises — the invariant's
            # clean-failure arm for the in-process substrates.
            hit = _faults.ACTIVE.check("worker.crash", who)
            if hit is not None:
                raise FaultError("worker.crash", hit.action, who)
        return blocking_receive(
            mailbox.queue, self.receive_timeout, self._failed, who, mailbox.name
        )

    def _body_never_ran(self, name: str, error: BaseException) -> None:
        """Settle accounting for a dispatched body no pool worker will ever run."""
        with self._lock:
            self._errors.append((name, error))
        self._fail("substrate shut down before body ran")
        with self._lock:
            self._remaining -= 1
            if self._remaining == 0:
                self._done.set()


class ThreadsBackend(ThreadsSession):
    """The one-shot threads API: a session bound to a private single-use pool.

    Preserves the original create→spawn→run semantics (one fresh thread per body)
    while being expressed through the substrate/session split: the private pool
    starts empty, grows to exactly one thread per body on ``run()``, and is retired
    when the run finishes or the session is closed.
    """

    def __init__(self, receive_timeout: float = 60.0):
        substrate = ThreadsSubstrate(workers=0, receive_timeout=receive_timeout)
        substrate.start()
        super().__init__(substrate, receive_timeout)

    def run(self) -> float:
        try:
            return super().run()
        finally:
            # Every body has finished (run waits for stragglers even on failure), so
            # the private pool can be torn down immediately.
            self._substrate.shutdown()

    def close(self) -> None:
        super().close()
        self._substrate.shutdown()
