"""The in-process threads backend: one OS thread per spawned body.

Mailboxes are ``queue.Queue`` instances, sends are queue puts, receives are blocking
queue gets.  Python's GIL serialises pure-Python compute, so this backend demonstrates
real *concurrency* (overlapping blocking waits, true message passing) rather than
parallel speedup — but it exercises the identical protocol code on a real substrate and
is the cheapest way to run the evaluators off the simulator.

Failure handling: any body that raises flips a shared failure flag; every other body's
blocking receive polls the flag so the whole run unwinds promptly instead of
deadlocking, and :meth:`ThreadsBackend.run` re-raises the first error.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Generator, List, Optional, Tuple

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    Mailbox,
    drive,
    poll_receive,
)


class QueueMailbox(Mailbox):
    """A mailbox backed by a FIFO queue (``queue.Queue`` or ``multiprocessing.Queue``)."""

    __slots__ = ("queue",)

    def __init__(self, name: str, fifo: Any):
        super().__init__(name)
        self.queue = fifo


class ThreadsBackend(Backend):
    """Run the distributed protocol on OS threads with queue mailboxes."""

    name = "threads"

    def __init__(self, receive_timeout: float = 60.0):
        super().__init__()
        self.receive_timeout = receive_timeout
        self._bodies: List[Tuple[Generator, str]] = []
        self._failed = threading.Event()
        self._errors: List[Tuple[str, BaseException]] = []
        self._lock = threading.Lock()
        self._messages = 0
        self._bytes = 0
        self._start: Optional[float] = None

    # ----------------------------------------------------------------- plumbing

    def mailbox(self, name: str) -> QueueMailbox:
        return QueueMailbox(name, queue.Queue())

    def spawn(
        self,
        body: Generator,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        if not coordinator:
            self._worker_count += 1
        self._bodies.append((body, name))

    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        assert isinstance(mailbox, QueueMailbox)
        mailbox.queue.put(message)
        with self._lock:
            self._messages += 1
            self._bytes += size_bytes

    def run(self) -> float:
        self._start = time.perf_counter()
        threads = [
            threading.Thread(target=self._run_body, args=(body, name), name=name, daemon=True)
            for body, name in self._bodies
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self._errors:
            name, error = self._errors[0]
            raise BackendError(f"worker {name!r} failed: {error}") from error
        return time.perf_counter() - self._start

    @property
    def now(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def telemetry(self) -> BackendTelemetry:
        return BackendTelemetry(network_messages=self._messages, network_bytes=self._bytes)

    # ---------------------------------------------------------------- internals

    def _run_body(self, body: Generator, name: str) -> None:
        try:
            drive(body, lambda mailbox: self._receive(mailbox, name))
        except BaseException as error:  # noqa: BLE001 — reported via run()
            with self._lock:
                self._errors.append((name, error))
            self._failed.set()

    def _receive(self, mailbox: QueueMailbox, who: str) -> Any:
        return poll_receive(
            mailbox.queue, self.receive_timeout, self._failed, who, mailbox.name
        )
