"""The multiprocessing backend: real OS processes with pickled protocol messages.

Mailboxes are ``multiprocessing.Queue`` instances, so every message that crosses a
worker boundary — linearized subtrees, boundary attribute values, code fragments,
descriptors, results — round-trips through pickle, exactly like bytes on a wire.

Two lifecycles are provided:

* :class:`ProcessesSubstrate` — the persistent pool.  ``start()`` forks long-lived
  worker processes that pull *job specs* (picklable :class:`~repro.backends.base.WorkerJob`
  descriptions, not generators) from per-worker job channels and survive across
  compilations, so fork cost is paid once, not per compile.  Large immutable objects
  (grammar + evaluation plan bundles) are shipped to each worker once and cached there
  by key; mailboxes are leased from a fixed registry of queues created before the
  first fork so that children inherit every transport handle they will ever need.
  The pool grows on demand (``fork`` start method, so late workers inherit the same
  registry), and many run sessions may be in flight concurrently.

* :class:`ProcessesBackend` — the legacy one-shot API.  Workers are forked *after*
  the coordinator has built the grammar and every process body, so the process bodies
  are inherited copy-on-write and never serialised; this is the only processes path
  that can run arbitrary in-memory generators (and unpicklable grammars).

Placement (both lifecycles): worker bodies (the evaluators) execute on forked OS
processes; coordinator bodies (parser, librarian) run on threads inside the driving
process, where they can share the compilation outcome with the caller.  Worker reports
come back out-of-band on a control queue via ``publish_report``.

Requires a POSIX ``fork`` start method (Linux/macOS); on platforms without it,
construction raises :class:`BackendError` — use the threads backend there.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
import queue as queue_module
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    FaultError,
    Mailbox,
    SharedBundle,
    Substrate,
    WakeToken,
    WorkerJob,
    apply_receive_faults,
    apply_send_faults,
    blocking_receive,
    deadline_get,
    drain_fifo,
    drive,
)
from repro.backends.threads import QueueMailbox
from repro.faults import plan as _faults
from repro.faults.plan import FaultPlan


# ---------------------------------------------------------------------------- wire


@dataclass(frozen=True)
class _MailboxRef:
    """Registry index standing in for a mailbox inside a pickled job spec."""

    index: int
    name: str


class RegistryMailbox(QueueMailbox):
    """A mailbox leased from a :class:`ProcessesSubstrate` registry slot."""

    __slots__ = ("index",)

    def __init__(self, name: str, fifo: Any, index: int):
        super().__init__(name, fifo)
        self.index = index


def _encode_wire(value: Any) -> Any:
    """Replace mailboxes with registry references, recursing into containers."""
    if isinstance(value, RegistryMailbox):
        return _MailboxRef(value.index, value.name)
    if isinstance(value, Mailbox):
        raise BackendError(
            f"mailbox {value.name!r} was not leased from this substrate's registry "
            "and cannot cross to a pooled worker"
        )
    if isinstance(value, dict):
        return {key: _encode_wire(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_encode_wire(item) for item in value)
    return value


def _decode_wire(value: Any, registry: List[Any]) -> Any:
    """Child-side inverse of :func:`_encode_wire`.

    Mailboxes decode to :class:`RegistryMailbox` (index preserved) so the child
    transport can name the destination slot in routed sends and claims.
    """
    if isinstance(value, _MailboxRef):
        return RegistryMailbox(value.name, registry[value.index], value.index)
    if isinstance(value, dict):
        return {key: _decode_wire(item, registry) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_decode_wire(item, registry) for item in value)
    return value


# ---------------------------------------------------------------------- child side


class _JobAborted(Exception):
    """Raised inside a pooled worker when the parent flags the current job aborted."""


class _ChildTransport:
    """The Backend facade seen by a job running inside a pooled worker process.

    Sends do not touch the destination queue directly: they travel to the parent
    on the control queue (``("send", session, job, seq, mailbox index, message)``)
    and the dispatcher routes them.  That single hop is what makes pooled-worker
    death recoverable: the parent logs every message per mailbox, so a respawned
    worker can replay the job from the full history, and the per-job send
    sequence number lets the parent suppress the replay's duplicate outputs —
    the same claim/log/forwarded design the sockets cluster coordinator uses.
    It also confines the SIGKILL hazard: a mailbox queue now has exactly one
    writer (the parent) and one reader, so a dying sibling can never wedge it.
    """

    name = "processes"

    def __init__(
        self,
        control: Any,
        session_id: int,
        job_name: str,
        abort_event: Any,
        receive_timeout: float,
    ):
        self._control = control
        self._session_id = session_id
        self._job_name = job_name
        self._abort = abort_event
        self._timeout = receive_timeout
        self._started = time.perf_counter()
        self._send_seq = 0
        self._claimed: Set[int] = set()
        self.messages = 0
        self.bytes = 0

    def _route(self, mailbox: "RegistryMailbox", message: Any) -> None:
        self._send_seq += 1
        self._control.put(
            ("send", self._session_id, self._job_name, self._send_seq,
             mailbox.index, message)
        )

    def send(self, source: int, destination: int, message: Any, size_bytes: int,
             mailbox: "RegistryMailbox") -> None:
        if _faults.ACTIVE is not None:
            replacement = apply_send_faults(mailbox.name, message)
            if replacement is not None:
                for copy in replacement:
                    self._route(mailbox, copy)
                self.messages += len(replacement)
                self.bytes += size_bytes * len(replacement)
                return
        self._route(mailbox, message)
        self.messages += 1
        self.bytes += size_bytes

    def publish_report(self, region_id: int, report: Any) -> None:
        self._control.put(("report", self._session_id, region_id, report))

    @property
    def now(self) -> float:
        return time.perf_counter() - self._started

    def receive(self, mailbox: "RegistryMailbox") -> Any:
        if mailbox.index not in self._claimed:
            # Claim before the first blocking read, so that if this process dies
            # mid-receive the parent knows which mailbox history to rebuild for
            # the replay.  (A SIGKILL can in principle still beat the control
            # queue's feeder thread to the pipe; the replay then misses the
            # claim, the re-executed job times out on its receive bound and the
            # compile fails *typed* — bounded, never a hang.)
            self._claimed.add(mailbox.index)
            self._control.put(("claim", self._session_id, self._job_name, mailbox.index))
        if _faults.ACTIVE is not None:
            apply_receive_faults(self._job_name, mailbox.name)
            hit = _faults.ACTIVE.check("worker.crash", self._job_name)
            if hit is not None:
                if hit.action == "crash":
                    # A hard, SIGKILL-like death at a point where no queue locks
                    # are held.  The brief sleep lets the control queue's feeder
                    # flush the claims/sends already issued, mirroring what a
                    # real mid-evaluation kill looks like.
                    time.sleep(0.05)
                    os._exit(3)
                raise FaultError("worker.crash", hit.action, self._job_name)
        # Genuinely blocking: the worker sleeps in the OS until a message (or a
        # WakeToken injected by the parent's abort path) lands in the mailbox, so the
        # per-message latency floor is the queue transport itself, not a poll tick.
        deadline = time.monotonic() + self._timeout
        while True:
            if self._abort.is_set():
                raise _JobAborted()
            message = deadline_get(
                mailbox.queue, deadline, self._timeout, "pooled worker", mailbox.name
            )
            if isinstance(message, WakeToken):
                continue
            return message


def _pool_worker_main(
    worker_index: int,
    job_queue: Any,
    control: Any,
    registry: List[Any],
    abort_event: Any,
) -> None:
    """Entry point of a long-lived pooled worker process.

    Pulls pickled job specs until poisoned with ``None``.  Shared bundles (grammar +
    plan) arrive at most once and are cached by key for every later job.  A failing or
    aborted job is reported on the control queue and the worker stays alive for the
    next job — one bad compilation never costs the pool a fork.
    """
    shared_cache: Dict[int, Any] = {}
    _faults.load_from_env()
    adopted_fault_token: Optional[str] = os.environ.get(_faults.ENV_VAR)
    while True:
        item = job_queue.get()
        if item is None:
            return
        (session_id, name, payload_blob, shared_blobs, receive_timeout,
         fault_token) = item
        # The fault plan ships with the job, like a (tiny) language bundle, so a
        # plan installed after this worker forked still reaches it; the token is
        # cached so an unchanged plan is decoded once per worker, and a cleared
        # plan deactivates injection here too.
        if fault_token != adopted_fault_token:
            adopted_fault_token = fault_token
            try:
                _faults.ACTIVE = FaultPlan.decode(fault_token) if fault_token else None
            except Exception:
                _faults.ACTIVE = None
        # The abort event is cleared by the PARENT (under its lock) when this job is
        # assigned and when job-completion records are processed; clearing it here
        # could erase an abort meant for this very job.
        try:
            for key, blob in shared_blobs.items():
                shared_cache[key] = pickle.loads(blob)
            factory, encoded_kwargs, shared_keys = pickle.loads(payload_blob)
            kwargs = _decode_wire(encoded_kwargs, registry)
            for argument, key in shared_keys.items():
                kwargs[argument] = shared_cache[key]
            transport = _ChildTransport(
                control, session_id, name, abort_event, receive_timeout
            )
            body = factory(transport, **kwargs)
            drive(body, transport.receive)
            control.put(
                ("done", session_id, worker_index, name, transport.messages, transport.bytes)
            )
        except _JobAborted:
            control.put(("aborted", session_id, worker_index, name))
        except BaseException:  # noqa: BLE001 — shipped to the parent; worker survives
            control.put(("error", session_id, worker_index, name, traceback.format_exc()))


# --------------------------------------------------------------------- parent side


class _PoolWorker:
    """Parent-side bookkeeping for one long-lived worker process."""

    __slots__ = (
        "index", "process", "job_queue", "abort_event", "known_keys", "current",
        "inflight",
    )

    def __init__(self, index: int, process: Any, job_queue: Any, abort_event: Any):
        self.index = index
        self.process = process
        self.job_queue = job_queue
        self.abort_event = abort_event
        self.known_keys: set = set()
        self.current: Optional[Tuple[int, str]] = None  # (session_id, job name)
        #: Everything needed to re-execute the current job on a respawned worker:
        #: (session_id, name, payload_blob, shared key tuple, receive_timeout).
        self.inflight: Optional[Tuple[int, str, bytes, Tuple[int, ...], float]] = None


class ProcessesSubstrate(Substrate):
    """A persistent pool of forked worker processes shared by many run sessions."""

    name = "processes"

    #: Default bound on blocking receives (seconds) when none is configured.
    DEFAULT_RECEIVE_TIMEOUT = 120.0

    #: How many times one job may be re-executed after worker deaths before the
    #: session gives up with a typed error.
    MAX_RESPAWNS = 3

    def __init__(
        self,
        workers: int = 0,
        mailbox_capacity: int = 128,
        receive_timeout: Optional[float] = None,
        max_respawns: Optional[int] = None,
    ):
        super().__init__()
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:
            raise BackendError(
                "the processes substrate requires the 'fork' multiprocessing start "
                "method (POSIX only); use the threads substrate on this platform"
            ) from error
        self.receive_timeout = (
            self.DEFAULT_RECEIVE_TIMEOUT if receive_timeout is None else receive_timeout
        )
        self.mailbox_capacity = mailbox_capacity
        self.max_respawns = self.MAX_RESPAWNS if max_respawns is None else max_respawns
        self._initial_workers = workers
        self._lock = threading.Lock()
        self._workers: List[_PoolWorker] = []
        self._next_worker_index = 0
        self._registry: List[Any] = []
        self._free_mailboxes: List[int] = []
        #: Registry slots permanently taken out of circulation after a worker
        #: death: live workers forked earlier still hold the pre-replacement
        #: queue for these indexes, so re-leasing them could silently split a
        #: mailbox across two queues.  Recovery is rare; leaking a slot is safe.
        self._retired_slots: Set[int] = set()
        self._respawns = 0
        self._control: Optional[Any] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._sessions: Dict[int, "ProcessesSession"] = {}
        self._session_seq = 0
        self._shared_ids: Dict[Tuple[int, ...], int] = {}  # component ids -> key
        self._shared_objects: Dict[int, Any] = {}   # key -> obj (keeps ids stable)
        self._shared_blobs: Dict[int, bytes] = {}
        self._next_shared_key = 0
        self._started = False
        self._stopped = False

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> "ProcessesSubstrate":
        with self._lock:
            if self._stopped:
                raise BackendError("processes substrate has been shut down")
            if self._started:
                return self
            self._started = True
            self._control = self._context.Queue()
            # The whole mailbox registry is created before the first fork so every
            # worker — including ones forked later to grow the pool — inherits every
            # transport handle a session could ever lease.
            self._registry = [self._context.Queue() for _ in range(self.mailbox_capacity)]
            self._free_mailboxes = list(range(self.mailbox_capacity))
            for _ in range(self._initial_workers):
                self._fork_worker_locked()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-pool-dispatcher", daemon=True
            )
            self._dispatcher.start()
        return self

    def shutdown(self) -> None:
        with self._lock:
            if self._stopped or not self._started:
                self._stopped = True
                return
            self._stopped = True
            workers = list(self._workers)
            sessions = list(self._sessions.values())
        for session in sessions:
            # Fail the whole in-flight run, not just its receives: the dispatcher is
            # about to exit, so the workers' final control records will never be
            # routed — without an error and a completed jobs-event, run() would wait
            # on those records forever (or, worse, report an aborted run as success).
            with session._lock:
                session._errors.append(
                    ("substrate", "processes substrate was shut down mid-run")
                )
            session._failed.set()
            session._jobs_event.set()
        for worker in workers:
            # Abort flags must be set BEFORE the mailboxes are woken: a worker roused
            # by a token re-checks its abort event and must find it already flipped,
            # or it would go straight back to sleep with no second wake coming.
            if worker.process.is_alive():
                worker.abort_event.set()
        for session in sessions:
            session._wake_mailboxes("processes substrate shut down")
        for worker in workers:
            if worker.process.is_alive():
                worker.job_queue.put(None)
        if self._dispatcher is not None:
            if self._control is not None:
                self._control.put(None)  # rouse the dispatcher's blocking get
            self._dispatcher.join(timeout=5.0)
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)

    def session(
        self,
        machines: int = 1,
        *,
        receive_timeout: Optional[float] = None,
    ) -> "ProcessesSession":
        self.start()
        with self._lock:
            self._sessions_opened += 1
            self._session_seq += 1
            session_id = self._session_seq
        return ProcessesSession(
            self,
            session_id,
            self.receive_timeout if receive_timeout is None else receive_timeout,
        )

    @property
    def pool_size(self) -> int:
        """How many worker processes are alive (grows with the largest batch seen)."""
        with self._lock:
            return sum(1 for worker in self._workers if worker.process.is_alive())

    @property
    def respawns(self) -> int:
        """Workers respawned after an unexpected death (feeds ServiceStats)."""
        with self._lock:
            return self._respawns

    # ------------------------------------------------------------ pool plumbing

    def _fork_worker_locked(self) -> _PoolWorker:
        if _faults.ACTIVE is not None:
            hit = _faults.ACTIVE.check("worker.spawn", f"worker-{self._next_worker_index}")
            if hit is not None:
                raise FaultError("worker.spawn", hit.action, f"worker-{self._next_worker_index}")
        # Forking here is safe even though the parent is multi-threaded (dispatcher,
        # service executors, other sessions' coordinators may be mid-put on shared
        # queues): multiprocessing.Queue registers an after-fork hook that re-inits
        # its internal condition lock and buffer in the child (Queue._reset with
        # after_fork=True), and the child's first action is our own worker loop,
        # which touches nothing else inherited.
        index = self._next_worker_index
        self._next_worker_index += 1
        job_queue = self._context.Queue()
        abort_event = self._context.Event()
        process = self._context.Process(
            target=_pool_worker_main,
            args=(index, job_queue, self._control, self._registry, abort_event),
            name=f"repro-pool-worker-{index}",
            daemon=True,
        )
        process.start()
        worker = _PoolWorker(index, process, job_queue, abort_event)
        self._workers.append(worker)
        return worker

    def _lease_mailbox(self, name: str) -> RegistryMailbox:
        with self._lock:
            if not self._started:
                raise BackendError("processes substrate not started")
            if not self._free_mailboxes:
                raise BackendError(
                    f"mailbox registry exhausted ({self.mailbox_capacity} slots); "
                    "raise mailbox_capacity or lower the number of concurrent sessions"
                )
            index = self._free_mailboxes.pop()
        return RegistryMailbox(name, self._registry[index], index)

    def _release_mailboxes(self, leased: List[RegistryMailbox], settle: bool) -> None:
        """Drain and return leased registry slots so the next lease starts empty.

        ``settle`` waits out in-flight queue feeders after a failed run; a clean run
        leaves its mailboxes empty by protocol, so the fast path never blocks at all.
        """
        for mailbox in leased:
            drain_fifo(mailbox.queue, settle_timeout=0.1 if settle else 0.0)
        with self._lock:
            for mailbox in leased:
                if mailbox.index in self._retired_slots:
                    continue  # replaced after a worker death; never re-lease
                self._free_mailboxes.append(mailbox.index)

    def _replace_registry_slot(self, index: int) -> Any:
        """Swap registry slot ``index`` for a fresh queue and retire the slot.

        Called during worker-death recovery, *before* the replacement fork, so
        the respawned worker inherits the fresh queue under the same index and
        the job's pickled payload (which references mailboxes by index) replays
        unchanged.  The old queue — possibly wedged by the death — is abandoned.
        """
        with self._lock:
            fresh = self._context.Queue()
            self._registry[index] = fresh
            self._retired_slots.add(index)
            return fresh

    def _shared_entry(self, obj: Any) -> int:
        # Two dedup regimes.  A SharedBundle carries an explicit stable name (the
        # language registry's bundle key), so every caller-side compiler for one
        # registered language maps to one cache entry — the payload crosses to each
        # worker once ever, even when callers rebuild grammar/plan objects per call
        # site.  Everything else is keyed by component identity: grammar bundles are
        # rebuilt as fresh (grammar, plan) tuples by every thin-client compiler
        # instance, but the grammar and plan objects themselves are stable — dedup on
        # those so each worker receives a given grammar exactly once.  The payloads
        # stay pinned for the substrate's lifetime (the ident is the cache key); their
        # pickled blobs are evicted once every live worker has received them and
        # re-pickled only if the pool later grows.
        if isinstance(obj, SharedBundle):
            ident: Tuple = ("named", obj.key)
            payload = obj.payload
        else:
            ident = (
                tuple(id(part) for part in obj) if isinstance(obj, tuple) else (id(obj),)
            )
            payload = obj
        key = self._shared_ids.get(ident)
        if key is None:
            key = self._next_shared_key
            self._next_shared_key += 1
            self._shared_ids[ident] = key
            self._shared_objects[key] = payload
        return key

    def _shared_blob(self, key: int) -> bytes:
        blob = self._shared_blobs.get(key)
        if blob is None:
            try:
                blob = pickle.dumps(self._shared_objects[key])
            except Exception as error:
                raise BackendError(
                    "shared objects (grammar/plan bundles) must be picklable for the "
                    "pooled processes substrate; use module-level semantic functions "
                    "and converters, or the threads substrate instead"
                ) from error
            self._shared_blobs[key] = blob
        return blob

    def _evict_delivered_blobs_locked(self) -> None:
        """Free pickled bundles every live worker already holds (lazily re-created)."""
        for key in list(self._shared_blobs):
            if all(key in worker.known_keys for worker in self._workers):
                del self._shared_blobs[key]

    def _register(self, session: "ProcessesSession") -> None:
        with self._lock:
            self._sessions[session.session_id] = session

    def _unregister(self, session: "ProcessesSession") -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    def _submit_jobs(
        self, session: "ProcessesSession", jobs: List[Tuple[WorkerJob, str]]
    ) -> None:
        """Assign one session's worker jobs, growing the pool so all run at once.

        Every job of a batch gets its own worker immediately: pooled bodies block on
        each other's messages, so a batch queued behind itself would deadlock.
        """
        with self._lock:
            if self._stopped:
                raise BackendError("processes substrate has been shut down")
            free = [
                worker
                for worker in self._workers
                if worker.current is None and worker.process.is_alive()
            ]
            while len(free) < len(jobs):
                free.append(self._fork_worker_locked())
            active_plan = _faults.ACTIVE
            fault_token = active_plan.encode() if active_plan is not None else None
            for index, ((job, name), worker) in enumerate(zip(jobs, free)):
                try:
                    shared_keys: Dict[str, int] = {}
                    shared_blobs: Dict[int, bytes] = {}
                    for argument, obj in job.shared.items():
                        key = self._shared_entry(obj)
                        shared_keys[argument] = key
                        if key not in worker.known_keys:
                            shared_blobs[key] = self._shared_blob(key)
                    # Pickle in the caller (not the queue's feeder thread) so
                    # unpicklable kwargs fail loudly here, not as a hung run.
                    try:
                        payload_blob = pickle.dumps(
                            (job.factory, _encode_wire(dict(job.kwargs)), shared_keys)
                        )
                    except Exception as error:
                        raise BackendError(
                            f"worker job {name!r} is not picklable for the pooled "
                            "processes substrate; use the threads substrate or the "
                            "one-shot ProcessesBackend"
                        ) from error
                    # A stale abort (from a previous assignment, already settled
                    # under this lock) must not leak into the job about to be queued;
                    # clear before the put — the child may dequeue it immediately.
                    worker.abort_event.clear()
                    worker.job_queue.put(
                        (session.session_id, name, payload_blob, shared_blobs,
                         session.receive_timeout, fault_token)
                    )
                except BaseException:
                    # Jobs from this one on were never enqueued: settle their share
                    # of the session's completion count so close() doesn't stall.
                    session._account_unsubmitted(len(jobs) - index)
                    raise
                # Only a delivered blob counts as known — marking earlier would let a
                # failed submit poison the cache for every later compilation.
                worker.known_keys.update(shared_blobs)
                worker.current = (session.session_id, name)
                # Retained until the job completes: a dead worker's job is
                # re-executed from this record on a respawned worker.
                worker.inflight = (
                    session.session_id, name, payload_blob,
                    tuple(shared_keys.values()), session.receive_timeout,
                )
            self._evict_delivered_blobs_locked()

    def _abort_session(self, session: "ProcessesSession") -> None:
        """Flag every pooled worker still running a job of ``session`` to unwind.

        The abort event alone is not enough with blocking receives — a worker asleep
        in ``queue.get`` never looks at it — so the session's mailboxes are also woken
        with tokens; the roused worker re-checks the event and unwinds.
        """
        with self._lock:
            for worker in self._workers:
                if worker.current is not None and worker.current[0] == session.session_id:
                    worker.abort_event.set()
        session._wake_mailboxes("session aborted")

    # ----------------------------------------------------------------- dispatcher

    def _dispatch_loop(self) -> None:
        """Drain the control queue and watch worker liveness until shutdown.

        Blocks on the control queue, so completion/report records are routed the
        moment they arrive; the timeout only paces the liveness sweep for workers
        that die without a record.  ``shutdown()`` wakes the loop with a ``None``.
        """
        last_liveness = 0.0
        while True:
            with self._lock:
                if self._stopped:
                    return
            try:
                record = self._control.get(timeout=0.2)
            except queue_module.Empty:
                record = None
            if record is not None:
                self._handle_record(record)
            now = time.monotonic()
            if now - last_liveness >= 0.2:
                last_liveness = now
                self._check_liveness()

    def _handle_record(self, record: Tuple) -> None:
        tag, session_id = record[0], record[1]
        with self._lock:
            session = self._sessions.get(session_id)
        if tag == "send":
            # ("send", session_id, job name, seq, mailbox index, message)
            if session is not None:
                session._forward(record[2], record[3], record[4], record[5])
            return
        if tag == "claim":
            # ("claim", session_id, job name, mailbox index)
            if session is not None:
                session._note_claim(record[2], record[3])
            return
        if tag == "report":
            if session is not None:
                session._reports[record[2]] = record[3]
            return
        worker_index = record[2]
        with self._lock:
            worker = next(
                (entry for entry in self._workers if entry.index == worker_index), None
            )
            if worker is None:
                # The worker was already reaped by the liveness check, which settled
                # its in-flight job then; settling again here would release the
                # session's completion event while sibling jobs are still running.
                return
            worker.current = None
            worker.inflight = None
            worker.abort_event.clear()
        if session is None:
            return
        if tag == "done":
            session._job_done(record[3], record[4], record[5])
        elif tag == "aborted":
            session._job_done(record[3], 0, 0)
        elif tag == "error":
            session._job_failed(record[3], record[4])

    def _check_liveness(self) -> None:
        dead: List[_PoolWorker] = []
        with self._lock:
            for worker in self._workers:
                if not worker.process.is_alive():
                    dead.append(worker)
            for worker in dead:
                # Removed BEFORE the replacement is forked, so any late control
                # records from the dead incarnation miss the worker lookup in
                # _handle_record and are dropped instead of double-settling.
                self._workers.remove(worker)
        for worker in dead:
            worker.process.join()
            if worker.current is not None:
                session_id, name = worker.current
                with self._lock:
                    session = self._sessions.get(session_id)
                if session is not None:
                    self._recover_job(session, worker, name)

    def _recover_job(
        self, session: "ProcessesSession", worker: _PoolWorker, name: str
    ) -> None:
        """Re-execute a dead worker's in-flight job on a freshly forked worker.

        Worker jobs are deterministic functions of their mailbox message
        sequence, so replaying the same payload against the rebuilt mailbox
        history (see :meth:`ProcessesSession._reset_claimed_mailboxes`) produces
        a byte-identical result; the dispatcher's forwarded watermark swallows
        the replay's duplicate outputs.  Runs on the dispatcher thread, so it
        never races :meth:`_handle_record`.
        """
        exitcode = worker.process.exitcode
        detail = f"worker process exited with code {exitcode}"
        inflight = worker.inflight
        if inflight is None:
            session._job_failed(name, detail)
            return
        attempts = session._bump_replay_attempts(name)
        if attempts > self.max_respawns:
            session._job_failed(
                name, f"{detail} ({attempts - 1} respawn(s) already spent)"
            )
            return
        try:
            # Fresh queues for the dead job's claimed mailboxes FIRST, so the
            # replacement forks with the updated registry.
            session._reset_claimed_mailboxes(name, self)
            session_id, job_name, payload_blob, shared_keys, receive_timeout = inflight
            with self._lock:
                if self._stopped:
                    raise BackendError("substrate shut down during recovery")
                replacement = self._fork_worker_locked()
                self._respawns += 1
                shared_blobs = {
                    key: self._shared_blob(key)
                    for key in shared_keys
                    if key not in replacement.known_keys
                }
                replacement.abort_event.clear()
                # The replay runs with NO fault plan: plan counters are process-
                # local, so re-shipping the plan would re-arm one-shot rules and
                # turn every injected crash into a crash loop.  A real SIGKILL
                # doesn't recur on the replacement either.
                replacement.job_queue.put(
                    (session_id, job_name, payload_blob, shared_blobs,
                     receive_timeout, None)
                )
                replacement.known_keys.update(shared_blobs)
                replacement.current = (session_id, job_name)
                replacement.inflight = inflight
        except BaseException as error:  # noqa: BLE001 — surfaced as a typed job failure
            session._job_failed(name, f"{detail}; respawn failed: {error!r}")
            return
        session._note_replay()


class ProcessesSession(Backend):
    """One compilation run on a :class:`ProcessesSubstrate` pool."""

    name = "processes"
    packed_wire = True
    shared_ship = True

    def __init__(self, substrate: ProcessesSubstrate, session_id: int, receive_timeout: float):
        super().__init__()
        self._substrate = substrate
        self.session_id = session_id
        self.receive_timeout = receive_timeout
        self._worker_jobs: List[Tuple[WorkerJob, str]] = []
        self._coordinators: List[Tuple[Generator, str]] = []
        self._leased: List[RegistryMailbox] = []
        self._failed = threading.Event()
        self._errors: List[Tuple[str, str]] = []
        self._lock = threading.Lock()
        # Routing state for crash recovery.  Every message delivered to a leased
        # mailbox — parent sends and dispatcher-forwarded child sends alike — is
        # appended to its log under _route_lock, so a mailbox claimed by a job
        # that died can be rebuilt byte-identically into a fresh queue.  The
        # per-job forwarded watermark suppresses the replayed job's duplicate
        # outputs.  NOTE on lock order: _route_lock may nest the substrate lock
        # inside it (via _replace_registry_slot); never the other way around.
        self._route_lock = threading.Lock()
        self._by_index: Dict[int, RegistryMailbox] = {}
        self._logs: Dict[int, List[Any]] = {}
        self._claims: Dict[str, Set[int]] = {}     # job name -> claimed slots
        self._forwarded: Dict[str, int] = {}       # job name -> last forwarded seq
        self._replay_attempts: Dict[str, int] = {}
        self._replays = 0
        self._messages = 0
        self._bytes = 0
        self._jobs_remaining = 0
        self._jobs_event = threading.Event()
        self._start: Optional[float] = None
        self._ran = False
        self._closed = False

    # ----------------------------------------------------------------- plumbing

    def mailbox(self, name: str) -> RegistryMailbox:
        mailbox = self._substrate._lease_mailbox(name)
        self._leased.append(mailbox)
        with self._route_lock:
            self._by_index[mailbox.index] = mailbox
            self._logs[mailbox.index] = []
        return mailbox

    def spawn(
        self,
        body: Any,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        if coordinator:
            if isinstance(body, WorkerJob):
                body = body.materialize(self)
            self._coordinators.append((body, name))
            return
        if not isinstance(body, WorkerJob):
            raise BackendError(
                "pooled processes workers run from picklable WorkerJob specs; "
                "spawn raw generator bodies on the one-shot ProcessesBackend instead"
            )
        self._worker_count += 1
        self._worker_jobs.append((body, name))

    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        assert isinstance(mailbox, RegistryMailbox)
        messages = [message]
        if _faults.ACTIVE is not None:
            replacement = apply_send_faults(mailbox.name, message)
            if replacement is not None:
                messages = replacement
        # Parent-side sends keep their single pickle hop (coordinators ship whole
        # region batches this way), but are logged like every other delivery so a
        # crashed job's mailbox history can be rebuilt.
        with self._route_lock:
            log = self._logs.get(mailbox.index)
            for item in messages:
                if log is not None:
                    log.append(item)
                mailbox.queue.put(item)
        with self._lock:
            self._messages += len(messages)
            self._bytes += size_bytes * len(messages)

    def run(self) -> float:
        if self._ran:
            raise BackendError("a run session can only be run once")
        self._ran = True
        self._start = time.perf_counter()
        self._substrate._register(self)
        self._jobs_remaining = len(self._worker_jobs)
        if self._jobs_remaining == 0:
            self._jobs_event.set()
        else:
            self._substrate._submit_jobs(self, self._worker_jobs)
        coordinator_threads = [
            threading.Thread(
                target=self._run_coordinator, args=(body, name), name=name, daemon=True
            )
            for body, name in self._coordinators
        ]
        for thread in coordinator_threads:
            thread.start()
        self._jobs_event.wait()
        for thread in coordinator_threads:
            thread.join()
        if self._errors:
            name, detail = self._errors[0]
            raise BackendError(f"worker {name!r} failed: {detail}")
        return time.perf_counter() - self._start

    @property
    def now(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def telemetry(self) -> BackendTelemetry:
        with self._lock:
            return BackendTelemetry(
                network_messages=self._messages, network_bytes=self._bytes
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            settle = False
            if self._ran and not self._jobs_event.is_set():
                # The compilation is being torn down mid-flight (an error escaped
                # between run() and report collection, or run() itself raised):
                # unwind our coordinators and flag our pooled workers so they
                # return to the pool.
                self._failed.set()
                self._substrate._abort_session(self)
                self._jobs_event.wait(timeout=10.0)
                settle = True
            if self._errors:
                settle = True
            if self._ran and not self._jobs_event.is_set():
                # A worker is still wedged in this session's compute after the grace
                # period: leak the leased mailbox slots rather than return them — a
                # slot re-leased to a new session could otherwise receive a late
                # message from this dead compilation and corrupt an unrelated
                # result.
                self._substrate._unregister(self)
                return
            self._substrate._release_mailboxes(self._leased, settle=settle)
            self._leased = []
            self._substrate._unregister(self)
        finally:
            # Shared-memory ship segments are unlinked on every teardown path —
            # including the wedged-worker early return above (POSIX keeps the
            # mapping valid for any worker still reading).
            self.release_segments()

    # ---------------------------------------------------------------- internals

    def _wake_mailboxes(self, reason: str) -> None:
        """Rouse every receiver (pooled worker or coordinator) blocked on a mailbox
        this session leased.  Stray tokens are drained with the mailbox at release.
        Tokens are deliberately NOT logged: a replayed job must see the protocol's
        message history, not the teardown chatter around a past crash."""
        with self._route_lock:
            for mailbox in self._leased:
                mailbox.queue.put(WakeToken(reason))

    def _forward(self, job_name: str, seq: int, index: int, message: Any) -> None:
        """Route one child send (dispatcher thread): log it and deliver it.

        Sends with ``seq`` at or below the job's forwarded watermark are a
        replayed job re-emitting history the first incarnation already
        delivered; they are suppressed entirely — not delivered, not logged —
        which is what makes recovery invisible to every other participant.
        """
        with self._route_lock:
            if seq <= self._forwarded.get(job_name, 0):
                return
            self._forwarded[job_name] = seq
            log = self._logs.get(index)
            if log is not None:
                log.append(message)
            mailbox = self._by_index.get(index)
            if mailbox is not None:
                mailbox.queue.put(message)

    def _note_claim(self, job_name: str, index: int) -> None:
        with self._route_lock:
            self._claims.setdefault(job_name, set()).add(index)

    def _reset_claimed_mailboxes(self, job_name: str, substrate: ProcessesSubstrate) -> None:
        """Rebuild every mailbox the dead job had claimed into a fresh queue.

        The old queue is never drained or reused — a SIGKILL can leave a
        multiprocessing queue with a wedged lock or a half-written frame, so the
        registry slot is swapped for a brand-new queue (and retired from the free
        list) and the fresh queue is refilled from the session's full message
        log.  The respawned worker then replays the job against byte-identical
        mailbox history.
        """
        with self._route_lock:
            for index in sorted(self._claims.get(job_name, ())):
                mailbox = self._by_index.get(index)
                if mailbox is None:
                    continue
                fresh = substrate._replace_registry_slot(index)
                mailbox.queue = fresh
                for message in self._logs.get(index, ()):
                    fresh.put(message)

    def _bump_replay_attempts(self, job_name: str) -> int:
        with self._lock:
            attempts = self._replay_attempts.get(job_name, 0) + 1
            self._replay_attempts[job_name] = attempts
            return attempts

    def _note_replay(self) -> None:
        with self._lock:
            self._replays += 1

    @property
    def replays(self) -> int:
        """Jobs re-executed after a worker death (feeds ServiceStats retries)."""
        with self._lock:
            return self._replays

    def _account_unsubmitted(self, count: int) -> None:
        """Settle completion accounting for jobs that never reached a worker."""
        with self._lock:
            self._jobs_remaining -= count
            if self._jobs_remaining <= 0:
                self._jobs_event.set()

    def _job_done(self, name: str, messages: int, size_bytes: int) -> None:
        with self._lock:
            self._messages += messages
            self._bytes += size_bytes
            self._jobs_remaining -= 1
            if self._jobs_remaining <= 0:
                self._jobs_event.set()

    def _job_failed(self, name: str, detail: str) -> None:
        with self._lock:
            self._errors.append((name, detail))
        self._failed.set()
        self._substrate._abort_session(self)
        with self._lock:
            self._jobs_remaining -= 1
            if self._jobs_remaining <= 0:
                self._jobs_event.set()

    def _run_coordinator(self, body: Generator, name: str) -> None:
        try:
            drive(body, lambda mailbox: self._coordinator_receive(mailbox, name))
        except BaseException as error:  # noqa: BLE001 — reported via run()
            with self._lock:
                self._errors.append((name, repr(error)))
            self._failed.set()
            self._substrate._abort_session(self)

    def _coordinator_receive(self, mailbox: QueueMailbox, who: str) -> Any:
        return blocking_receive(
            mailbox.queue, self.receive_timeout, self._failed, who, mailbox.name
        )


# ------------------------------------------------------------------ one-shot API


class ProcessesBackend(Backend):
    """Run the distributed protocol on freshly forked OS processes (one-shot).

    Workers are forked *after* the coordinator has built the grammar, the evaluation
    plan and every process body, so the (possibly unpicklable, closure-rich) grammar
    machinery is inherited copy-on-write and never serialised; only protocol messages
    travel between processes.  For a persistent pool that amortises the fork cost
    across many compilations, use :class:`ProcessesSubstrate`.
    """

    name = "processes"
    packed_wire = True
    shared_ship = True

    def __init__(self, receive_timeout: float = 120.0):
        super().__init__()
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:
            raise BackendError(
                "the processes backend requires the 'fork' multiprocessing start "
                "method (POSIX only); use backend='threads' on this platform"
            ) from error
        self.receive_timeout = receive_timeout
        self._workers: List[Tuple[Generator, str]] = []
        self._coordinators: List[Tuple[Generator, str]] = []
        self._control = self._context.Queue()
        self._failed = threading.Event()
        self._errors: List[Tuple[str, str]] = []
        self._lock = threading.Lock()
        self._messages = 0
        self._bytes = 0
        self._net_records_seen = 0
        self._start: Optional[float] = None
        self._in_child = False
        self._children: List[Any] = []
        self._closed = False
        self._mailboxes: List[QueueMailbox] = []
        self._live_coordinators = 0

    # ----------------------------------------------------------------- plumbing

    def mailbox(self, name: str) -> QueueMailbox:
        mailbox = QueueMailbox(name, self._context.Queue())
        self._mailboxes.append(mailbox)
        return mailbox

    def spawn(
        self,
        body: Any,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        if isinstance(body, WorkerJob):
            # Materialised pre-fork: the body is inherited copy-on-write, so even
            # unpicklable grammars work on the one-shot path.
            body = body.materialize(self)
        if coordinator:
            self._coordinators.append((body, name))
        else:
            self._worker_count += 1
            self._workers.append((body, name))

    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        assert isinstance(mailbox, QueueMailbox)
        messages = [message]
        if _faults.ACTIVE is not None:
            replacement = apply_send_faults(mailbox.name, message)
            if replacement is not None:
                messages = replacement
        for item in messages:
            mailbox.queue.put(item)
        with self._lock:
            self._messages += len(messages)
            self._bytes += size_bytes * len(messages)

    def publish_report(self, region_id: int, report: Any) -> None:
        if self._in_child:
            self._control.put(("report", region_id, report))
        else:
            super().publish_report(region_id, report)

    def run(self) -> float:
        self._start = time.perf_counter()
        # Fork the workers before starting any coordinator thread (and hence before the
        # first queue put): forking a process with live queue feeder threads is unsafe.
        children = [
            self._context.Process(target=self._child_main, args=(body, name), name=name, daemon=True)
            for body, name in self._workers
        ]
        self._children = children
        for child in children:
            child.start()
        self._live_coordinators = len(self._coordinators)
        coordinator_threads = [
            threading.Thread(
                target=self._run_coordinator, args=(body, name), name=name, daemon=True
            )
            for body, name in self._coordinators
        ]
        for thread in coordinator_threads:
            thread.start()

        pending_children = {child.name: child for child in children}
        # The monitor sleeps until something actually happens: a control record
        # arrives (the queue's reader pipe becomes readable) or a child process
        # exits (its sentinel fires); finishing coordinators enqueue a wake record.
        # The timeout is only a safety net, not the detection mechanism.
        control_reader = getattr(self._control, "_reader", None)
        try:
            while True:
                self._drain_control_nowait()
                for name, child in list(pending_children.items()):
                    if not child.is_alive():
                        child.join()
                        if child.exitcode not in (0, None):
                            with self._lock:
                                if not any(entry[0] == name for entry in self._errors):
                                    self._errors.append(
                                        (name, f"worker process exited with code {child.exitcode}")
                                    )
                            self._fail()
                        del pending_children[name]
                if self._failed.is_set():
                    break
                with self._lock:
                    coordinators_done = self._live_coordinators == 0
                if not pending_children and coordinators_done:
                    break
                if control_reader is not None:
                    multiprocessing.connection.wait(
                        [control_reader]
                        + [child.sentinel for child in pending_children.values()],
                        timeout=0.5,
                    )
                else:  # pragma: no cover — transport without a reader pipe
                    time.sleep(0.05)
        finally:
            # Also terminate on exceptions that bypass the error plumbing (e.g. a
            # KeyboardInterrupt in this monitor loop) — otherwise healthy children
            # blocked in a receive would pin the join below for the full timeout.
            aborting = self._failed.is_set() or sys.exc_info()[0] is not None
            if aborting:
                for child in pending_children.values():
                    if child.is_alive():
                        child.terminate()
            for child in pending_children.values():
                child.join()
            for thread in coordinator_threads:
                thread.join()
            # Each child enqueues its report and then its network-counter record just
            # before exiting, and the queue's feeder pipe can lag the join: keep
            # draining until both have landed for every worker (bounded, in case a
            # child died before publishing).  Each read blocks only until the next
            # record arrives — nothing waits out a fixed window once the counts are in.
            drain_deadline = time.monotonic() + 5.0
            self._drain_control_nowait()
            while (
                (len(self._reports) < self._worker_count
                 or self._net_records_seen < self._worker_count)
                and not self._errors
                and not aborting
            ):
                remaining = drain_deadline - time.monotonic()
                if remaining <= 0 or not self._drain_one(remaining):
                    break

        if self._errors:
            name, detail = self._errors[0]
            raise BackendError(f"worker {name!r} failed: {detail}")
        return time.perf_counter() - self._start

    @property
    def now(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def telemetry(self) -> BackendTelemetry:
        return BackendTelemetry(network_messages=self._messages, network_bytes=self._bytes)

    def close(self) -> None:
        """Terminate any forked worker still alive (idempotent, safe on every path).

        ``run()`` already joins or terminates its children in its own ``finally``;
        this is the last line of defence for error paths that never reach ``run`` or
        that abandon the backend between ``run`` and report collection.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._failed.set()
            with self._lock:
                coordinators_blocked = self._live_coordinators > 0
            if coordinators_blocked:
                # Only a run abandoned mid-flight can still have a coordinator asleep
                # in a receive; a cleanly finished run must not get garbage wake
                # tokens.
                self._fail()
            for child in self._children:
                if child.is_alive():
                    child.terminate()
            for child in self._children:
                child.join(timeout=5.0)
        finally:
            self.release_segments()

    # ---------------------------------------------------------------- internals

    def _fail(self) -> None:
        """Flag the run failed and wake every receiver blocked on one of its
        mailboxes (coordinator threads; children also get terminated by ``run``)."""
        self._failed.set()
        if not self._in_child:
            for mailbox in self._mailboxes:
                mailbox.queue.put(WakeToken("run failed"))

    def _child_main(self, body: Generator, name: str) -> None:
        """Entry point of a forked worker process."""
        self._in_child = True
        self._start = time.perf_counter()
        try:
            drive(body, lambda mailbox: self._child_receive(mailbox, name))
            self._control.put(("net", self._messages, self._bytes))
        except BaseException:  # noqa: BLE001 — shipped to the parent, then re-raised
            self._control.put(("error", name, traceback.format_exc()))
            raise

    def _child_receive(self, mailbox: QueueMailbox, who: str) -> Any:
        if _faults.ACTIVE is not None:
            apply_receive_faults(who, mailbox.name)
            hit = _faults.ACTIVE.check("worker.crash", who)
            if hit is not None:
                if hit.action == "crash":
                    time.sleep(0.05)  # let the control queue's feeder flush
                    os._exit(3)
                raise FaultError("worker.crash", hit.action, who)
        deadline = time.monotonic() + self.receive_timeout
        while True:
            message = deadline_get(
                mailbox.queue, deadline, self.receive_timeout, who, mailbox.name
            )
            if isinstance(message, WakeToken):
                continue  # parent-side wake for a failure we learn about via terminate
            return message

    def _run_coordinator(self, body: Generator, name: str) -> None:
        try:
            drive(body, lambda mailbox: self._coordinator_receive(mailbox, name))
        except BaseException as error:  # noqa: BLE001 — reported via run()
            with self._lock:
                self._errors.append((name, repr(error)))
            self._fail()
        finally:
            with self._lock:
                self._live_coordinators -= 1
            # Wake the monitor loop so coordinator completion is seen immediately.
            self._control.put(None)

    def _coordinator_receive(self, mailbox: QueueMailbox, who: str) -> Any:
        return blocking_receive(
            mailbox.queue, self.receive_timeout, self._failed, who, mailbox.name
        )

    def _drain_control_nowait(self) -> None:
        """Absorb every already-queued report/telemetry/error record, never blocking."""
        while self._drain_one(0.0):
            pass

    def _drain_one(self, timeout: float) -> bool:
        """Wait up to ``timeout`` seconds for one control record; False when none came."""
        try:
            if timeout <= 0:
                record = self._control.get_nowait()
            else:
                record = self._control.get(timeout=timeout)
        except queue_module.Empty:
            return False
        if record is None:  # wake record from a finishing coordinator thread
            return True
        tag = record[0]
        if tag == "report":
            self._reports[record[1]] = record[2]
        elif tag == "net":
            with self._lock:
                self._messages += record[1]
                self._bytes += record[2]
                self._net_records_seen += 1
        elif tag == "error":
            with self._lock:
                # A child's traceback beats the bare exit-code diagnostic that the
                # liveness check may already have recorded for the same worker.
                self._errors = [
                    entry
                    for entry in self._errors
                    if not (entry[0] == record[1] and "exited with code" in entry[1])
                ]
                self._errors.insert(0, (record[1], record[2]))
            self._fail()
        return True
