"""The multiprocessing backend: one OS process per worker body.

Mailboxes are ``multiprocessing.Queue`` instances, so every message that crosses a
worker boundary — linearized subtrees, boundary attribute values, code fragments,
descriptors, results — round-trips through pickle, exactly like bytes on a wire.
Workers are forked *after* the coordinator has built the grammar, the evaluation plan
and every process body, so the (unpicklable, closure-rich) grammar machinery is
inherited copy-on-write and never serialised; only protocol messages travel between
processes.

Placement: worker bodies (the evaluators) each get their own forked OS process;
coordinator bodies (parser, librarian) run on threads inside the driving process, where
they can share the compilation outcome with the caller.  Worker reports come back
out-of-band on a control queue via :meth:`publish_report`.

Requires a POSIX ``fork`` start method (Linux/macOS); on platforms without it,
construction raises :class:`BackendError` — use the threads backend there.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import sys
import threading
import time
import traceback
from typing import Any, Generator, List, Optional, Tuple

from repro.backends.base import (
    Backend,
    BackendError,
    BackendTelemetry,
    Mailbox,
    drive,
    poll_receive,
)
from repro.backends.threads import QueueMailbox


class ProcessesBackend(Backend):
    """Run the distributed protocol on real OS processes with pickled messages."""

    name = "processes"

    def __init__(self, receive_timeout: float = 120.0):
        super().__init__()
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:
            raise BackendError(
                "the processes backend requires the 'fork' multiprocessing start "
                "method (POSIX only); use backend='threads' on this platform"
            ) from error
        self.receive_timeout = receive_timeout
        self._workers: List[Tuple[Generator, str]] = []
        self._coordinators: List[Tuple[Generator, str]] = []
        self._control = self._context.Queue()
        self._failed = threading.Event()
        self._errors: List[Tuple[str, str]] = []
        self._lock = threading.Lock()
        self._messages = 0
        self._bytes = 0
        self._net_records_seen = 0
        self._start: Optional[float] = None
        self._in_child = False

    # ----------------------------------------------------------------- plumbing

    def mailbox(self, name: str) -> QueueMailbox:
        return QueueMailbox(name, self._context.Queue())

    def spawn(
        self,
        body: Generator,
        *,
        name: str,
        machine: int = 0,
        coordinator: bool = False,
    ) -> None:
        if coordinator:
            self._coordinators.append((body, name))
        else:
            self._worker_count += 1
            self._workers.append((body, name))

    def send(
        self,
        source: int,
        destination: int,
        message: Any,
        size_bytes: int,
        mailbox: Mailbox,
    ) -> None:
        assert isinstance(mailbox, QueueMailbox)
        mailbox.queue.put(message)
        with self._lock:
            self._messages += 1
            self._bytes += size_bytes

    def publish_report(self, region_id: int, report: Any) -> None:
        if self._in_child:
            self._control.put(("report", region_id, report))
        else:
            super().publish_report(region_id, report)

    def run(self) -> float:
        self._start = time.perf_counter()
        # Fork the workers before starting any coordinator thread (and hence before the
        # first queue put): forking a process with live queue feeder threads is unsafe.
        children = [
            self._context.Process(target=self._child_main, args=(body, name), name=name, daemon=True)
            for body, name in self._workers
        ]
        for child in children:
            child.start()
        coordinator_threads = [
            threading.Thread(
                target=self._run_coordinator, args=(body, name), name=name, daemon=True
            )
            for body, name in self._coordinators
        ]
        for thread in coordinator_threads:
            thread.start()

        pending_children = {child.name: child for child in children}
        try:
            while True:
                self._drain_control(timeout=0.05)
                for name, child in list(pending_children.items()):
                    if not child.is_alive():
                        child.join()
                        if child.exitcode not in (0, None):
                            with self._lock:
                                if not any(entry[0] == name for entry in self._errors):
                                    self._errors.append(
                                        (name, f"worker process exited with code {child.exitcode}")
                                    )
                            self._failed.set()
                        del pending_children[name]
                if self._failed.is_set():
                    break
                if not pending_children and all(
                    not thread.is_alive() for thread in coordinator_threads
                ):
                    break
        finally:
            # Also terminate on exceptions that bypass the error plumbing (e.g. a
            # KeyboardInterrupt in this monitor loop) — otherwise healthy children
            # blocked in a receive would pin the join below for the full timeout.
            aborting = self._failed.is_set() or sys.exc_info()[0] is not None
            if aborting:
                for child in pending_children.values():
                    if child.is_alive():
                        child.terminate()
            for child in pending_children.values():
                child.join()
            for thread in coordinator_threads:
                thread.join()
            # Each child enqueues its report and then its network-counter record just
            # before exiting, and the queue's feeder pipe can lag the join: keep
            # draining until both have landed for every worker (bounded, in case a
            # child died before publishing).
            drain_deadline = time.monotonic() + 5.0
            self._drain_control(timeout=0.2)
            while (
                (len(self._reports) < self._worker_count
                 or self._net_records_seen < self._worker_count)
                and not self._errors
                and not aborting
                and time.monotonic() < drain_deadline
            ):
                self._drain_control(timeout=0.1)

        if self._errors:
            name, detail = self._errors[0]
            raise BackendError(f"worker {name!r} failed: {detail}")
        return time.perf_counter() - self._start

    @property
    def now(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def telemetry(self) -> BackendTelemetry:
        return BackendTelemetry(network_messages=self._messages, network_bytes=self._bytes)

    # ---------------------------------------------------------------- internals

    def _child_main(self, body: Generator, name: str) -> None:
        """Entry point of a forked worker process."""
        self._in_child = True
        self._start = time.perf_counter()
        try:
            drive(body, lambda mailbox: self._child_receive(mailbox, name))
            self._control.put(("net", self._messages, self._bytes))
        except BaseException:  # noqa: BLE001 — shipped to the parent, then re-raised
            self._control.put(("error", name, traceback.format_exc()))
            raise

    def _child_receive(self, mailbox: QueueMailbox, who: str) -> Any:
        try:
            return mailbox.queue.get(timeout=self.receive_timeout)
        except queue_module.Empty:
            raise BackendError(
                f"{who} timed out after {self.receive_timeout:.0f}s waiting on "
                f"mailbox {mailbox.name!r} (protocol deadlock?)"
            ) from None

    def _run_coordinator(self, body: Generator, name: str) -> None:
        try:
            drive(body, lambda mailbox: self._coordinator_receive(mailbox, name))
        except BaseException as error:  # noqa: BLE001 — reported via run()
            with self._lock:
                self._errors.append((name, repr(error)))
            self._failed.set()

    def _coordinator_receive(self, mailbox: QueueMailbox, who: str) -> Any:
        return poll_receive(
            mailbox.queue, self.receive_timeout, self._failed, who, mailbox.name
        )

    def _drain_control(self, timeout: float) -> None:
        """Absorb report/telemetry/error records sent by worker processes."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                record = self._control.get(timeout=max(remaining, 0.0) or 0.01)
            except queue_module.Empty:
                return
            tag = record[0]
            if tag == "report":
                self._reports[record[1]] = record[2]
            elif tag == "net":
                with self._lock:
                    self._messages += record[1]
                    self._bytes += record[2]
                    self._net_records_seen += 1
            elif tag == "error":
                with self._lock:
                    # A child's traceback beats the bare exit-code diagnostic that the
                    # liveness check may already have recorded for the same worker.
                    self._errors = [
                        entry
                        for entry in self._errors
                        if not (entry[0] == record[1] and "exited with code" in entry[1])
                    ]
                    self._errors.insert(0, (record[1], record[2]))
                self._failed.set()
