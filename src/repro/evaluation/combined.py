"""The combined static/dynamic evaluator — the paper's primary contribution.

Only the attributes of tree nodes on a path from the local root to a remotely evaluated
subtree (the *spine*) are scheduled dynamically; every subtree hanging off the spine is
evaluated by the static evaluator's visit procedures.  For a statically evaluated child
of a spine node, the transitive dependencies precomputed by the ordered-evaluation
analysis (inherited attributes required before each visit) are entered into the dynamic
dependency graph, and "when all predecessors for a statically evaluated attribute become
available the appropriate static visit procedure is invoked" (paper, §2.4).

With no remote subtrees the spine degenerates to the root alone and the combined
evaluator is "essentially identical to a purely static sequential evaluator" (§4).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.plan_compiler import CompiledRules, compiled_rules
from repro.analysis.tables import EvaluationTables, RuleTable, evaluation_tables
from repro.analysis.visit_sequences import OrderedEvaluationPlan, build_evaluation_plan
from repro.evaluation.base import (
    ComputedAttribute,
    EvaluationError,
    EvaluationStatistics,
    Scheduler,
    TaskResult,
    root_inherited_or_default,
)
from repro.evaluation.static import StaticEvaluator
from repro.grammar.attributes import AttributeKind
from repro.grammar.grammar import AttributeGrammar
from repro.grammar.productions import AttributeRef, SemanticRule
from repro.grammar.symbols import Nonterminal
from repro.tree.node import ParseTreeNode

_InstanceKey = Tuple[int, str]
_TaskId = int


class _Instance:
    __slots__ = ("node", "name", "available", "external", "dependents", "priority")

    def __init__(self, node: ParseTreeNode, name: str, priority: bool):
        self.node = node
        self.name = name
        self.available = False
        self.external = False
        self.dependents: List[_TaskId] = []
        self.priority = priority


class _Task:
    __slots__ = ("kind", "node", "rule", "rule_node", "table", "compute",
                 "visit_number", "pending", "produces", "priority", "executed")

    def __init__(self, kind: str, node: ParseTreeNode):
        self.kind = kind                       # "eval" or "visit"
        self.node = node
        self.rule: Optional[SemanticRule] = None
        self.rule_node: Optional[ParseTreeNode] = None
        self.table: Optional[RuleTable] = None  # precompiled fast path
        self.compute = None                     # plan-compiled fastest path
        self.visit_number = 0
        self.pending = 0
        self.produces: List[_InstanceKey] = []
        self.priority = False
        self.executed = False


class CombinedScheduler(Scheduler):
    """Task scheduler mixing dynamic (spine) and static (off-spine) evaluation.

    :param hole_nodes: placeholder nodes standing in for remotely evaluated subtrees.
        Their synthesized attributes are external inputs; their inherited attributes are
        computed here and exported by the distributed layer.
    :param root_inherited: values of the local root's inherited attributes, or ``None``
        to mark them external.
    """

    def __init__(
        self,
        grammar: AttributeGrammar,
        root: ParseTreeNode,
        root_inherited: Optional[Dict[str, Any]] = None,
        hole_nodes: Optional[Iterable[ParseTreeNode]] = None,
        plan: Optional[OrderedEvaluationPlan] = None,
        use_priority: bool = True,
        use_tables: bool = True,
        use_compiled: bool = True,
    ):
        self.grammar = grammar
        self.root = root
        self.use_priority = use_priority
        self.plan = plan or build_evaluation_plan(grammar)
        # Precompiled per-grammar tables are the default; ``use_tables=False`` keeps
        # the seed dict/AttributeRef path alive as the parity-test reference.
        self._tables: Optional[EvaluationTables] = (
            evaluation_tables(grammar) if use_tables else None
        )
        # Plan-compiled per-rule functions for spine evals; the static subtrees get
        # their own compiled visit segments inside the StaticEvaluator below.
        self._compiled: Optional[CompiledRules] = (
            compiled_rules(grammar) if use_tables and use_compiled else None
        )
        self._static = StaticEvaluator(
            grammar, self.plan, use_tables=use_tables, use_compiled=use_compiled
        )
        self._holes: List[ParseTreeNode] = list(hole_nodes or [])
        self._hole_ids: Set[int] = {node.node_id for node in self._holes}

        self._instances: Dict[_InstanceKey, _Instance] = {}
        self._tasks: Dict[_TaskId, _Task] = {}
        self._ready_priority: deque = deque()
        self._ready_normal: deque = deque()
        self._stats = EvaluationStatistics()
        self._static_stats = EvaluationStatistics()
        self._spine_ids: Set[int] = set()
        self._static_root_ids: Set[int] = set()

        self._compute_spine()
        self._build(root_inherited)

    # ----------------------------------------------------------------- geometry

    def _compute_spine(self) -> None:
        """The spine is every node on a path from the root to a hole (inclusive of the
        root, exclusive of the holes themselves)."""
        self._spine_ids = {self.root.node_id}
        for hole in self._holes:
            node = hole.parent
            while node is not None:
                self._spine_ids.add(node.node_id)
                if node is self.root:
                    break
                node = node.parent

    def is_spine(self, node: ParseTreeNode) -> bool:
        return node.node_id in self._spine_ids

    def is_hole(self, node: ParseTreeNode) -> bool:
        return node.node_id in self._hole_ids

    @property
    def spine_size(self) -> int:
        return len(self._spine_ids)

    @property
    def static_subtree_count(self) -> int:
        return len(self._static_root_ids)

    # -------------------------------------------------------------------- build

    def _declare_instance(self, node: ParseTreeNode, name: str, priority: bool) -> _Instance:
        key = (node.node_id, name)
        instance = self._instances.get(key)
        if instance is None:
            instance = _Instance(node, name, priority)
            self._instances[key] = instance
        return instance

    def _add_task(self, task: _Task) -> _TaskId:
        task_id = len(self._tasks)
        self._tasks[task_id] = task
        return task_id

    def _depend(self, task_id: _TaskId, node: ParseTreeNode, name: str) -> None:
        """Make ``task_id`` wait for the instance (node, name)."""
        key = (node.node_id, name)
        instance = self._instances[key]
        instance.dependents.append(task_id)
        self._tasks[task_id].pending += 1
        self._stats.dependency_edges += 1

    def _build(self, root_inherited: Optional[Dict[str, Any]]) -> None:
        spine_nodes = [
            node for node in self.root.walk() if node.node_id in self._spine_ids
        ]

        # 1. Declare the dynamically tracked instances: all attributes of spine nodes,
        #    holes, and of the non-spine nonterminal children of spine nodes.
        for node in spine_nodes:
            self._declare_node_instances(node)
            for child in node.children:
                if child.is_terminal:
                    continue
                if child.node_id in self._spine_ids:
                    continue
                self._declare_node_instances(child)
                if not self.is_hole(child):
                    self._static_root_ids.add(child.node_id)
        self._stats.dependency_vertices = len(self._instances)

        # 2. External instances: the local root's inherited attributes and the holes'
        #    synthesized attributes.
        root_symbol = self.root.symbol
        if isinstance(root_symbol, Nonterminal):
            for decl in root_symbol.inherited:
                self._instances[(self.root.node_id, decl.name)].external = True
        for hole in self._holes:
            symbol = hole.symbol
            assert isinstance(symbol, Nonterminal)
            for decl in symbol.synthesized:
                self._instances[(hole.node_id, decl.name)].external = True

        # 3. Eval tasks: every semantic rule instance of every spine production whose
        #    target is a tracked instance.
        for node in spine_nodes:
            if node.production is None:
                raise EvaluationError(
                    f"spine node {node.node_id} ({node.symbol.name}) has no production"
                )
            if self._tables is not None:
                children = node.children
                for table in self._tables.productions[node.production.index].rules:
                    position = table.target_position
                    target_node = node if position == 0 else children[position - 1]
                    key = (target_node.node_id, table.target_name)
                    instance = self._instances.get(key)
                    if instance is None or instance.external:
                        continue
                    task = _Task("eval", target_node)
                    task.rule = table.rule
                    task.rule_node = node
                    task.table = table
                    if self._compiled is not None:
                        task.compute = self._compiled[node.production.index][table.index]
                    task.produces = [key]
                    task.priority = instance.priority
                    task_id = self._add_task(task)
                    for arg_position, arg_name in table.nonterminal_args:
                        source = node if arg_position == 0 else children[arg_position - 1]
                        self._depend(task_id, source, arg_name)
                continue
            for rule in node.production.rules:
                target_node = node.resolve(rule.target)
                key = (target_node.node_id, rule.target.name)
                if key not in self._instances:
                    continue
                if self._instances[key].external:
                    continue
                task = _Task("eval", target_node)
                task.rule = rule
                task.rule_node = node
                task.produces = [key]
                task.priority = self._instances[key].priority
                task_id = self._add_task(task)
                for argument in rule.arguments:
                    source = node.resolve(argument)
                    if source.is_terminal:
                        continue
                    self._depend(task_id, source, argument.name)

        # 4. Visit tasks for static subtree roots, with the precomputed transitive
        #    dependencies (inherited attributes required up to each visit).
        for node in spine_nodes:
            for child in node.children:
                if child.node_id not in self._static_root_ids:
                    continue
                symbol = child.symbol
                assert isinstance(symbol, Nonterminal)
                partition = self.plan.partition_of(symbol.name)
                priority_of = (
                    self._tables.nonterminals[symbol.name].priority_of
                    if self._tables is not None
                    else {name: decl.priority for name, decl in symbol.attributes.items()}
                )
                previous_task: Optional[_TaskId] = None
                for visit in partition.visits:
                    task = _Task("visit", child)
                    task.visit_number = visit.number
                    task.produces = [(child.node_id, name) for name in visit.synthesized]
                    task.priority = any(
                        priority_of[name] for name in visit.synthesized
                    )
                    task_id = self._add_task(task)
                    for name in partition.inherited_up_to(visit.number):
                        self._depend(task_id, child, name)
                    if previous_task is not None:
                        # Chain visits through a pseudo-instance: reuse pending counter.
                        self._tasks[task_id].pending += 1
                        self._tasks[previous_task].produces.append(
                            ("__visit_chain__", task_id)
                        )
                    previous_task = task_id

        # 5. Seed ready queues.
        for task_id, task in self._tasks.items():
            if task.pending == 0:
                self._enqueue(task_id)

        # 6. Preset root inherited values if given.
        if root_inherited:
            for name, value in root_inherited.items():
                self.supply(self.root, name, value)

    def _declare_node_instances(self, node: ParseTreeNode) -> None:
        symbol = node.symbol
        if not isinstance(symbol, Nonterminal):
            return
        if self._tables is not None:
            for name, _synthesized, priority in self._tables.nonterminals[symbol.name].attrs:
                self._declare_instance(node, name, priority)
            return
        for decl in symbol.attributes.values():
            self._declare_instance(node, decl.name, decl.priority)

    # ---------------------------------------------------------------- scheduling

    def _enqueue(self, task_id: _TaskId) -> None:
        if self._tasks[task_id].priority and self.use_priority:
            self._ready_priority.append(task_id)
        else:
            self._ready_normal.append(task_id)

    def has_ready_task(self) -> bool:
        return bool(self._ready_priority or self._ready_normal)

    def next_task(self) -> Optional[_TaskId]:
        if self._ready_priority:
            return self._ready_priority.popleft()
        if self._ready_normal:
            return self._ready_normal.popleft()
        return None

    def run_task(self, task_id: _TaskId) -> TaskResult:
        task = self._tasks[task_id]
        if task.executed:
            return TaskResult()
        task.executed = True
        self._stats.tasks_executed += 1
        if task.kind == "eval":
            result = self._run_eval(task)
        else:
            result = self._run_visit(task)
        self._complete_task(task, result)
        return result

    def _run_eval(self, task: _Task) -> TaskResult:
        assert task.rule is not None and task.rule_node is not None
        if task.compute is not None:
            value = task.compute(task.rule_node)
        elif task.table is not None:
            value = task.table.function(*task.table.fetch_arguments(task.rule_node))
        else:
            arguments = []
            for ref in task.rule.arguments:
                source = task.rule_node.resolve(ref)
                arguments.append(source.get_attribute(ref.name))
            value = task.rule.evaluate(arguments)
        target = task.rule_node.resolve(task.rule.target)
        target.set_attribute(task.rule.target.name, value)
        self._stats.rules_evaluated += 1
        self._stats.rule_extra_cost += task.rule.cost
        self._stats.dynamic_instances += 1
        return TaskResult(
            computed=[ComputedAttribute(target, task.rule.target.name, value)],
            rules_evaluated=1,
            rule_extra_cost=task.rule.cost,
            dependency_work=1,
        )

    def _run_visit(self, task: _Task) -> TaskResult:
        before_rules = self._static_stats.rules_evaluated
        before_cost = self._static_stats.rule_extra_cost
        self._static.visit(task.node, task.visit_number, self._static_stats)
        rules = self._static_stats.rules_evaluated - before_rules
        extra = self._static_stats.rule_extra_cost - before_cost
        self._stats.rules_evaluated += rules
        self._stats.rule_extra_cost += extra
        self._stats.visits_performed += 1
        symbol = task.node.symbol
        assert isinstance(symbol, Nonterminal)
        partition = self.plan.partition_of(symbol.name)
        computed = []
        for name in partition.synthesized_of(task.visit_number):
            computed.append(
                ComputedAttribute(task.node, name, task.node.get_attribute(name))
            )
        return TaskResult(
            computed=computed,
            rules_evaluated=rules,
            rule_extra_cost=extra,
            dependency_work=0,
        )

    def _complete_task(self, task: _Task, result: TaskResult) -> None:
        for produced in task.produces:
            if produced[0] == "__visit_chain__":
                follower = self._tasks[produced[1]]
                follower.pending -= 1
                if follower.pending == 0 and not follower.executed:
                    self._enqueue(produced[1])
                continue
            self._mark_available(produced)

    def supply(self, node: ParseTreeNode, name: str, value: Any) -> List[_TaskId]:
        key = (node.node_id, name)
        instance = self._instances.get(key)
        if instance is None:
            raise EvaluationError(
                f"attribute {name!r} of node {node.node_id} is not tracked by this scheduler"
            )
        if instance.available:
            return []
        node.set_attribute(name, value)
        before_priority = len(self._ready_priority)
        before_normal = len(self._ready_normal)
        self._mark_available(key)
        return list(self._ready_priority)[before_priority:] + list(self._ready_normal)[
            before_normal:
        ]

    def _mark_available(self, key: _InstanceKey) -> None:
        instance = self._instances[key]
        if instance.available:
            return
        instance.available = True
        for task_id in instance.dependents:
            task = self._tasks[task_id]
            task.pending -= 1
            if task.pending == 0 and not task.executed:
                self._enqueue(task_id)

    # ---------------------------------------------------------------- inspection

    def is_complete(self) -> bool:
        if any(not task.executed for task in self._tasks.values()):
            return False
        return all(
            instance.available
            for instance in self._instances.values()
            if not instance.external
        )

    def waiting_on(self) -> Sequence[Tuple[ParseTreeNode, str]]:
        return [
            (instance.node, instance.name)
            for instance in self._instances.values()
            if instance.external and not instance.available
        ]

    def statistics(self) -> EvaluationStatistics:
        """Aggregate statistics; static/dynamic instance counts cover the whole region."""
        stats = EvaluationStatistics()
        stats.merge(self._stats)
        total = 0
        for node in self.root.walk():
            if node.is_terminal:
                continue
            symbol = node.symbol
            assert isinstance(symbol, Nonterminal)
            if self.is_hole(node):
                total += len(symbol.inherited)
                continue
            total += len(symbol.attributes)
        stats.static_instances = max(0, total - stats.dynamic_instances)
        return stats

    def value_of(self, node: ParseTreeNode, name: str) -> Any:
        return node.get_attribute(name)


class CombinedEvaluator:
    """Sequential wrapper around :class:`CombinedScheduler` (no remote subtrees)."""

    def __init__(
        self,
        grammar: AttributeGrammar,
        plan: Optional[OrderedEvaluationPlan] = None,
    ):
        self.grammar = grammar
        self.plan = plan or build_evaluation_plan(grammar)

    def evaluate(
        self,
        root: ParseTreeNode,
        root_inherited: Optional[Dict[str, Any]] = None,
    ) -> EvaluationStatistics:
        supplied = root_inherited_or_default(root, root_inherited)
        scheduler = CombinedScheduler(
            self.grammar, root, root_inherited=supplied, plan=self.plan
        )
        return scheduler.run_to_completion()
