"""Shared evaluator infrastructure: statistics, task results, scheduler protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.tree.node import ParseTreeNode


class EvaluationError(Exception):
    """Raised when attribute evaluation cannot complete."""


class MissingAttributeError(EvaluationError):
    """Raised when an attribute value is required but was never computed."""


@dataclass
class EvaluationStatistics:
    """Counters describing one evaluation run.

    The distinction between dynamically and statically evaluated attribute instances is
    the quantity the paper reports ("on average less than 10 percent of the attributes
    are evaluated dynamically"), and the dependency-graph counters feed the simulator's
    cost model for the dynamic evaluator's extra CPU and memory cost.
    """

    rules_evaluated: int = 0
    rule_extra_cost: float = 0.0
    dynamic_instances: int = 0
    static_instances: int = 0
    dependency_vertices: int = 0
    dependency_edges: int = 0
    visits_performed: int = 0
    tasks_executed: int = 0

    @property
    def total_instances(self) -> int:
        return self.dynamic_instances + self.static_instances

    @property
    def dynamic_fraction(self) -> float:
        """Fraction of attribute instances whose scheduling was dynamic."""
        total = self.total_instances
        if total == 0:
            return 0.0
        return self.dynamic_instances / total

    def merge(self, other: "EvaluationStatistics") -> None:
        self.rules_evaluated += other.rules_evaluated
        self.rule_extra_cost += other.rule_extra_cost
        self.dynamic_instances += other.dynamic_instances
        self.static_instances += other.static_instances
        self.dependency_vertices += other.dependency_vertices
        self.dependency_edges += other.dependency_edges
        self.visits_performed += other.visits_performed
        self.tasks_executed += other.tasks_executed

    def as_dict(self) -> Dict[str, float]:
        return {
            "rules_evaluated": self.rules_evaluated,
            "rule_extra_cost": self.rule_extra_cost,
            "dynamic_instances": self.dynamic_instances,
            "static_instances": self.static_instances,
            "dependency_vertices": self.dependency_vertices,
            "dependency_edges": self.dependency_edges,
            "visits_performed": self.visits_performed,
            "tasks_executed": self.tasks_executed,
            "dynamic_fraction": self.dynamic_fraction,
        }


@dataclass(frozen=True)
class ComputedAttribute:
    """One attribute value produced by a task: (node, attribute name, value)."""

    node: ParseTreeNode
    name: str
    value: Any


@dataclass
class TaskResult:
    """The outcome of running one scheduler task.

    :param computed: attribute values produced (already stored on their nodes).
    :param rules_evaluated: number of semantic rules executed by the task (a VISIT task
        of the combined evaluator may execute many).
    :param rule_extra_cost: sum of the per-rule extra costs of those rules.
    :param dependency_work: dependency-analysis work performed (dynamic scheduling only);
        charged separately by the cost model.
    """

    computed: List[ComputedAttribute] = field(default_factory=list)
    rules_evaluated: int = 0
    rule_extra_cost: float = 0.0
    dependency_work: int = 0


class Scheduler:
    """Incremental evaluation interface shared by dynamic and combined schedulers.

    A scheduler owns one (sub)tree.  Attribute instances whose values are computed
    elsewhere (remote subtrees, or the inherited attributes of the region root) are
    *external*; they are supplied with :meth:`supply`.  The driver repeatedly pops ready
    tasks with :meth:`next_task` and executes them with :meth:`run_task`, until
    :meth:`is_complete` (or until it must block waiting for external values, in which
    case :meth:`waiting_on` is non-empty).
    """

    def has_ready_task(self) -> bool:
        raise NotImplementedError

    def next_task(self):
        """Pop one ready task (priority-attribute tasks first); ``None`` if none ready."""
        raise NotImplementedError

    def run_task(self, task) -> TaskResult:
        raise NotImplementedError

    def supply(self, node: ParseTreeNode, name: str, value: Any) -> List:
        """Provide an external attribute value; returns tasks that became ready."""
        raise NotImplementedError

    def is_complete(self) -> bool:
        raise NotImplementedError

    def waiting_on(self) -> Sequence[Tuple[ParseTreeNode, str]]:
        """External attribute instances still missing."""
        raise NotImplementedError

    def statistics(self) -> EvaluationStatistics:
        raise NotImplementedError

    # Convenience driver used by the sequential evaluators and by tests.
    def run_to_completion(self) -> EvaluationStatistics:
        """Run tasks until no more are ready; fails if external values are missing."""
        while True:
            task = self.next_task()
            if task is None:
                break
            self.run_task(task)
        if not self.is_complete():
            missing = ", ".join(
                f"{node.symbol.name}.{name}" for node, name in list(self.waiting_on())[:5]
            )
            raise MissingAttributeError(
                "evaluation blocked waiting on external attribute values: " + missing
            )
        return self.statistics()


def root_inherited_or_default(
    root: ParseTreeNode, root_inherited: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Check that the caller supplied every inherited attribute of the root symbol."""
    root_inherited = dict(root_inherited or {})
    symbol = root.symbol
    missing = []
    for decl in getattr(symbol, "inherited", ()):  # Terminal roots have no attributes.
        if decl.name not in root_inherited:
            missing.append(decl.name)
    if missing:
        raise EvaluationError(
            f"inherited attributes of the root symbol {symbol.name!r} must be supplied: "
            + ", ".join(sorted(missing))
        )
    return root_inherited
