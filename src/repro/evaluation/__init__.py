"""Sequential attribute evaluators: dynamic, static (ordered), and combined.

All three evaluators share a *task scheduler* interface (:mod:`repro.evaluation.base`)
so that the distributed layer (:mod:`repro.distributed`) can drive any of them
incrementally, supplying remotely computed attribute values as they arrive over the
(simulated) network and collecting locally computed values that must be exported.
"""

from repro.evaluation.base import (
    EvaluationError,
    MissingAttributeError,
    EvaluationStatistics,
    TaskResult,
    ComputedAttribute,
    Scheduler,
)
from repro.evaluation.static import StaticEvaluator
from repro.evaluation.dynamic import DynamicEvaluator, DynamicScheduler
from repro.evaluation.combined import CombinedEvaluator, CombinedScheduler

__all__ = [
    "EvaluationError",
    "MissingAttributeError",
    "EvaluationStatistics",
    "TaskResult",
    "ComputedAttribute",
    "Scheduler",
    "StaticEvaluator",
    "DynamicEvaluator",
    "DynamicScheduler",
    "CombinedEvaluator",
    "CombinedScheduler",
]
