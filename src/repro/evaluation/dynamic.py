"""The dynamic evaluator.

A dynamic evaluator first builds the dependency graph between *all* attribute instances
of the (sub)tree, topologically sorts it, and evaluates attributes as they become ready
(Figure 1 of the paper).  It is the most flexible evaluator — it handles every
non-circular grammar and exposes maximal concurrency — but pays for that with the time
and storage needed to build and maintain the instance-level dependency graph, which the
simulator's cost model charges for explicitly.

:class:`DynamicScheduler` is the incremental form used by the distributed runtime:
attribute instances owned by other evaluators are marked *external* and supplied as
messages arrive.  :class:`DynamicEvaluator` is the plain sequential wrapper.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.plan_compiler import CompiledRules, compiled_rules
from repro.analysis.tables import EvaluationTables, RuleTable, evaluation_tables
from repro.evaluation.base import (
    ComputedAttribute,
    EvaluationError,
    EvaluationStatistics,
    Scheduler,
    TaskResult,
    root_inherited_or_default,
)
from repro.grammar.attributes import AttributeKind
from repro.grammar.grammar import AttributeGrammar
from repro.grammar.productions import AttributeRef, SemanticRule
from repro.grammar.symbols import Nonterminal, Terminal
from repro.tree.node import ParseTreeNode

# An attribute instance is identified by (node, attribute name); we key dictionaries by
# (node_id, name) and keep a separate node table to avoid relying on node hashing.
_InstanceKey = Tuple[int, str]


class _InstanceInfo:
    """Book-keeping for one attribute instance in the dynamic dependency graph."""

    __slots__ = ("node", "name", "rule", "rule_node", "table", "compute", "pending",
                 "dependents", "external", "available", "priority")

    def __init__(self, node: ParseTreeNode, name: str, priority: bool):
        self.node = node
        self.name = name
        self.rule: Optional[SemanticRule] = None
        self.rule_node: Optional[ParseTreeNode] = None  # node owning the defining production
        self.table: Optional[RuleTable] = None          # precompiled fast path
        self.compute = None                             # plan-compiled fastest path
        self.pending = 0                   # unsatisfied prerequisite count
        self.dependents: List[_InstanceKey] = []
        self.external = False              # value arrives from outside this scheduler
        self.available = False
        self.priority = priority


class DynamicScheduler(Scheduler):
    """Instance-level dependency-graph scheduler over one (sub)tree.

    :param grammar: the attribute grammar.
    :param root: root of the locally owned (sub)tree.  Hole nodes (children standing in
        for remotely evaluated subtrees, created by :func:`repro.tree.linearize.delinearize`)
        are recognised by having neither a production nor a token value while carrying a
        nonterminal symbol: their synthesized attributes are treated as external inputs
        and their inherited attributes as ordinary locally computed values (the
        distributed layer exports them).
    :param root_inherited: values for the root's inherited attributes; pass ``None`` to
        mark them external (they will be supplied later via :meth:`supply`).
    """

    def __init__(
        self,
        grammar: AttributeGrammar,
        root: ParseTreeNode,
        root_inherited: Optional[Dict[str, Any]] = None,
        hole_nodes: Optional[Iterable[ParseTreeNode]] = None,
        use_priority: bool = True,
        use_tables: bool = True,
        use_compiled: bool = True,
    ):
        self.grammar = grammar
        self.root = root
        self.use_priority = use_priority
        # The precompiled per-grammar tables are the default build path; the seed
        # dict/AttributeRef path is kept as the reference implementation
        # (``use_tables=False``) that the parity tests compare against.
        self._tables: Optional[EvaluationTables] = (
            evaluation_tables(grammar) if use_tables else None
        )
        # Plan-compiled per-rule compute functions — argument fetches inlined into
        # generated Python (:mod:`repro.analysis.plan_compiler`); requires the tables.
        self._compiled: Optional[CompiledRules] = (
            compiled_rules(grammar) if use_tables and use_compiled else None
        )
        self._instances: Dict[_InstanceKey, _InstanceInfo] = {}
        self._ready_priority: deque = deque()
        self._ready_normal: deque = deque()
        self._stats = EvaluationStatistics()
        self._remaining = 0
        self._hole_ids: Set[int] = {node.node_id for node in (hole_nodes or ())}

        self._build_graph(root_inherited)

    # -------------------------------------------------------------- graph build

    def _is_hole(self, node: ParseTreeNode) -> bool:
        if node.node_id in self._hole_ids:
            return True
        return (
            node.symbol.is_nonterminal
            and node.production is None
            and not node.children
        )

    def _build_graph(self, root_inherited: Optional[Dict[str, Any]]) -> None:
        if self._tables is not None:
            self._build_passes_tables(root_inherited)
        else:
            self._build_passes_reference(root_inherited)

        # Pass 3: seed ready queues and preset values.
        for key, info in self._instances.items():
            if info.external:
                continue
            if info.pending == 0:
                self._enqueue(key)
        if root_inherited:
            for name, value in root_inherited.items():
                self.supply(self.root, name, value)

    def _build_passes_tables(self, root_inherited: Optional[Dict[str, Any]]) -> None:
        """Graph build against the precompiled tables: the per-node work is index
        walks over flat tuples — no ``AttributeRef`` construction, no linear rule
        scans, no declaration-object probing."""
        tables = self._tables
        nonterminal_tables = tables.nonterminals
        production_tables = tables.productions
        compiled = self._compiled
        instances = self._instances
        root = self.root
        edges = 0

        nodes = [node for node in root.walk() if not node.is_terminal]

        # Pass 1: create instance records for every attribute of every nonterminal node.
        for node in nodes:
            node_id = node.node_id
            for name, _synthesized, priority in nonterminal_tables[node.symbol.name].attrs:
                instances[(node_id, name)] = _InstanceInfo(node, name, priority)
                self._remaining += 1
        self._stats.dependency_vertices = len(instances)

        # Pass 2: attach defining rules / mark externals, and record dependency edges.
        for node in nodes:
            node_id = node.node_id
            is_hole = self._is_hole(node)
            for name, synthesized, _priority in nonterminal_tables[node.symbol.name].attrs:
                key = (node_id, name)
                info = instances[key]
                if synthesized:
                    if is_hole:
                        info.external = True
                        continue
                    defining_node = node
                    target = (0, name)
                else:  # inherited
                    if node is root:
                        info.external = True
                        continue
                    defining_node = node.parent
                    assert defining_node is not None and node.child_index is not None
                    target = (node.child_index, name)
                assert defining_node.production is not None
                table = production_tables[defining_node.production.index].by_target.get(target)
                if table is None:
                    raise EvaluationError(
                        f"no semantic rule defines {AttributeRef(*target)!r} in production "
                        f"{defining_node.production.label!r}"
                    )
                info.rule = table.rule
                info.rule_node = defining_node
                info.table = table
                if compiled is not None:
                    info.compute = compiled[defining_node.production.index][table.index]
                pending = 0
                defining_children = defining_node.children
                for position, argument_name in table.nonterminal_args:
                    source_node = (
                        defining_node if position == 0 else defining_children[position - 1]
                    )
                    instances[(source_node.node_id, argument_name)].dependents.append(key)
                    pending += 1
                info.pending = pending
                edges += pending
        self._stats.dependency_edges += edges

    def _build_passes_reference(self, root_inherited: Optional[Dict[str, Any]]) -> None:
        """The seed dict/``AttributeRef`` build path, kept verbatim as the reference
        implementation the precompiled-tables parity tests run against."""
        # Pass 1: create instance records for every attribute of every nonterminal node.
        for node in self.root.walk():
            if node.is_terminal:
                continue
            symbol = node.symbol
            assert isinstance(symbol, Nonterminal)
            for decl in symbol.attributes.values():
                key = (node.node_id, decl.name)
                self._instances[key] = _InstanceInfo(node, decl.name, decl.priority)
                self._remaining += 1
        self._stats.dependency_vertices = len(self._instances)

        # Pass 2: attach defining rules / mark externals, and record dependency edges.
        for node in self.root.walk():
            if node.is_terminal:
                continue
            symbol = node.symbol
            assert isinstance(symbol, Nonterminal)
            is_hole = self._is_hole(node)
            for decl in symbol.attributes.values():
                key = (node.node_id, decl.name)
                info = self._instances[key]
                if decl.kind is AttributeKind.SYNTHESIZED:
                    if is_hole:
                        info.external = True
                        continue
                    defining_node = node
                    target_ref = AttributeRef(0, decl.name)
                else:  # inherited
                    if node is self.root:
                        if root_inherited is not None and decl.name in root_inherited:
                            # Value is already known; treat as preset below.
                            info.external = True
                            continue
                        info.external = True
                        continue
                    defining_node = node.parent
                    assert defining_node is not None and node.child_index is not None
                    target_ref = AttributeRef(node.child_index, decl.name)
                assert defining_node.production is not None
                rule = defining_node.production.rule_defining(target_ref)
                if rule is None:
                    raise EvaluationError(
                        f"no semantic rule defines {target_ref!r} in production "
                        f"{defining_node.production.label!r}"
                    )
                info.rule = rule
                info.rule_node = defining_node
                for argument in rule.arguments:
                    source_node = defining_node.resolve(argument)
                    if source_node.is_terminal:
                        continue  # scanner attributes are always available
                    source_key = (source_node.node_id, argument.name)
                    source_info = self._instances[source_key]
                    source_info.dependents.append(key)
                    info.pending += 1
                    self._stats.dependency_edges += 1

    # ----------------------------------------------------------------- plumbing

    def _enqueue(self, key: _InstanceKey) -> None:
        info = self._instances[key]
        if info.priority and self.use_priority:
            self._ready_priority.append(key)
        else:
            self._ready_normal.append(key)

    def has_ready_task(self) -> bool:
        return bool(self._ready_priority or self._ready_normal)

    def next_task(self) -> Optional[_InstanceKey]:
        if self._ready_priority:
            return self._ready_priority.popleft()
        if self._ready_normal:
            return self._ready_normal.popleft()
        return None

    def run_task(self, task: _InstanceKey) -> TaskResult:
        info = self._instances[task]
        if info.available:
            return TaskResult()
        if info.rule is None or info.rule_node is None:
            raise EvaluationError(
                f"attribute instance {info.node.symbol.name}.{info.name} has no defining rule"
            )
        if info.compute is not None:
            value = info.compute(info.rule_node)
        elif info.table is not None:
            value = info.table.function(*info.table.fetch_arguments(info.rule_node))
        else:
            arguments = []
            for ref in info.rule.arguments:
                source = info.rule_node.resolve(ref)
                arguments.append(source.get_attribute(ref.name))
            value = info.rule.evaluate(arguments)
        info.node.set_attribute(info.name, value)
        result = TaskResult(
            computed=[ComputedAttribute(info.node, info.name, value)],
            rules_evaluated=1,
            rule_extra_cost=info.rule.cost,
            dependency_work=1 + len(info.dependents),
        )
        self._stats.rules_evaluated += 1
        self._stats.rule_extra_cost += info.rule.cost
        self._stats.dynamic_instances += 1
        self._stats.tasks_executed += 1
        self._mark_available(task)
        return result

    def supply(self, node: ParseTreeNode, name: str, value: Any) -> List[_InstanceKey]:
        """Provide an externally computed attribute value (remote or root-inherited)."""
        key = (node.node_id, name)
        info = self._instances.get(key)
        if info is None:
            raise EvaluationError(
                f"attribute {name!r} of node {node.node_id} is not tracked by this scheduler"
            )
        if info.available:
            return []
        node.set_attribute(name, value)
        before_priority = len(self._ready_priority)
        before_normal = len(self._ready_normal)
        self._mark_available(key)
        newly_ready = list(self._ready_priority)[before_priority:] + list(
            self._ready_normal
        )[before_normal:]
        return newly_ready

    def _mark_available(self, key: _InstanceKey) -> None:
        info = self._instances[key]
        info.available = True
        self._remaining -= 1
        for dependent_key in info.dependents:
            dependent = self._instances[dependent_key]
            dependent.pending -= 1
            if dependent.pending == 0 and not dependent.external and not dependent.available:
                self._enqueue(dependent_key)

    def is_complete(self) -> bool:
        return self._remaining == 0

    def waiting_on(self) -> Sequence[Tuple[ParseTreeNode, str]]:
        return [
            (info.node, info.name)
            for info in self._instances.values()
            if info.external and not info.available
        ]

    def unevaluated(self) -> Sequence[Tuple[ParseTreeNode, str]]:
        """All instances (external or not) still lacking a value; useful in tests."""
        return [
            (info.node, info.name)
            for info in self._instances.values()
            if not info.available
        ]

    def statistics(self) -> EvaluationStatistics:
        return self._stats

    # Values of specific instances, used by the distributed layer to export attributes.
    def value_of(self, node: ParseTreeNode, name: str) -> Any:
        return node.get_attribute(name)


class DynamicEvaluator:
    """Sequential dynamic evaluator (build full dependency graph, then evaluate)."""

    def __init__(self, grammar: AttributeGrammar):
        self.grammar = grammar

    def evaluate(
        self,
        root: ParseTreeNode,
        root_inherited: Optional[Dict[str, Any]] = None,
    ) -> EvaluationStatistics:
        supplied = root_inherited_or_default(root, root_inherited)
        scheduler = DynamicScheduler(self.grammar, root, root_inherited=supplied)
        statistics = scheduler.run_to_completion()
        return statistics
