"""The static (ordered) evaluator.

Evaluation follows the visit sequences computed at grammar-analysis time
(:mod:`repro.analysis.visit_sequences`); no dependency analysis happens at evaluation
time.  The tree walk is implemented iteratively (explicit stack) so that deeply nested
parse trees — long statement lists, deeply nested procedures — do not hit Python's
recursion limit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.plan_compiler import CompiledSegments, compiled_segments
from repro.analysis.tables import EvaluationTables, evaluation_tables
from repro.analysis.visit_sequences import (
    EvalInstruction,
    OrderedEvaluationPlan,
    VisitChildInstruction,
    build_evaluation_plan,
)
from repro.evaluation.base import (
    EvaluationError,
    EvaluationStatistics,
    root_inherited_or_default,
)
from repro.grammar.grammar import AttributeGrammar
from repro.tree.node import ParseTreeNode


class StaticEvaluator:
    """Ordered attribute evaluator in the style of Kastens.

    :param grammar: the attribute grammar (must be *ordered*; otherwise
        :class:`repro.analysis.ordered.NotOrderedError` is raised during plan
        construction).
    :param plan: an optional precomputed :class:`OrderedEvaluationPlan`; sharing one
        plan across evaluators mirrors the paper's generator, which performs the
        ordered-evaluation analysis once per grammar, not once per compilation.
    """

    def __init__(
        self,
        grammar: AttributeGrammar,
        plan: Optional[OrderedEvaluationPlan] = None,
        use_tables: bool = True,
        use_compiled: bool = True,
    ):
        self.grammar = grammar
        self.plan = plan or build_evaluation_plan(grammar)
        # Precompiled argument-fetch tables (default); ``use_tables=False`` keeps the
        # seed ``AttributeRef``/``get_attribute`` path as the parity-test reference.
        self._tables: Optional[EvaluationTables] = (
            evaluation_tables(grammar) if use_tables else None
        )
        # Plan-compiled segments: per-(production, visit) generated generators with
        # argument fetches and rule firings inlined (:mod:`repro.analysis.plan_compiler`).
        # ``use_compiled=False`` keeps the instruction-interpreting table driver as
        # the parity reference; the compiled path requires the tables.
        self._compiled: Optional[CompiledSegments] = (
            compiled_segments(grammar, self.plan)
            if use_tables and use_compiled
            else None
        )

    # ------------------------------------------------------------------ driving

    def evaluate(
        self,
        root: ParseTreeNode,
        root_inherited: Optional[Dict[str, Any]] = None,
    ) -> EvaluationStatistics:
        """Evaluate every attribute instance in the tree rooted at ``root``.

        ``root_inherited`` supplies the inherited attributes of the root symbol (all of
        them at once; per-visit supply is available through :meth:`visit`).
        """
        statistics = EvaluationStatistics()
        supplied = root_inherited_or_default(root, root_inherited)
        for name, value in supplied.items():
            root.set_attribute(name, value)
        visit_count = self.plan.visit_count(root.symbol.name)
        for visit_number in range(1, visit_count + 1):
            self.visit(root, visit_number, statistics)
        statistics.static_instances = self._count_instances(root)
        return statistics

    def visit(
        self,
        root: ParseTreeNode,
        visit_number: int,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> EvaluationStatistics:
        """Perform one visit of ``root``, executing the corresponding segment.

        The inherited attributes belonging to this and earlier visits of ``root`` must
        already be stored on the node.  Returns the statistics object (created if not
        given) so callers can accumulate cost over several visits.
        """
        statistics = statistics if statistics is not None else EvaluationStatistics()
        if self._compiled is not None:
            return self._visit_compiled(root, visit_number, statistics)
        # Each stack entry is (node, iterator over remaining instructions).
        stack: List[Tuple[ParseTreeNode, object]] = []
        stack.append((root, iter(self._segment(root, visit_number))))
        statistics.visits_performed += 1
        while stack:
            node, instructions = stack[-1]
            instruction = next(instructions, None)
            if instruction is None:
                stack.pop()
                continue
            if isinstance(instruction, EvalInstruction):
                self._execute_rule(node, instruction.rule_index, statistics)
            elif isinstance(instruction, VisitChildInstruction):
                child = node.children[instruction.child_position - 1]
                statistics.visits_performed += 1
                stack.append(
                    (child, iter(self._segment(child, instruction.visit_number)))
                )
            else:  # pragma: no cover - defensive
                raise EvaluationError(f"unknown visit instruction {instruction!r}")
        return statistics

    def _visit_compiled(
        self,
        root: ParseTreeNode,
        visit_number: int,
        statistics: EvaluationStatistics,
    ) -> EvaluationStatistics:
        """The visit driver over plan-compiled segments.

        Same iterative walk as the table driver, but each stack entry is a running
        generated-segment generator that fires its rules inline and yields
        ``(child, visit_number)`` whenever a child visit is due.
        """
        stack = [self._compiled_segment(root, visit_number, statistics)]
        statistics.visits_performed += 1
        while stack:
            step = next(stack[-1], None)
            if step is None:
                stack.pop()
                continue
            child, child_visit = step
            statistics.visits_performed += 1
            stack.append(self._compiled_segment(child, child_visit, statistics))
        return statistics

    # ------------------------------------------------------------------ helpers

    def _compiled_segment(
        self,
        node: ParseTreeNode,
        visit_number: int,
        statistics: EvaluationStatistics,
    ):
        production = node.production
        if production is None:
            raise EvaluationError(
                f"cannot statically visit node {node.node_id} ({node.symbol.name}): it has "
                "no production (remote hole nodes must be handled by the combined evaluator)"
            )
        segments = self._compiled[production.index]
        if visit_number > len(segments):
            return iter(())
        return segments[visit_number - 1](node, statistics)

    def _segment(self, node: ParseTreeNode, visit_number: int) -> List[object]:
        if node.production is None:
            raise EvaluationError(
                f"cannot statically visit node {node.node_id} ({node.symbol.name}): it has "
                "no production (remote hole nodes must be handled by the combined evaluator)"
            )
        sequence = self.plan.sequences[node.production.index]
        if visit_number > sequence.visit_count:
            return []
        return sequence.segment(visit_number)

    def _execute_rule(
        self,
        node: ParseTreeNode,
        rule_index: int,
        statistics: EvaluationStatistics,
    ) -> Any:
        assert node.production is not None
        if self._tables is not None:
            table = self._tables.productions[node.production.index].rules[rule_index]
            try:
                arguments = table.fetch_arguments(node)
            except KeyError as error:
                raise EvaluationError(
                    f"static evaluation order violation at {node.production.label!r}: "
                    f"{table.rule.target!r} argument not yet available ({error})"
                ) from None
            value = table.function(*arguments)
            target_position = table.target_position
            target = node if target_position == 0 else node.children[target_position - 1]
            target.set_attribute(table.target_name, value)
            statistics.rules_evaluated += 1
            statistics.rule_extra_cost += table.cost
            return value
        rule = node.production.rules[rule_index]
        arguments = []
        for ref in rule.arguments:
            source = node.resolve(ref)
            try:
                arguments.append(source.get_attribute(ref.name))
            except KeyError as error:
                raise EvaluationError(
                    f"static evaluation order violation at {node.production.label!r}: "
                    f"{ref!r} not yet available ({error})"
                ) from None
        value = rule.evaluate(arguments)
        target = node.resolve(rule.target)
        target.set_attribute(rule.target.name, value)
        statistics.rules_evaluated += 1
        statistics.rule_extra_cost += rule.cost
        return value

    def _count_instances(self, root: ParseTreeNode) -> int:
        count = 0
        for node in root.walk():
            count += len(node.symbol.attribute_names)  # type: ignore[attr-defined]
        return count
