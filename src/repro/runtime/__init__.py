"""Simulated network multiprocessor.

The paper's experiments ran on up to six SUN-2 workstations connected by a 10 Mbit
Ethernet under the V distributed kernel.  Re-measuring real parallel speedup inside a
single CPython process is not meaningful (the GIL serialises compute), so this package
substitutes a *deterministic discrete-event simulation* of that hardware: machines with
a CPU cost model, a shared Ethernet-like link with latency and bandwidth, and
message-passing processes.  All timings reported by the benchmarks are simulated
seconds; the cost model's default constants are calibrated so the sequential compile
times land in the same few-second range the paper reports, and all *relative* results
(speedups, crossovers, phase structure) derive from the same mechanisms as on the real
hardware: per-attribute CPU work, message sizes, link contention, and idle time waiting
for remote attributes.
"""

from repro.runtime.simulator import Environment, Process, Store, Timeout, Get
from repro.runtime.network import Network, NetworkParameters
from repro.runtime.machine import Machine, ActivityKind
from repro.runtime.cost import CostModel
from repro.runtime.cluster import Cluster

__all__ = [
    "Environment",
    "Process",
    "Store",
    "Timeout",
    "Get",
    "Network",
    "NetworkParameters",
    "Machine",
    "ActivityKind",
    "CostModel",
    "Cluster",
]
