"""A small deterministic discrete-event simulation kernel.

Processes are Python generators that ``yield`` requests:

* :class:`Timeout` — resume after a simulated delay (used for CPU work and transfers);
* :class:`Get` — resume when an item is available in a :class:`Store` (mailboxes).

The kernel is intentionally minimal (no priorities, no interrupts): everything the
distributed evaluator needs is expressible with timeouts and blocking receives, and the
strict (time, sequence-number) ordering makes every simulation run exactly
reproducible, which the regression tests rely on.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple


class Timeout:
    """Request: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError("timeout delay must be non-negative")
        self.delay = delay


class Get:
    """Request: resume the process when ``store`` has an item (FIFO)."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        self.store = store


class Store:
    """An unbounded FIFO channel connecting processes (a mailbox)."""

    def __init__(self, environment: "Environment", name: str = "store"):
        self._environment = environment
        self.name = name
        self._items: Deque[Any] = deque()
        self._waiters: Deque["Process"] = deque()
        self.total_put = 0

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the longest-waiting process, if any."""
        self.total_put += 1
        if self._waiters:
            process = self._waiters.popleft()
            self._environment._schedule_resume(process, item)
        else:
            self._items.append(item)

    def _try_get(self, process: "Process") -> Tuple[bool, Any]:
        if self._items:
            return True, self._items.popleft()
        self._waiters.append(process)
        return False, None

    def __len__(self) -> int:
        return len(self._items)


class Process:
    """A running generator inside an :class:`Environment`.

    Pids are allocated by the owning environment (not a class-level global), so every
    fresh :class:`Environment` numbers its processes from 1 and back-to-back
    simulations are independently reproducible.
    """

    def __init__(self, environment: "Environment", generator: Generator, name: str = ""):
        self.pid = environment._allocate_pid()
        self.name = name or f"process-{self.pid}"
        self.environment = environment
        self.generator = generator
        self.finished = False
        self.result: Any = None

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name}, {state})"


class SimulationError(Exception):
    """Raised for malformed process behaviour (unknown yield values, etc.)."""


class Environment:
    """The event loop: schedules callbacks and steps processes deterministically."""

    def __init__(self):
        self._now = 0.0
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._active_processes = 0
        self._pid_counter = 0
        self.processes: List[Process] = []

    def _allocate_pid(self) -> int:
        self._pid_counter += 1
        return self._pid_counter

    # ------------------------------------------------------------------- clock

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, callback))

    # --------------------------------------------------------------- processes

    def store(self, name: str = "store") -> Store:
        return Store(self, name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register and start a process (it begins running at the current time)."""
        process = Process(self, generator, name)
        self.processes.append(process)
        self._active_processes += 1
        self.schedule(0.0, lambda: self._step(process, None))
        return process

    def _schedule_resume(self, process: Process, value: Any) -> None:
        self.schedule(0.0, lambda: self._step(process, value))

    def _step(self, process: Process, value: Any) -> None:
        if process.finished:
            return
        try:
            request = process.generator.send(value)
        except StopIteration as stop:
            process.finished = True
            process.result = stop.value
            self._active_processes -= 1
            return
        if isinstance(request, Timeout):
            self.schedule(request.delay, lambda: self._step(process, None))
        elif isinstance(request, Get):
            available, item = request.store._try_get(process)
            if available:
                self._schedule_resume(process, item)
        else:
            raise SimulationError(
                f"process {process.name!r} yielded an unsupported request: {request!r}"
            )

    # --------------------------------------------------------------------- run

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Process events until the queue drains (or ``until`` / ``max_events``).

        Returns the simulation time at which the run stopped.  Processes blocked on a
        :class:`Get` with no producer left are treated as idle (the caller can inspect
        them; a deadlocked distributed evaluation shows up as unfinished processes).
        """
        events = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            callback()
            events += 1
            if events > max_events:
                raise SimulationError(f"simulation exceeded {max_events} events")
        return self._now

    def unfinished_processes(self) -> List[Process]:
        return [process for process in self.processes if not process.finished]
