"""The shared-medium network model (Ethernet-like).

All machines share a single half-duplex medium: one message occupies the link for its
transmission time (size / bandwidth plus a fixed per-message overhead), transfers queue
behind each other, and delivery additionally incurs a propagation/kernel latency that
does not occupy the medium.  This mirrors the paper's 10 Mbit Ethernet + V-kernel
message passing closely enough to reproduce the effects that matter: large attributes
(code strings, symbol tables) are expensive to ship, repeated shipping of the same code
up a deep process tree serialises, and many small messages contend for the link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.runtime.simulator import Environment, Get, Store, Timeout


@dataclass(frozen=True)
class NetworkParameters:
    """Link characteristics.

    Defaults approximate the paper's testbed: 10 Mbit/s shared Ethernet
    (1.25 MB/s), a V-kernel style ~2 ms end-to-end message latency and a small
    fixed per-message wire overhead.
    """

    bandwidth_bytes_per_second: float = 1.25e6
    message_latency: float = 2e-3
    per_message_overhead_bytes: int = 64

    def transmission_time(self, size_bytes: int) -> float:
        payload = size_bytes + self.per_message_overhead_bytes
        return payload / self.bandwidth_bytes_per_second


@dataclass
class NetworkStats:
    messages: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0
    per_link: Dict[Tuple[str, str], int] = field(default_factory=dict)


class Network:
    """The shared link: transfers are serialised through a single token store."""

    def __init__(self, environment: Environment, parameters: Optional[NetworkParameters] = None):
        self.environment = environment
        self.parameters = parameters or NetworkParameters()
        self._medium = environment.store("ethernet")
        self._medium.put("token")            # capacity 1: half-duplex shared medium
        self.stats = NetworkStats()

    def local_delivery(self, mailbox: Store, message: Any) -> None:
        """Deliver without using the network (sender and receiver on the same machine)."""
        mailbox.put(message)

    def send(
        self,
        source: str,
        destination: str,
        mailbox: Store,
        message: Any,
        size_bytes: int,
    ) -> None:
        """Start an asynchronous transfer; the message appears in ``mailbox`` later.

        The caller does not block (the paper's evaluators use asynchronous sends and
        keep computing); the transfer occupies the shared medium for its transmission
        time, then the message is delivered after the propagation latency.
        """
        self.environment.process(
            self._transfer(source, destination, mailbox, message, size_bytes),
            name=f"xfer {source}->{destination}",
        )

    def _transfer(
        self,
        source: str,
        destination: str,
        mailbox: Store,
        message: Any,
        size_bytes: int,
    ) -> Generator:
        token = yield Get(self._medium)
        transmission = self.parameters.transmission_time(size_bytes)
        yield Timeout(transmission)
        self._medium.put(token)
        self.stats.messages += 1
        self.stats.bytes_sent += size_bytes
        self.stats.busy_time += transmission
        link = (source, destination)
        self.stats.per_link[link] = self.stats.per_link.get(link, 0) + 1
        yield Timeout(self.parameters.message_latency)
        mailbox.put(message)
