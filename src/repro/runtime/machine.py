"""Simulated machines: a mailbox, a CPU with a relative speed, and an activity trace.

The per-machine activity trace (busy/idle intervals labelled by phase) is what the
Figure 6 reproduction renders: "horizontal lines represent the activity of the
individual evaluators and the string librarian ... with thin lines indicating idle
periods and thick lines indicating active periods".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.runtime.simulator import Environment, Get, Store, Timeout


class ActivityKind(enum.Enum):
    """Coarse activity labels used by the timeline (Figure 6) reproduction."""

    PARSE = "parse"
    UNPACK = "unpack"
    GRAPH = "graph"
    SYMBOL_TABLE = "symbol-table"
    CODE_GENERATION = "code-generation"
    RESULT_PROPAGATION = "result-propagation"
    LIBRARIAN = "librarian"
    MESSAGE = "message"
    OTHER = "other"


@dataclass
class ActivityInterval:
    """One busy interval on a machine."""

    start: float
    end: float
    kind: ActivityKind
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class Machine:
    """One workstation in the simulated cluster."""

    def __init__(
        self,
        environment: Environment,
        name: str,
        speed: float = 1.0,
    ):
        if speed <= 0:
            raise ValueError("machine speed must be positive")
        self.environment = environment
        self.name = name
        self.speed = speed
        self.mailbox: Store = environment.store(f"{name}.mailbox")
        self.busy_time = 0.0
        self.activity: List[ActivityInterval] = []
        self._message_counts: Dict[str, int] = {"received": 0, "sent": 0}
        # Single CPU: co-located processes (parser, root evaluator, librarian) contend
        # for it rather than overlapping their work.
        self._cpu: Store = environment.store(f"{name}.cpu")
        self._cpu.put("cpu")

    # --------------------------------------------------------------- execution

    def compute(
        self, cost: float, kind: ActivityKind = ActivityKind.OTHER, label: str = ""
    ) -> Generator:
        """Occupy the CPU for ``cost`` seconds of work (scaled by machine speed).

        The machine has a single CPU: if another process on the same machine is
        computing, this call queues behind it.
        """
        duration = cost / self.speed
        token = yield Get(self._cpu)
        start = self.environment.now
        yield Timeout(duration)
        self._cpu.put(token)
        self.busy_time += duration
        self._record(start, self.environment.now, kind, label)

    def receive(self, mailbox: Optional[Store] = None) -> Generator:
        """Block until a message arrives (in ``mailbox``, or the machine's default one).

        Several processes (parser, root evaluator, librarian) can share one machine, so
        each process normally owns a private mailbox and passes it here explicitly.
        """
        message = yield Get(mailbox if mailbox is not None else self.mailbox)
        self._message_counts["received"] += 1
        return message

    def note_sent(self) -> None:
        self._message_counts["sent"] += 1

    # -------------------------------------------------------------- accounting

    def _record(self, start: float, end: float, kind: ActivityKind, label: str) -> None:
        if end <= start:
            return
        # Coalesce with the previous interval when contiguous and of the same kind, so
        # the timeline stays readable.
        if (
            self.activity
            and self.activity[-1].kind is kind
            and abs(self.activity[-1].end - start) < 1e-12
        ):
            self.activity[-1].end = end
            return
        self.activity.append(ActivityInterval(start, end, kind, label))

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def messages_received(self) -> int:
        return self._message_counts["received"]

    def messages_sent(self) -> int:
        return self._message_counts["sent"]

    def busy_time_by_kind(self) -> Dict[ActivityKind, float]:
        totals: Dict[ActivityKind, float] = {}
        for interval in self.activity:
            totals[interval.kind] = totals.get(interval.kind, 0.0) + interval.duration
        return totals

    def __repr__(self) -> str:
        return f"Machine({self.name!r}, busy={self.busy_time:.3f}s)"
