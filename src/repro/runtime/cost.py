"""CPU and memory cost model.

All simulated CPU times are derived from counters produced by the evaluators (rules
evaluated, dependency edges created, nodes delinearized, bytes converted) multiplied by
the constants below.  The defaults are calibrated to the paper's setting — a SUN-2
class workstation where compiling an ~1100-line Pascal program takes a handful of
seconds and where dynamic dependency analysis adds substantial per-attribute overhead —
but every constant can be overridden, and the ablation benchmarks sweep the important
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.evaluation.base import EvaluationStatistics, TaskResult


@dataclass(frozen=True)
class CostModel:
    """Abstract cost constants (times in simulated seconds, sizes in abstract bytes)."""

    # Semantic rule evaluation (common to every evaluator).
    rule_base_cost: float = 120e-6
    rule_unit_cost: float = 60e-6          # multiplied by a rule's declared extra cost

    # Dynamic scheduling overhead: building and maintaining the instance dependency
    # graph, and dispatching individual attribute tasks.
    dynamic_vertex_cost: float = 90e-6
    dynamic_edge_cost: float = 25e-6
    dynamic_dispatch_cost: float = 25e-6

    # Static evaluation overhead: visit dispatch is a procedure call.
    visit_dispatch_cost: float = 4e-6

    # Tree (de)serialization and parsing.
    parse_cost_per_node: float = 110e-6
    linearize_cost_per_byte: float = 0.35e-6
    delinearize_cost_per_byte: float = 0.45e-6

    # Attribute conversion for transmission (put/get), per byte.
    convert_cost_per_byte: float = 0.25e-6

    # Per-message fixed send/receive CPU cost (kernel + marshalling).
    message_cpu_cost: float = 800e-6

    # Memory model (abstract bytes) for the arena accounting.
    bytes_per_tree_node: int = 48
    bytes_per_attribute_instance: int = 24
    bytes_per_dependency_vertex: int = 40
    bytes_per_dependency_edge: int = 16

    # ------------------------------------------------------------------ times

    def rule_cost(self, count: int, extra: float = 0.0) -> float:
        """CPU time to evaluate ``count`` semantic rules with ``extra`` declared units."""
        return count * self.rule_base_cost + extra * self.rule_unit_cost

    def task_cost(self, result: TaskResult, dynamic: bool) -> float:
        """CPU time of one scheduler task given its :class:`TaskResult`."""
        time = self.rule_cost(result.rules_evaluated, result.rule_extra_cost)
        if dynamic:
            time += self.dynamic_dispatch_cost
            time += result.dependency_work * self.dynamic_edge_cost
        else:
            time += self.visit_dispatch_cost
        return time

    def graph_build_cost(self, statistics: EvaluationStatistics) -> float:
        """CPU time to build a dynamic dependency graph of the given size."""
        return (
            statistics.dependency_vertices * self.dynamic_vertex_cost
            + statistics.dependency_edges * self.dynamic_edge_cost
        )

    def parse_cost(self, node_count: int) -> float:
        return node_count * self.parse_cost_per_node

    def linearize_cost(self, size_bytes: int) -> float:
        return size_bytes * self.linearize_cost_per_byte

    def delinearize_cost(self, size_bytes: int) -> float:
        return size_bytes * self.delinearize_cost_per_byte

    def convert_cost(self, size_bytes: int) -> float:
        return size_bytes * self.convert_cost_per_byte

    # ----------------------------------------------------------------- memory

    def tree_memory(self, node_count: int) -> int:
        return node_count * self.bytes_per_tree_node

    def dynamic_graph_memory(self, statistics: EvaluationStatistics) -> int:
        return (
            statistics.dependency_vertices * self.bytes_per_dependency_vertex
            + statistics.dependency_edges * self.bytes_per_dependency_edge
        )

    def attribute_memory(self, instance_count: int) -> int:
        return instance_count * self.bytes_per_attribute_instance

    # ------------------------------------------------------------------ misc

    def scaled(self, factor: float) -> "CostModel":
        """A cost model with all CPU times multiplied by ``factor`` (faster/slower CPU)."""
        return replace(
            self,
            rule_base_cost=self.rule_base_cost * factor,
            rule_unit_cost=self.rule_unit_cost * factor,
            dynamic_vertex_cost=self.dynamic_vertex_cost * factor,
            dynamic_edge_cost=self.dynamic_edge_cost * factor,
            dynamic_dispatch_cost=self.dynamic_dispatch_cost * factor,
            visit_dispatch_cost=self.visit_dispatch_cost * factor,
            parse_cost_per_node=self.parse_cost_per_node * factor,
            linearize_cost_per_byte=self.linearize_cost_per_byte * factor,
            delinearize_cost_per_byte=self.delinearize_cost_per_byte * factor,
            convert_cost_per_byte=self.convert_cost_per_byte * factor,
            message_cpu_cost=self.message_cpu_cost * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            name: getattr(self, name)
            for name in (
                "rule_base_cost",
                "rule_unit_cost",
                "dynamic_vertex_cost",
                "dynamic_edge_cost",
                "dynamic_dispatch_cost",
                "visit_dispatch_cost",
                "parse_cost_per_node",
                "linearize_cost_per_byte",
                "delinearize_cost_per_byte",
                "convert_cost_per_byte",
                "message_cpu_cost",
            )
        }
