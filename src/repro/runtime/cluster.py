"""A cluster: machines + network + event loop, with helpers for timelines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.runtime.cost import CostModel
from repro.runtime.machine import ActivityInterval, Machine
from repro.runtime.network import Network, NetworkParameters
from repro.runtime.simulator import Environment, Process, Store


class Cluster:
    """A simulated network multiprocessor.

    :param machine_count: number of workstations.
    :param network: link parameters (defaults approximate the paper's 10 Mbit Ethernet).
    :param cost_model: CPU cost constants shared by all processes on the cluster.
    :param machine_speeds: optional per-machine relative speeds (all 1.0 by default —
        the paper's machines were identical SUN-2 workstations).
    """

    def __init__(
        self,
        machine_count: int,
        network: Optional[NetworkParameters] = None,
        cost_model: Optional[CostModel] = None,
        machine_speeds: Optional[List[float]] = None,
    ):
        if machine_count < 1:
            raise ValueError("a cluster needs at least one machine")
        self.environment = Environment()
        self.cost_model = cost_model or CostModel()
        self.network = Network(self.environment, network)
        speeds = machine_speeds or [1.0] * machine_count
        if len(speeds) != machine_count:
            raise ValueError("machine_speeds must have one entry per machine")
        self.machines: List[Machine] = [
            Machine(self.environment, f"machine-{index}", speed)
            for index, speed in enumerate(speeds)
        ]

    # ------------------------------------------------------------------ basics

    @property
    def machine_count(self) -> int:
        return len(self.machines)

    def machine(self, index: int) -> Machine:
        return self.machines[index]

    def spawn(self, generator: Generator, name: str = "") -> Process:
        return self.environment.process(generator, name)

    def run(self, until: Optional[float] = None) -> float:
        return self.environment.run(until=until)

    @property
    def now(self) -> float:
        return self.environment.now

    # -------------------------------------------------------------- messaging

    def send(
        self,
        source: Machine,
        destination: Machine,
        message: Any,
        size_bytes: int,
        mailbox: Optional[Store] = None,
    ) -> None:
        """Send a message between machines (free and immediate when co-located).

        ``mailbox`` selects the destination process's private mailbox; it defaults to the
        destination machine's default mailbox.
        """
        source.note_sent()
        target = mailbox if mailbox is not None else destination.mailbox
        if source is destination:
            self.network.local_delivery(target, message)
        else:
            self.network.send(source.name, destination.name, target, message, size_bytes)

    # --------------------------------------------------------------- reporting

    def timeline(self) -> Dict[str, List[ActivityInterval]]:
        """Per-machine activity intervals (the raw material of Figure 6)."""
        return {machine.name: list(machine.activity) for machine in self.machines}

    def utilization(self) -> Dict[str, float]:
        horizon = self.environment.now
        return {machine.name: machine.utilization(horizon) for machine in self.machines}

    def network_stats(self):
        return self.network.stats
