"""Deterministic fault injection (see :mod:`repro.faults.plan`).

Build a seeded :class:`FaultPlan`, install it, and every named injection point
threaded through the substrates, the cluster wire, the shm ship, the artifact
cache and the HTTP server becomes a deterministic chaos source::

    from repro.faults import FaultPlan, FaultRule, active

    plan = FaultPlan(seed=7, rules=[
        FaultRule(point="mailbox.send", action="drop", times=1, after=3),
        FaultRule(point="worker.crash", action="crash", times=1),
    ])
    with active(plan):
        result = compiler.compile(source)   # survives or fails *typed*

The plan rides the process environment (``REPRO_FAULTS``) into pooled and
cluster workers, exactly like a language bundle.  With no plan installed the
plane is a guaranteed no-op: one module-attribute check per site.

Mutable state (the installed plan, the injection counter) lives on
:mod:`repro.faults.plan`; injection sites import that module directly so they
always observe the current plan.
"""

from repro.faults.plan import (
    ENV_VAR,
    FaultError,
    FaultHit,
    FaultPlan,
    FaultRule,
    active,
    check,
    injected_count,
    install,
    load_from_env,
    uninstall,
)

__all__ = [
    "ENV_VAR",
    "FaultError",
    "FaultHit",
    "FaultPlan",
    "FaultRule",
    "active",
    "check",
    "injected_count",
    "install",
    "load_from_env",
    "uninstall",
]
