"""The deterministic fault-injection plane: seed-driven faults at named points.

Real code paths — mailbox sends and receives, the cluster wire protocol, worker
spawn and job execution, shared-memory ships, the artifact cache, the HTTP
server — each declare a **named injection point**.  A :class:`FaultPlan` (a seed
plus a list of :class:`FaultRule`\\ s) decides, deterministically, which
opportunities at those points turn into injected faults: a dropped message, a
delayed frame, a crashed worker, a poisoned artifact, a typed
:class:`FaultError`.

Design constraints, in order:

1. **Free when off.**  The plan is held in one module global, ``ACTIVE``.  Every
   injection site guards itself with ``if _faults.ACTIVE is not None`` — one
   attribute load and an identity test — so an idle plane adds no measurable
   work to the hot path (bench-verified by ``benchmarks/bench_chaos.py``).
2. **Deterministic.**  Rules fire on *opportunity counters*, not wall clocks:
   the Nth chance at a point either fires or not as a pure function of
   ``(seed, rule, N)``.  Probability rules hash those three into a fraction, so
   the same seed replays the same faults.
3. **Ships like a bundle.**  :func:`install` also writes the pickled plan into
   the process environment (``REPRO_FAULTS``), so pooled workers forked later
   and cluster worker processes inherit it; worker entry points call
   :func:`load_from_env`.  This matches how ``cluster/_testing.py`` has always
   shipped its test knobs — workers inherit the spawning environment.

The counters are **process-local** runtime state and are excluded from
pickling: a plan arriving in a worker starts its opportunity counts at zero,
which is exactly what a deterministic per-process replay wants.

Injection points currently threaded through the codebase:

================== =========================================== ==================
point              site                                        actions understood
================== =========================================== ==================
``mailbox.send``   every substrate's send path                 drop, duplicate, delay, error
``mailbox.receive`` ``backends.base.blocking_receive``         delay, error
``worker.spawn``   ``ProcessesSubstrate._fork_worker_locked``  error
``worker.crash``   pooled process / thread job execution       crash (child ``os._exit``), error
``wire.send`` / ``wire.recv`` ``cluster.wire`` frame codec     corrupt, truncate, delay, error
``shm.share``      ``tree.shm.share_packed``                   error (→ packed-bytes fallback)
``shm.attach``     ``tree.shm`` segment attach                 error
``shm.unlink``     ``tree.shm`` segment release                error (swallowed, counted)
``cache.get``      ``incremental.cache.ArtifactCache.get``     poison (forced miss), error
``server.request`` ``server.app`` request dispatch             stall (delay), error
``store.read``     ``store.objects.ArtifactStore.read``        error (→ miss), corrupt (→ quarantined miss), delay
``store.write``    ``store.objects.ArtifactStore.write``       error (→ dropped write), corrupt (detected on read), delay
``testing.dawdle`` ``cluster._testing`` slow grammar           delay
================== =========================================== ==================

A site only looks at the actions it understands; an unknown action at a point
behaves like ``error`` there (the conservative interpretation).
"""

from __future__ import annotations

import base64
import contextlib
import hashlib
import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

#: Environment variable carrying the installed plan to child processes.
ENV_VAR = "REPRO_FAULTS"

#: Actions every injection site must at least map to "raise a FaultError".
KNOWN_ACTIONS = (
    "error", "drop", "duplicate", "delay", "crash",
    "corrupt", "truncate", "poison", "stall",
)


class FaultError(RuntimeError):
    """A fault injected by the active :class:`FaultPlan` (typed, expected).

    Carrying the point and action lets tests assert *which* fault surfaced and
    lets retry layers treat injected faults exactly like organic ones.
    """

    def __init__(self, point: str, action: str = "error", detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"injected fault at {point!r}: {action}{suffix}")
        self.point = point
        self.action = action
        self.detail = detail


@dataclass(frozen=True)
class FaultRule:
    """One deterministic firing rule for a named injection point.

    :param point: the injection-point name this rule watches.
    :param action: what the site should do when the rule fires (site-interpreted).
    :param probability: chance each opportunity fires, hashed from
        ``(seed, rule, opportunity)`` — 1.0 fires every eligible opportunity.
    :param times: maximum number of firings (``None`` = unlimited).
    :param after: skip this many opportunities before the rule becomes eligible,
        so "crash on the third receive" is expressible without probabilities.
    :param delay: seconds for delay/stall actions (``FaultHit.sleep``).
    :param match: substring the site's detail string must contain (e.g. a
        mailbox name), narrowing the rule to one channel.
    """

    point: str
    action: str = "error"
    probability: float = 1.0
    times: Optional[int] = 1
    after: int = 0
    delay: float = 0.0
    match: str = ""

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("a FaultRule needs a non-empty injection point name")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class FaultHit:
    """One fired rule, handed to the injection site to act on."""

    point: str
    action: str
    delay: float
    rule_index: int
    detail: str

    def sleep(self) -> None:
        """Serve a delay/stall action (no-op for zero delay)."""
        if self.delay > 0:
            time.sleep(self.delay)

    def raise_error(self) -> None:
        raise FaultError(self.point, self.action, self.detail)


class FaultPlan:
    """A seed plus rules; picklable, with process-local runtime counters.

    ``check(point, detail)`` is the whole runtime API: it returns a
    :class:`FaultHit` when some rule fires for this opportunity, else ``None``.
    Thread-safe — substrates call it from worker threads, coordinator threads
    and forked children concurrently.
    """

    def __init__(self, seed: int = 0, rules: Sequence[FaultRule] = ()):
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._reset_runtime()

    def _reset_runtime(self) -> None:
        self._lock = threading.Lock()
        self._opportunities = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        self._injected = 0

    # ------------------------------------------------------------------ pickling

    def __getstate__(self):
        return {"seed": self.seed, "rules": self.rules}

    def __setstate__(self, state) -> None:
        self.seed = state["seed"]
        self.rules = state["rules"]
        self._reset_runtime()

    # ------------------------------------------------------------------- firing

    def _chance(self, rule_index: int, opportunity: int) -> float:
        token = f"{self.seed}:{rule_index}:{opportunity}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def check(self, point: str, detail: str = "") -> Optional[FaultHit]:
        """The Nth opportunity at ``point``: a :class:`FaultHit` or ``None``."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.point != point:
                    continue
                if rule.match and rule.match not in detail:
                    continue
                opportunity = self._opportunities[index]
                self._opportunities[index] = opportunity + 1
                if opportunity < rule.after:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                if rule.probability < 1.0 and self._chance(index, opportunity) >= rule.probability:
                    continue
                self._fired[index] += 1
                self._injected += 1
                _count_injection()
                return FaultHit(
                    point=point,
                    action=rule.action,
                    delay=rule.delay,
                    rule_index=index,
                    detail=detail,
                )
        return None

    @property
    def injected(self) -> int:
        """How many faults this plan has fired in this process."""
        with self._lock:
            return self._injected

    def describe(self) -> str:
        lines = [f"FaultPlan(seed={self.seed}, {len(self.rules)} rule(s))"]
        for index, rule in enumerate(self.rules):
            lines.append(
                f"  [{index}] {rule.point} -> {rule.action}"
                f" p={rule.probability:g} times={rule.times} after={rule.after}"
                + (f" delay={rule.delay:g}s" if rule.delay else "")
                + (f" match={rule.match!r}" if rule.match else "")
            )
        return "\n".join(lines)

    # ------------------------------------------------------------- env transport

    def encode(self) -> str:
        """The plan as an environment-safe ASCII token (base64 pickle)."""
        return base64.urlsafe_b64encode(pickle.dumps(self)).decode("ascii")

    @classmethod
    def decode(cls, token: str) -> "FaultPlan":
        plan = pickle.loads(base64.urlsafe_b64decode(token.encode("ascii")))
        if not isinstance(plan, cls):
            raise ValueError(f"{ENV_VAR} does not decode to a FaultPlan")
        return plan


# ------------------------------------------------------------------ module state

#: The installed plan, or None.  Injection sites read this attribute directly —
#: ``if _faults.ACTIVE is not None`` is the entire disabled-plane cost.
ACTIVE: Optional[FaultPlan] = None

_injected_lock = threading.Lock()
_injected_total = 0


def _count_injection() -> None:
    global _injected_total
    with _injected_lock:
        _injected_total += 1


def injected_count() -> int:
    """Total faults injected in this process, across every plan ever active."""
    with _injected_lock:
        return _injected_total


def install(plan: FaultPlan, *, env: bool = True) -> FaultPlan:
    """Activate ``plan`` process-wide (and, via the environment, for children).

    ``env=False`` keeps the plan out of the environment for tests that must not
    leak faults into workers they fork.
    """
    global ACTIVE
    ACTIVE = plan
    if env:
        os.environ[ENV_VAR] = plan.encode()
    return plan


def uninstall() -> None:
    """Deactivate any plan and scrub the environment."""
    global ACTIVE
    ACTIVE = None
    os.environ.pop(ENV_VAR, None)


def load_from_env() -> Optional[FaultPlan]:
    """Adopt the plan shipped in the environment (worker entry points call this).

    A corrupt token deactivates injection rather than killing the worker — a
    fault plane must never be the fault.
    """
    global ACTIVE
    token = os.environ.get(ENV_VAR)
    if not token:
        return ACTIVE
    try:
        ACTIVE = FaultPlan.decode(token)
    except Exception:
        ACTIVE = None
    return ACTIVE


@contextlib.contextmanager
def active(plan: FaultPlan, *, env: bool = True) -> Iterator[FaultPlan]:
    """``with faults.active(plan): ...`` — install on entry, uninstall on exit."""
    install(plan, env=env)
    try:
        yield plan
    finally:
        uninstall()


def check(point: str, detail: str = "") -> Optional[FaultHit]:
    """Convenience for cold paths: consult the active plan if there is one."""
    plan = ACTIVE
    if plan is None:
        return None
    return plan.check(point, detail)
