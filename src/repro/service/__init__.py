"""The compilation service layer: sustained throughput on one persistent pool.

The paper's generator runs its grammar-time analyses once and then compiles many
programs; :class:`CompilationService` is the runtime counterpart — it owns a pooled
execution substrate, accepts a stream of compilation jobs (``(language, source)``
pairs resolved through the :mod:`repro.api` registry, or explicit compiler+tree
jobs) with configurable in-flight concurrency, returns futures resolving to full
:class:`~repro.distributed.compiler.CompilationReport` objects, and tracks aggregate
service statistics (jobs, throughput, latency percentiles decomposed by parse vs
compile phase).
"""

from repro.service.service import (
    CompilationJob,
    CompilationService,
    ServiceError,
    ServiceStats,
)

__all__ = [
    "CompilationJob",
    "CompilationService",
    "ServiceError",
    "ServiceStats",
]
