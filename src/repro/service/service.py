"""A compilation service: many compilations, one persistent substrate.

``ParallelCompiler.compile_tree`` is a one-shot call; this module turns it into a
served workload.  A :class:`CompilationService` owns (or borrows) a pooled
:class:`~repro.backends.base.Substrate`, keeps up to ``max_in_flight`` compilations
running concurrently on it, and measures what a server operator would measure:
compiles per second and latency percentiles.

Jobs are heterogeneous: a :class:`CompilationJob` names a registered language (the
service parses the source and compiles on the registry's shared, name-key-bundled
engine) or carries its own compiler, so one service interleaves Pascal and
expression-language compilations on the same worker pool — pooled process workers
receive each language's grammar bundle once ever.

Typical use::

    from repro.service import CompilationService, CompilationJob

    with CompilationService("threads", max_in_flight=4) as service:
        futures = [service.submit(CompilationJob(language="pascal", source=src,
                                                 machines=4))
                   for src in sources]
        reports = [f.result() for f in futures]
        print(service.stats().summary())
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.backends import Substrate, create_substrate
from repro.distributed.compiler import CompilationReport, ParallelCompiler
from repro.faults import plan as _faults
from repro.resilience import CancelToken, Deadline, DeadlineExceeded
from repro.tree.node import ParseTreeNode

#: How many completed-job latencies the service keeps for percentile estimates.
LATENCY_WINDOW = 4096


class ServiceError(RuntimeError):
    """Raised for service lifecycle misuse (submitting after shutdown, etc.)."""


@dataclass
class CompilationJob:
    """One unit of work for the service: a program plus how to compile it.

    The front-door form names a registered ``language`` and provides ``source``:
    the service parses with the language's front end and compiles on the registry's
    shared engine, whose grammar bundle is keyed by language name — so the pooled
    processes substrate ships each language's grammar+plan to a worker once ever.
    Jobs of different languages stream through one service.

    The explicit form instead provides a configured ``compiler``
    (:class:`ParallelCompiler`) plus an already-parsed ``tree``, or a ``source``
    with a ``parse`` callable.  When both ``language`` and ``compiler`` are given,
    the compiler wins and the language only supplies the parser.
    """

    compiler: Optional[ParallelCompiler] = None
    tree: Optional[ParseTreeNode] = None
    source: Optional[str] = None
    parse: Optional[Callable[[str], ParseTreeNode]] = None
    machines: int = 2
    root_inherited: Optional[Dict[str, Any]] = None
    label: str = ""
    language: Optional[str] = None
    evaluator: str = "combined"

    def resolve(self) -> Tuple[ParallelCompiler, ParseTreeNode]:
        """The engine and parsed tree this job runs on (parsing if needed)."""
        if self.language is not None:
            # Local import: repro.api builds on the service layer, not the reverse.
            from repro.api.language import engine_for, get_language

            lang = get_language(self.language)
            engine = self.compiler or engine_for(lang, self.evaluator)
            if self.tree is not None:
                return engine, self.tree
            if self.source is None:
                raise ServiceError(
                    f"job {self.label!r} names language {self.language!r} "
                    "but has neither a tree nor a source"
                )
            parse = self.parse or lang.parse
            return engine, parse(self.source)
        if self.compiler is None:
            raise ServiceError(
                f"job {self.label!r} needs a language name or a compiler"
            )
        return self.compiler, self.resolve_tree()

    def resolve_tree(self) -> ParseTreeNode:
        if self.tree is not None:
            return self.tree
        if self.source is None:
            raise ServiceError(f"job {self.label!r} has neither a tree nor a source")
        if self.parse is None:
            raise ServiceError(
                f"job {self.label!r} has a source but no parse callable"
            )
        return self.parse(self.source)


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of one service's aggregate behaviour.

    Whole-job latency percentiles are decomposed by phase: ``parse_*`` covers
    scanning + parsing for jobs submitted as source text (jobs submitted with a
    pre-built tree contribute nothing there) and ``compile_*`` covers the
    partition + parallel-evaluation run on the substrate, for every job.  All
    figures are wall-clock seconds over the completed-job window.
    """

    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    jobs_in_flight: int
    uptime_seconds: float
    throughput: float          #: completed compilations per second of uptime
    latency_mean: float
    latency_p50: float
    latency_p95: float
    backend: str
    sessions_opened: int
    parse_p50: float = 0.0
    parse_p95: float = 0.0
    compile_p50: float = 0.0
    compile_p95: float = 0.0
    #: Region-artifact cache accounting summed over completed jobs: regions
    #: replayed from the content-addressed cache vs regions evaluated.  Both stay
    #: 0 unless the service (or the jobs' compilers) run with an artifact cache.
    region_cache_hits: int = 0
    region_cache_misses: int = 0
    #: Persistent-store accounting, filled only when the artifact cache has an
    #: on-disk second tier (``store=``): memory misses served from the store
    #: (``store_hits``) vs misses the store could not serve, write-behind blobs
    #: landed, blobs quarantined as corrupt, LRU evictions by ``gc()``, and the
    #: byte traffic both ways.  ``store_hits > 0`` after a process restart is
    #: the warm-start proof the CI smoke asserts on.
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    store_corrupt: int = 0
    store_evictions: int = 0
    store_bytes_read: int = 0
    store_bytes_written: int = 0
    #: Compile-cluster accounting, filled only on a clustered substrate (the
    #: sockets backend): fleet size, orphaned-region reassignments after worker
    #: deaths/timeouts, and speculative straggler re-executions.
    cluster_workers: int = 0
    cluster_reassignments: int = 0
    cluster_speculations: int = 0
    #: Front-door admission/coalescing accounting, filled by a network front end
    #: (:mod:`repro.server`) via the ``note_*`` hooks: submissions served by
    #: sharing another submission's in-flight compile or cached result, admitted
    #: submissions that waited in the bounded pending queue, and submissions
    #: refused with backpressure (quota exhausted or queue full).
    jobs_coalesced: int = 0
    jobs_queued: int = 0
    jobs_rejected: int = 0
    #: Resilience accounting.  ``retries`` counts job re-executions after a
    #: worker loss (cluster reassignments + pooled-process replays);
    #: ``worker_respawns`` counts workers forked to replace dead ones;
    #: ``faults_injected`` is this process's fault-plane injection total (child
    #: processes count their own injections locally — they are not aggregated
    #: here); ``deadline_misses`` counts jobs that ended with
    #: :class:`repro.resilience.DeadlineExceeded`.
    retries: int = 0
    worker_respawns: int = 0
    faults_injected: int = 0
    deadline_misses: int = 0

    @property
    def region_cache_hit_rate(self) -> float:
        total = self.region_cache_hits + self.region_cache_misses
        return self.region_cache_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of every counter (cluster counters included).

        This is the wire form served by the ``/stats`` endpoint of
        :mod:`repro.server` — machine-readable where :meth:`summary` is prose.
        All values are plain ints/floats/strings, safe for ``json.dumps``.
        """
        payload = asdict(self)
        payload["region_cache_hit_rate"] = self.region_cache_hit_rate
        return payload

    def summary(self) -> str:
        lines = (
            f"{self.jobs_completed} compiled / {self.jobs_failed} failed / "
            f"{self.jobs_in_flight} in flight on the {self.backend} pool: "
            f"{self.throughput:.2f} compiles/s over {self.uptime_seconds:.2f}s, "
            f"latency mean {self.latency_mean * 1000:.1f}ms, "
            f"p50 {self.latency_p50 * 1000:.1f}ms, p95 {self.latency_p95 * 1000:.1f}ms "
            f"(parse p50 {self.parse_p50 * 1000:.1f}ms / "
            f"compile p50 {self.compile_p50 * 1000:.1f}ms)"
        )
        if self.region_cache_hits or self.region_cache_misses:
            lines += (
                f", region cache {self.region_cache_hits} hit(s) / "
                f"{self.region_cache_misses} miss(es) "
                f"({self.region_cache_hit_rate * 100:.0f}% hit rate)"
            )
        if self.store_hits or self.store_misses or self.store_writes:
            lines += (
                f", store {self.store_hits} hit(s) / {self.store_misses} miss(es) / "
                f"{self.store_writes} write(s)"
            )
            if self.store_corrupt or self.store_evictions:
                lines += (
                    f" ({self.store_corrupt} quarantined, "
                    f"{self.store_evictions} evicted)"
                )
        if self.cluster_workers:
            lines += (
                f", cluster {self.cluster_workers} worker(s) / "
                f"{self.cluster_reassignments} reassignment(s) / "
                f"{self.cluster_speculations} speculation(s)"
            )
        if self.jobs_coalesced or self.jobs_queued or self.jobs_rejected:
            lines += (
                f", front door {self.jobs_coalesced} coalesced / "
                f"{self.jobs_queued} queued / {self.jobs_rejected} rejected"
            )
        if (
            self.retries or self.worker_respawns
            or self.faults_injected or self.deadline_misses
        ):
            lines += (
                f", resilience {self.retries} retr{'y' if self.retries == 1 else 'ies'} / "
                f"{self.worker_respawns} respawn(s) / "
                f"{self.faults_injected} fault(s) injected / "
                f"{self.deadline_misses} deadline miss(es)"
            )
        return lines


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


class CompilationService:
    """Serve compilation jobs from a persistent worker pool.

    :param substrate: a backend name (``"simulated"``/``"threads"``/``"processes"``/
        ``"sockets"``, creating a pool the service owns and will shut down) or an
        already-started :class:`Substrate` to borrow (left running at shutdown).
    :param max_in_flight: how many compilations may run concurrently on the pool.
    :param workers: initial pool size when the service creates the substrate.
    :param receive_timeout: blocking-receive bound handed to a substrate the service
        creates (ignored for borrowed substrates).
    :param artifact_cache: enable content-addressed region caching for language
        jobs: ``True`` creates a service-owned :class:`repro.incremental.
        ArtifactCache`, or pass an existing cache to share it.  Jobs whose region
        content (and engine) matches an earlier job replay those regions instead of
        re-evaluating them — results are identical, and ``stats()`` reports the
        hit/miss counters.
    :param store: mount a persistent second tier under the artifact cache — a
        path or :class:`repro.store.ArtifactStore`.  Implies caching: with
        ``artifact_cache=False`` the service creates a store-backed cache; with
        ``artifact_cache=True`` the created cache mounts this store.  Cannot be
        combined with a borrowed cache instance (configure that cache's own
        store instead).  A restarted service sharing the store replays regions
        its predecessor recorded — warm-start across process death.
    """

    def __init__(
        self,
        substrate: Union[str, Substrate] = "threads",
        *,
        max_in_flight: int = 4,
        workers: int = 0,
        receive_timeout: Optional[float] = None,
        artifact_cache: Union[bool, Any] = False,
        store: Optional[Any] = None,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if isinstance(substrate, str):
            self._substrate = create_substrate(
                substrate, workers=workers, receive_timeout=receive_timeout
            )
            self._owns_substrate = True
        else:
            self._substrate = substrate
            self._owns_substrate = False
        self.max_in_flight = max_in_flight
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._parse_latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._compile_latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._started_at: Optional[float] = None
        self._closed = False
        self._region_cache_hits = 0
        self._region_cache_misses = 0
        self._coalesced = 0
        self._queued = 0
        self._rejected = 0
        self._deadline_misses = 0
        if artifact_cache is True or (
            store is not None and (artifact_cache is False or artifact_cache is None)
        ):
            from repro.incremental.cache import ArtifactCache

            self._artifact_cache: Optional[Any] = ArtifactCache(store=store)
        elif artifact_cache is False or artifact_cache is None:
            self._artifact_cache = None
        else:
            # An existing cache instance is borrowed as-is (note: an empty cache is
            # falsy — it has __len__ — so identity checks, not truthiness).
            if store is not None:
                raise ValueError(
                    "pass store= to the cache you are sharing, not to the "
                    "service borrowing it (ArtifactCache(store=...))"
                )
            self._artifact_cache = artifact_cache

    # ---------------------------------------------------------------- lifecycle

    @property
    def substrate(self) -> Substrate:
        return self._substrate

    def start(self) -> "CompilationService":
        """Bring the pool and the dispatch executor up (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self._executor is None:
                self._substrate.start()
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_in_flight, thread_name_prefix="repro-service"
                )
                self._started_at = time.perf_counter()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for in-flight compilations.

        Shuts the substrate down too if the service created it; a borrowed substrate
        is left running for its owner.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
        if executor is not None:
            executor.shutdown(wait=wait)
        if self._owns_substrate:
            self._substrate.shutdown()

    #: ``close()`` is an alias of :meth:`shutdown`, matching the session/substrate
    #: vocabulary; after either, :meth:`submit` raises a clear
    #: ``RuntimeError("service is closed")`` instead of failing deep in the
    #: substrate.
    close = shutdown

    def __enter__(self) -> "CompilationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------- intake

    def submit(
        self,
        job: CompilationJob,
        *,
        deadline: Optional[Deadline] = None,
    ) -> "Future[CompilationReport]":
        """Queue one job; returns a future resolving to its CompilationReport.

        At most ``max_in_flight`` jobs run concurrently; the rest wait in the
        executor's queue.  A failing job fails only its own future.

        ``deadline`` bounds the whole job: it is checked before each phase
        (resolve/parse, compile) and its remaining budget tightens the
        substrate's blocking-receive bound (and so the cluster's per-job
        timeout) — the future then fails with
        :class:`repro.resilience.DeadlineExceeded` instead of hanging past the
        budget.  Every returned future carries a ``cancel_token``
        (:class:`repro.resilience.CancelToken`): cancelling it stops the
        compilation cooperatively at the next phase boundary, failing the
        future with ``CancelledCompilation`` — unlike ``Future.cancel()``,
        which only works before the job starts.

        Raises :class:`ServiceError` (a ``RuntimeError``) with the message
        ``"service is closed"`` once :meth:`close`/:meth:`shutdown` has run.
        """
        self.start()
        cancel_token = CancelToken()
        with self._lock:
            if self._closed or self._executor is None:
                raise ServiceError("service is closed")
            self._submitted += 1
            future = self._executor.submit(self._execute, job, deadline, cancel_token)
        future.cancel_token = cancel_token
        return future

    def compile_many(self, jobs: Iterable[CompilationJob]) -> List[CompilationReport]:
        """Submit a batch and wait for all of it; reports come back in job order.

        Raises the first job failure (after every job has been scheduled — one bad
        job does not cancel its siblings).
        """
        futures = [self.submit(job) for job in jobs]
        return [future.result() for future in futures]

    # -------------------------------------------------------------------- stats

    def note_coalesced(self, count: int = 1) -> None:
        """Record submissions served by sharing another submission's compile.

        Called by a front end (:mod:`repro.server`) whose content-hash coalescer
        fanned one underlying compile out to ``count`` extra identical requests.
        """
        with self._lock:
            self._coalesced += count

    def note_queued(self, count: int = 1) -> None:
        """Record admitted submissions that waited in a bounded pending queue."""
        with self._lock:
            self._queued += count

    def note_rejected(self, count: int = 1) -> None:
        """Record submissions refused with backpressure (quota or queue full)."""
        with self._lock:
            self._rejected += count

    def stats(self) -> ServiceStats:
        with self._lock:
            uptime = (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            latencies = sorted(self._latencies)
            parse_latencies = sorted(self._parse_latencies)
            compile_latencies = sorted(self._compile_latencies)
            completed = self._completed
            failed = self._failed
            submitted = self._submitted
            region_hits = self._region_cache_hits
            region_misses = self._region_cache_misses
            coalesced = self._coalesced
            queued = self._queued
            rejected = self._rejected
            deadline_misses = self._deadline_misses
        # Clustered substrates (sockets) expose fleet/fault-tolerance counters;
        # everything else reports zeros (duck-typed so the service layer never
        # imports the cluster package).
        cluster_workers = cluster_reassignments = cluster_speculations = 0
        cluster_stats = getattr(self._substrate, "cluster_stats", None)
        if callable(cluster_stats):
            snapshot = cluster_stats()
            cluster_workers = snapshot.workers_alive
            cluster_reassignments = snapshot.reassignments
            cluster_speculations = snapshot.speculative_attempts
        # Pooled substrates expose a respawn counter the same duck-typed way; a
        # pooled-process respawn re-executes exactly one job, so it counts as a
        # retry alongside the cluster's reassignments.
        respawns = getattr(self._substrate, "respawns", 0)
        if not isinstance(respawns, int):  # pragma: no cover — defensive
            respawns = 0
        # Persistent-store tier accounting: read-through hits/misses live on the
        # cache, write/corruption/eviction totals on the store itself (which may
        # be shared by several services — these are store-lifetime figures).
        store_hits = store_misses = store_writes = 0
        store_corrupt = store_evictions = 0
        store_bytes_read = store_bytes_written = 0
        cache = self._artifact_cache
        cache_store = getattr(cache, "store", None) if cache is not None else None
        if cache_store is not None:
            store_hits = cache.store_hits
            store_misses = cache.store_misses
            store_snapshot = cache_store.stats()
            store_writes = store_snapshot.writes
            store_corrupt = store_snapshot.corrupt
            store_evictions = store_snapshot.evictions
            store_bytes_read = store_snapshot.bytes_read
            store_bytes_written = store_snapshot.bytes_written
        return ServiceStats(
            jobs_submitted=submitted,
            jobs_completed=completed,
            jobs_failed=failed,
            jobs_in_flight=submitted - completed - failed,
            uptime_seconds=uptime,
            throughput=completed / uptime if uptime > 0 else 0.0,
            latency_mean=sum(latencies) / len(latencies) if latencies else 0.0,
            latency_p50=_percentile(latencies, 0.50),
            latency_p95=_percentile(latencies, 0.95),
            backend=self._substrate.name,
            sessions_opened=self._substrate.sessions_opened,
            parse_p50=_percentile(parse_latencies, 0.50),
            parse_p95=_percentile(parse_latencies, 0.95),
            compile_p50=_percentile(compile_latencies, 0.50),
            compile_p95=_percentile(compile_latencies, 0.95),
            region_cache_hits=region_hits,
            region_cache_misses=region_misses,
            cluster_workers=cluster_workers,
            cluster_reassignments=cluster_reassignments,
            cluster_speculations=cluster_speculations,
            jobs_coalesced=coalesced,
            jobs_queued=queued,
            jobs_rejected=rejected,
            retries=cluster_reassignments + respawns,
            worker_respawns=respawns,
            faults_injected=_faults.injected_count(),
            deadline_misses=deadline_misses,
            store_hits=store_hits,
            store_misses=store_misses,
            store_writes=store_writes,
            store_corrupt=store_corrupt,
            store_evictions=store_evictions,
            store_bytes_read=store_bytes_read,
            store_bytes_written=store_bytes_written,
        )

    # ---------------------------------------------------------------- internals

    def _execute(
        self,
        job: CompilationJob,
        deadline: Optional[Deadline] = None,
        cancel_token: Optional[CancelToken] = None,
    ) -> CompilationReport:
        started = time.perf_counter()
        did_parse = job.tree is None  # pre-built trees involve no parse phase
        try:
            # Deadline before cancel token at every boundary: callers cancel
            # *because* their budget ran out, and the spent budget is the more
            # specific diagnosis (it is also what deadline_misses counts).
            if deadline is not None:
                deadline.check(f"job {job.label!r}")
            if cancel_token is not None:
                cancel_token.check(f"job {job.label!r}")
            engine, tree = job.resolve()
            parsed = time.perf_counter()
            if deadline is not None:
                # The parse phase may have consumed budget; re-check before the
                # expensive compile, and hand the substrate only what remains.
                deadline.check(f"job {job.label!r}")
            if cancel_token is not None:
                cancel_token.check(f"job {job.label!r}")
            receive_bound = deadline.bound() if deadline is not None else None
            if self._artifact_cache is not None:
                # Content-addressed region reuse across jobs: resubmitting the same
                # (or a slightly edited) source replays every unchanged region.
                from repro.incremental.engine import IncrementalCompiler

                report, _ = IncrementalCompiler(
                    engine, self._artifact_cache
                ).compile_tree(
                    tree,
                    job.machines,
                    root_inherited=job.root_inherited,
                    substrate=self._substrate,
                    receive_timeout=receive_bound,
                )
            else:
                report = engine.compile_tree(
                    tree,
                    job.machines,
                    root_inherited=job.root_inherited,
                    substrate=self._substrate,
                    receive_timeout=receive_bound,
                )
            if deadline is not None:
                # Strict semantics: a deadline-bearing job never reports success
                # after its budget — the caller has already given up on it.
                deadline.check(f"job {job.label!r}")
        except BaseException as error:
            with self._lock:
                self._failed += 1
                if isinstance(error, DeadlineExceeded):
                    self._deadline_misses += 1
            raise
        finished = time.perf_counter()
        if did_parse:
            report.wall_parse_seconds = parsed - started
        with self._lock:
            self._completed += 1
            self._latencies.append(finished - started)
            if did_parse:
                self._parse_latencies.append(parsed - started)
            self._compile_latencies.append(finished - parsed)
            self._region_cache_hits += report.region_cache_hits
            self._region_cache_misses += report.region_cache_misses
        return report
