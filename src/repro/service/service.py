"""A compilation service: many compilations, one persistent substrate.

``ParallelCompiler.compile_tree`` is a one-shot call; this module turns it into a
served workload.  A :class:`CompilationService` owns (or borrows) a pooled
:class:`~repro.backends.base.Substrate`, keeps up to ``max_in_flight`` compilations
running concurrently on it, and measures what a server operator would measure:
compiles per second and latency percentiles.

Jobs are heterogeneous: each :class:`CompilationJob` carries its own compiler (and
hence grammar), so one service can interleave Pascal and expression-language
compilations on the same worker pool — pooled process workers cache each grammar
bundle the first time they see it.

Typical use::

    from repro.service import CompilationService, CompilationJob

    with CompilationService("threads", max_in_flight=4) as service:
        futures = [service.submit(CompilationJob(compiler, tree=t, machines=4))
                   for t in trees]
        reports = [f.result() for f in futures]
        print(service.stats().summary())
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Union

from repro.backends import Substrate, create_substrate
from repro.distributed.compiler import CompilationReport, ParallelCompiler
from repro.tree.node import ParseTreeNode

#: How many completed-job latencies the service keeps for percentile estimates.
LATENCY_WINDOW = 4096


class ServiceError(RuntimeError):
    """Raised for service lifecycle misuse (submitting after shutdown, etc.)."""


@dataclass
class CompilationJob:
    """One unit of work for the service: a program plus how to compile it.

    Provide either an already-parsed ``tree`` or a ``source`` string together with a
    ``parse`` callable (the service then performs parse → partition → evaluate).
    ``compiler`` is any configured :class:`ParallelCompiler`; jobs with different
    compilers/grammars can share one service.
    """

    compiler: ParallelCompiler
    tree: Optional[ParseTreeNode] = None
    source: Optional[str] = None
    parse: Optional[Callable[[str], ParseTreeNode]] = None
    machines: int = 2
    root_inherited: Optional[Dict[str, Any]] = None
    label: str = ""

    def resolve_tree(self) -> ParseTreeNode:
        if self.tree is not None:
            return self.tree
        if self.source is None:
            raise ServiceError(f"job {self.label!r} has neither a tree nor a source")
        if self.parse is None:
            raise ServiceError(
                f"job {self.label!r} has a source but no parse callable"
            )
        return self.parse(self.source)


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of one service's aggregate behaviour."""

    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    jobs_in_flight: int
    uptime_seconds: float
    throughput: float          #: completed compilations per second of uptime
    latency_mean: float
    latency_p50: float
    latency_p95: float
    backend: str
    sessions_opened: int

    def summary(self) -> str:
        return (
            f"{self.jobs_completed} compiled / {self.jobs_failed} failed / "
            f"{self.jobs_in_flight} in flight on the {self.backend} pool: "
            f"{self.throughput:.2f} compiles/s over {self.uptime_seconds:.2f}s, "
            f"latency mean {self.latency_mean * 1000:.1f}ms, "
            f"p50 {self.latency_p50 * 1000:.1f}ms, p95 {self.latency_p95 * 1000:.1f}ms"
        )


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


class CompilationService:
    """Serve compilation jobs from a persistent worker pool.

    :param substrate: a backend name (``"simulated"``/``"threads"``/``"processes"``,
        creating a pool the service owns and will shut down) or an already-started
        :class:`Substrate` to borrow (left running at shutdown).
    :param max_in_flight: how many compilations may run concurrently on the pool.
    :param workers: initial pool size when the service creates the substrate.
    :param receive_timeout: blocking-receive bound handed to a substrate the service
        creates (ignored for borrowed substrates).
    """

    def __init__(
        self,
        substrate: Union[str, Substrate] = "threads",
        *,
        max_in_flight: int = 4,
        workers: int = 0,
        receive_timeout: Optional[float] = None,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if isinstance(substrate, str):
            self._substrate = create_substrate(
                substrate, workers=workers, receive_timeout=receive_timeout
            )
            self._owns_substrate = True
        else:
            self._substrate = substrate
            self._owns_substrate = False
        self.max_in_flight = max_in_flight
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._started_at: Optional[float] = None
        self._closed = False

    # ---------------------------------------------------------------- lifecycle

    @property
    def substrate(self) -> Substrate:
        return self._substrate

    def start(self) -> "CompilationService":
        """Bring the pool and the dispatch executor up (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceError("compilation service has been shut down")
            if self._executor is None:
                self._substrate.start()
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_in_flight, thread_name_prefix="repro-service"
                )
                self._started_at = time.perf_counter()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for in-flight compilations.

        Shuts the substrate down too if the service created it; a borrowed substrate
        is left running for its owner.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
        if executor is not None:
            executor.shutdown(wait=wait)
        if self._owns_substrate:
            self._substrate.shutdown()

    def __enter__(self) -> "CompilationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------- intake

    def submit(self, job: CompilationJob) -> "Future[CompilationReport]":
        """Queue one job; returns a future resolving to its CompilationReport.

        At most ``max_in_flight`` jobs run concurrently; the rest wait in the
        executor's queue.  A failing job fails only its own future.
        """
        self.start()
        with self._lock:
            if self._closed or self._executor is None:
                raise ServiceError("compilation service has been shut down")
            self._submitted += 1
            return self._executor.submit(self._execute, job)

    def compile_many(self, jobs: Iterable[CompilationJob]) -> List[CompilationReport]:
        """Submit a batch and wait for all of it; reports come back in job order.

        Raises the first job failure (after every job has been scheduled — one bad
        job does not cancel its siblings).
        """
        futures = [self.submit(job) for job in jobs]
        return [future.result() for future in futures]

    # -------------------------------------------------------------------- stats

    def stats(self) -> ServiceStats:
        with self._lock:
            uptime = (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            latencies = sorted(self._latencies)
            completed = self._completed
            failed = self._failed
            submitted = self._submitted
        return ServiceStats(
            jobs_submitted=submitted,
            jobs_completed=completed,
            jobs_failed=failed,
            jobs_in_flight=submitted - completed - failed,
            uptime_seconds=uptime,
            throughput=completed / uptime if uptime > 0 else 0.0,
            latency_mean=sum(latencies) / len(latencies) if latencies else 0.0,
            latency_p50=_percentile(latencies, 0.50),
            latency_p95=_percentile(latencies, 0.95),
            backend=self._substrate.name,
            sessions_opened=self._substrate.sessions_opened,
        )

    # ---------------------------------------------------------------- internals

    def _execute(self, job: CompilationJob) -> CompilationReport:
        started = time.perf_counter()
        try:
            tree = job.resolve_tree()
            report = job.compiler.compile_tree(
                tree,
                job.machines,
                root_inherited=job.root_inherited,
                substrate=self._substrate,
            )
        except BaseException:
            with self._lock:
                self._failed += 1
            raise
        with self._lock:
            self._completed += 1
            self._latencies.append(time.perf_counter() - started)
        return report
