"""String descriptors for the string-librarian protocol.

When an evaluator finishes its final code attribute it sends the *code string* to the
string librarian and only a small *descriptor* to its ancestor evaluator.  Ancestors
combine descriptors (not strings); the root evaluator finally hands the combined
descriptor to the librarian, which assembles the real string from the pieces it has
received directly from each evaluator.  This keeps every code fragment on the network
exactly once and lets the transmissions overlap (paper §4.3).

Descriptors mirror rope structure:

* :class:`LeafDescriptor` — "the fragment registered by evaluator ``region_id`` under
  key ``fragment_id``";
* :class:`ConcatDescriptor` — concatenation of two descriptors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

from repro.strings.rope import Rope


class StringDescriptor:
    """Base class for string descriptors."""

    def fragment_ids(self) -> List[Tuple[int, int]]:
        """All (region_id, fragment_id) pairs referenced, left to right."""
        raise NotImplementedError

    def descriptor_size(self) -> int:
        """Abstract transmission size of the descriptor itself (not the fragments)."""
        raise NotImplementedError

    def assemble(self, lookup: Callable[[int, int], Rope]) -> Rope:
        """Rebuild the full string given a fragment lookup function."""
        raise NotImplementedError

    def __add__(self, other: "StringDescriptor") -> "StringDescriptor":
        if not isinstance(other, StringDescriptor):
            return NotImplemented
        return ConcatDescriptor(self, other)


class LeafDescriptor(StringDescriptor):
    """Reference to one code fragment held by the librarian."""

    __slots__ = ("region_id", "fragment_id", "length")

    def __init__(self, region_id: int, fragment_id: int, length: int):
        self.region_id = region_id
        self.fragment_id = fragment_id
        self.length = length

    def fragment_ids(self) -> List[Tuple[int, int]]:
        return [(self.region_id, self.fragment_id)]

    def descriptor_size(self) -> int:
        return 12

    def assemble(self, lookup: Callable[[int, int], Rope]) -> Rope:
        return lookup(self.region_id, self.fragment_id)

    def __repr__(self) -> str:
        return f"LeafDescriptor(region={self.region_id}, fragment={self.fragment_id}, length={self.length})"


class LiteralDescriptor(StringDescriptor):
    """A literal rope embedded directly in a descriptor.

    Appears when an evaluator concatenates locally generated code with a descriptor
    received from a child evaluator: the local part travels inside the descriptor (it
    was never registered with the librarian), the child part stays a reference.
    """

    __slots__ = ("text",)

    def __init__(self, text: Rope):
        self.text = text

    def fragment_ids(self) -> List[Tuple[int, int]]:
        return []

    def descriptor_size(self) -> int:
        return self.text.transmission_size()

    def assemble(self, lookup: Callable[[int, int], Rope]) -> Rope:
        return self.text

    def __repr__(self) -> str:
        return f"LiteralDescriptor(length={len(self.text)})"


class ConcatDescriptor(StringDescriptor):
    """Concatenation of two descriptors (O(1) to build, like ropes)."""

    __slots__ = ("left", "right")

    def __init__(self, left: StringDescriptor, right: StringDescriptor):
        self.left = left
        self.right = right

    def fragment_ids(self) -> List[Tuple[int, int]]:
        return self.left.fragment_ids() + self.right.fragment_ids()

    def descriptor_size(self) -> int:
        return self.left.descriptor_size() + self.right.descriptor_size() + 4

    def assemble(self, lookup: Callable[[int, int], Rope]) -> Rope:
        return Rope.concat(self.left.assemble(lookup), self.right.assemble(lookup))

    def __repr__(self) -> str:
        return f"ConcatDescriptor({self.left!r}, {self.right!r})"
