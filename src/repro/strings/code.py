"""The "code" value type used by code-generating attribute grammars.

A code attribute value is either a :class:`~repro.strings.rope.Rope` (plain string tree)
or a :class:`~repro.strings.descriptors.StringDescriptor` (when a remotely evaluated
subtree's code lives with the string librarian and only a reference travelled up).  The
semantic rules of the code-generating grammars are written against the helpers below, so
exactly as the paper claims, turning the librarian optimisation on or off "can be done
without changing the grammar or the evaluator generator — all that needs to be changed
is the implementation of the standard string data type used for code attributes".
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

from repro.strings.descriptors import ConcatDescriptor, LiteralDescriptor, StringDescriptor
from repro.strings.rope import Rope, rope

CodeValue = Union[str, Rope, StringDescriptor]


def as_code(value: CodeValue) -> Union[Rope, StringDescriptor]:
    """Coerce a plain string to a rope; pass ropes and descriptors through."""
    if isinstance(value, str):
        return rope(value)
    if isinstance(value, (Rope, StringDescriptor)):
        return value
    raise TypeError(f"not a code value: {value!r}")


def code_concat(left: CodeValue, right: CodeValue) -> Union[Rope, StringDescriptor]:
    """Concatenate two code values in O(1).

    Rope + rope stays a rope; as soon as a descriptor is involved the result is a
    descriptor (ropes are wrapped as literal descriptor leaves).
    """
    left = as_code(left)
    right = as_code(right)
    if isinstance(left, Rope) and isinstance(right, Rope):
        return Rope.concat(left, right)
    if isinstance(left, Rope):
        if len(left) == 0:
            return right
        left = LiteralDescriptor(left)
    if isinstance(right, Rope):
        if len(right) == 0:
            return left
        right = LiteralDescriptor(right)
    return ConcatDescriptor(left, right)


def code_join(pieces: Iterable[CodeValue]) -> Union[Rope, StringDescriptor]:
    """Concatenate any number of code values left to right."""
    result: Union[Rope, StringDescriptor] = Rope.empty()
    for piece in pieces:
        result = code_concat(result, piece)
    return result


def code_size(value: CodeValue) -> int:
    """Abstract transmission size in bytes of a code value."""
    value = as_code(value)
    if isinstance(value, Rope):
        return value.transmission_size()
    return value.descriptor_size()


def code_length(value: CodeValue) -> int:
    """Length in characters of the text the value denotes (descriptors report only the
    literal text they carry; referenced fragments are not counted)."""
    value = as_code(value)
    if isinstance(value, Rope):
        return len(value)
    total = 0
    stack = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, LiteralDescriptor):
            total += len(node.text)
        elif isinstance(node, ConcatDescriptor):
            stack.append(node.left)
            stack.append(node.right)
    return total


def flatten_code(value: CodeValue, lookup: Callable[[int, int], Rope]) -> str:
    """Materialize the full text, resolving fragment references through ``lookup``."""
    value = as_code(value)
    if isinstance(value, Rope):
        return value.flatten()
    return value.assemble(lookup).flatten()
