"""Rope strings and string descriptors.

The paper implements strings "as binary trees with the actual text residing in the
leaves", making concatenation a constant-time operation — essential because code
attributes are built by concatenating the code of subtrees all the way up the parse
tree.  :class:`~repro.strings.rope.Rope` is that data structure; string *descriptors*
(:mod:`repro.strings.descriptors`) are the compact stand-ins shipped up the evaluator
tree when the string librarian optimization is enabled.
"""

from repro.strings.rope import Rope, rope
from repro.strings.descriptors import (
    StringDescriptor,
    LeafDescriptor,
    LiteralDescriptor,
    ConcatDescriptor,
)
from repro.strings.code import (
    CodeValue,
    as_code,
    code_concat,
    code_join,
    code_length,
    code_size,
    flatten_code,
)

__all__ = [
    "Rope",
    "rope",
    "StringDescriptor",
    "LeafDescriptor",
    "LiteralDescriptor",
    "ConcatDescriptor",
    "CodeValue",
    "as_code",
    "code_concat",
    "code_join",
    "code_length",
    "code_size",
    "flatten_code",
]
