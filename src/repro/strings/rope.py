"""Rope strings: binary trees of text with O(1) concatenation.

Ropes are immutable (as required by the applicative attribute-grammar discipline): all
operations return new ropes and never modify existing ones.  ``length`` is maintained on
every node so :meth:`Rope.__len__` and the network cost model are O(1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union


class Rope:
    """An immutable string represented as a binary tree of text fragments.

    Use :func:`rope` or :meth:`Rope.leaf` to create ropes and ``+`` to concatenate.
    Flattening (:meth:`flatten`) is linear in total length and is only needed at the
    very end (e.g. when the string librarian assembles the final code attribute).
    """

    __slots__ = ("_text", "_left", "_right", "_length", "_leaf_count")

    def __init__(
        self,
        text: Optional[str] = None,
        left: Optional["Rope"] = None,
        right: Optional["Rope"] = None,
    ):
        if text is not None and (left is not None or right is not None):
            raise ValueError("a rope node is either a leaf or an internal node, not both")
        self._text = text
        self._left = left
        self._right = right
        if text is not None:
            self._length = len(text)
            self._leaf_count = 1
        else:
            left_length = len(left) if left is not None else 0
            right_length = len(right) if right is not None else 0
            self._length = left_length + right_length
            self._leaf_count = (
                (left.leaf_count if left is not None else 0)
                + (right.leaf_count if right is not None else 0)
            )

    # ----------------------------------------------------------------- creation

    @classmethod
    def leaf(cls, text: str) -> "Rope":
        return cls(text=text)

    @classmethod
    def empty(cls) -> "Rope":
        return _EMPTY

    @classmethod
    def concat(cls, left: "Rope", right: "Rope") -> "Rope":
        """O(1) concatenation (empty operands are elided)."""
        if len(left) == 0:
            return right
        if len(right) == 0:
            return left
        return cls(left=left, right=right)

    @classmethod
    def join(cls, pieces: List[Union[str, "Rope"]]) -> "Rope":
        """Concatenate a list of strings/ropes left to right."""
        result = _EMPTY
        for piece in pieces:
            if isinstance(piece, str):
                piece = cls.leaf(piece)
            result = cls.concat(result, piece)
        return result

    # ------------------------------------------------------------------ queries

    @property
    def is_leaf(self) -> bool:
        return self._text is not None

    @property
    def leaf_count(self) -> int:
        return self._leaf_count

    def __len__(self) -> int:
        return self._length

    def __add__(self, other: Union[str, "Rope"]) -> "Rope":
        if isinstance(other, str):
            other = Rope.leaf(other)
        if not isinstance(other, Rope):
            return NotImplemented
        return Rope.concat(self, other)

    def __radd__(self, other: Union[str, "Rope"]) -> "Rope":
        if isinstance(other, str):
            return Rope.concat(Rope.leaf(other), self)
        return NotImplemented

    def __eq__(self, other) -> bool:
        if isinstance(other, str):
            return self.flatten() == other
        if isinstance(other, Rope):
            return len(self) == len(other) and self.flatten() == other.flatten()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.flatten())

    def iter_leaves(self) -> Iterator[str]:
        """Yield the text fragments left to right without building the full string."""
        stack: List[Rope] = [self]
        while stack:
            node = stack.pop()
            if node._text is not None:
                if node._text:
                    yield node._text
                continue
            if node._right is not None:
                stack.append(node._right)
            if node._left is not None:
                stack.append(node._left)

    def flatten(self) -> str:
        """Materialize the full string (linear time)."""
        return "".join(self.iter_leaves())

    def depth(self) -> int:
        """Height of the rope tree (iterative; ropes can be very unbalanced)."""
        best = 0
        stack = [(self, 1)]
        while stack:
            node, level = stack.pop()
            best = max(best, level)
            if node._left is not None:
                stack.append((node._left, level + 1))
            if node._right is not None:
                stack.append((node._right, level + 1))
        return best

    def transmission_size(self) -> int:
        """Abstract size in bytes when sent over the network (text plus leaf headers)."""
        return self._length + 4 * self._leaf_count

    def __reduce__(self):
        """Pickle as the flattened text, not as the concat tree.

        Code ropes accumulate one node per emitted fragment, and pickling tens of
        thousands of two-field objects dominates the wire cost of the processes
        substrate.  The flat string *is* the rope's value (ropes are immutable and
        compare by text), so the receiver rebuilds a single-leaf rope in O(length) —
        the concat structure is a sender-side optimization that never needs to cross
        a process boundary.
        """
        return (Rope, (self.flatten(),))

    def __str__(self) -> str:
        return self.flatten()

    def __repr__(self) -> str:
        preview = self.flatten()
        if len(preview) > 32:
            preview = preview[:29] + "..."
        return f"Rope({preview!r}, length={self._length}, leaves={self._leaf_count})"


_EMPTY = Rope(text="")


def rope(text: Union[str, Rope] = "") -> Rope:
    """Coerce a string (or rope) to a :class:`Rope`."""
    if isinstance(text, Rope):
        return text
    return Rope.leaf(text) if text else Rope.empty()
