"""Rope strings: binary trees of text with O(1) concatenation.

Ropes are immutable (as required by the applicative attribute-grammar discipline): all
operations return new ropes and never modify existing ones.  ``length`` is maintained on
every node so :meth:`Rope.__len__` and the network cost model are O(1).

Structural edits (:meth:`Rope.insert` / :meth:`Rope.delete` / :meth:`Rope.replace`,
built on :meth:`Rope.split`) return new ropes that share every untouched leaf *by
reference* with the original: only the leaves straddling the edit position are re-cut.
That sharing is what makes document-level incremental recompilation cheap — unchanged
stretches of source keep identical leaf objects, so repeated edits never copy the whole
program text.  Edit results are depth-rebalanced when the tree degenerates (an editing
session is a long chain of concatenations), again reusing the existing leaves.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union


class Rope:
    """An immutable string represented as a binary tree of text fragments.

    Use :func:`rope` or :meth:`Rope.leaf` to create ropes and ``+`` to concatenate.
    Flattening (:meth:`flatten`) is linear in total length and is only needed at the
    very end (e.g. when the string librarian assembles the final code attribute).
    """

    __slots__ = ("_text", "_left", "_right", "_length", "_leaf_count")

    def __init__(
        self,
        text: Optional[str] = None,
        left: Optional["Rope"] = None,
        right: Optional["Rope"] = None,
    ):
        if text is not None and (left is not None or right is not None):
            raise ValueError("a rope node is either a leaf or an internal node, not both")
        self._text = text
        self._left = left
        self._right = right
        if text is not None:
            self._length = len(text)
            self._leaf_count = 1
        else:
            left_length = len(left) if left is not None else 0
            right_length = len(right) if right is not None else 0
            self._length = left_length + right_length
            self._leaf_count = (
                (left.leaf_count if left is not None else 0)
                + (right.leaf_count if right is not None else 0)
            )

    # ----------------------------------------------------------------- creation

    @classmethod
    def leaf(cls, text: str) -> "Rope":
        return cls(text=text)

    @classmethod
    def empty(cls) -> "Rope":
        return _EMPTY

    @classmethod
    def concat(cls, left: "Rope", right: "Rope") -> "Rope":
        """O(1) concatenation (empty operands are elided)."""
        if len(left) == 0:
            return right
        if len(right) == 0:
            return left
        return cls(left=left, right=right)

    @classmethod
    def join(cls, pieces: List[Union[str, "Rope"]]) -> "Rope":
        """Concatenate a list of strings/ropes left to right."""
        result = _EMPTY
        for piece in pieces:
            if isinstance(piece, str):
                piece = cls.leaf(piece)
            result = cls.concat(result, piece)
        return result

    # ---------------------------------------------------------------- editing

    def split(self, position: int) -> Tuple["Rope", "Rope"]:
        """Cut the rope at ``position`` into ``(left, right)``.

        Every leaf entirely on one side of the cut is shared by reference with this
        rope; at most one leaf (the one straddling ``position``) is re-cut into two
        new leaves.  O(depth + cut-leaf length).
        """
        if position < 0 or position > self._length:
            raise IndexError(
                f"split position {position} out of range for rope of length {self._length}"
            )
        if position == 0:
            return _EMPTY, self
        if position == self._length:
            return self, _EMPTY
        if self._text is not None:
            return Rope.leaf(self._text[:position]), Rope.leaf(self._text[position:])
        left = self._left if self._left is not None else _EMPTY
        right = self._right if self._right is not None else _EMPTY
        if position < len(left):
            head, tail = left.split(position)
            return head, Rope.concat(tail, right)
        if position == len(left):
            return left, right
        head, tail = right.split(position - len(left))
        return Rope.concat(left, head), tail

    def slice(self, start: int, end: int) -> "Rope":
        """The sub-rope covering ``[start, end)``, sharing interior leaves."""
        if start < 0 or end > self._length or start > end:
            raise IndexError(
                f"slice [{start}:{end}] out of range for rope of length {self._length}"
            )
        _, tail = self.split(start)
        body, _ = tail.split(end - start)
        return body

    def insert(self, position: int, text: Union[str, "Rope"]) -> "Rope":
        """A new rope with ``text`` inserted at ``position`` (untouched leaves shared)."""
        return self.replace(position, position, text)

    def delete(self, start: int, end: int) -> "Rope":
        """A new rope with ``[start, end)`` removed (untouched leaves shared)."""
        return self.replace(start, end, "")

    def replace(self, start: int, end: int, text: Union[str, "Rope"]) -> "Rope":
        """A new rope with ``[start, end)`` replaced by ``text``.

        The single entry point behind :meth:`insert` and :meth:`delete`.  Leaves
        outside the edited span are shared by reference with this rope, so unchanged
        regions of a document keep identical fragment objects across edits; the result
        is rebalanced when the edit chain has made the tree degenerate.
        """
        if start < 0 or end > self._length or start > end:
            raise IndexError(
                f"replace span [{start}:{end}] out of range for rope of length {self._length}"
            )
        if isinstance(text, str):
            middle = Rope.leaf(text) if text else _EMPTY
        else:
            middle = text
        head, tail = self.split(start)
        _, suffix = tail.split(end - start)
        result = Rope.concat(Rope.concat(head, middle), suffix)
        return result._rebalanced()

    def _rebalanced(self) -> "Rope":
        """Rebuild as a balanced tree when depth is pathological; else return self.

        The rebuild reuses the existing leaf objects (only internal nodes are new),
        preserving the sharing guarantee of the edit operations.
        """
        leaf_count = self._leaf_count
        if leaf_count < 8:
            return self
        # A perfectly balanced rope has depth ceil(log2(leaves)) + 1; allow slack so
        # rebalancing amortises instead of firing on every edit.
        budget = 2 * (leaf_count.bit_length() + 1)
        if self.depth() <= budget:
            return self
        return Rope.balanced(list(self._leaves()))

    def _leaves(self) -> Iterator["Rope"]:
        """Yield the (non-empty) leaf nodes left to right, as objects."""
        stack: List[Rope] = [self]
        while stack:
            node = stack.pop()
            if node._text is not None:
                if node._text:
                    yield node
                continue
            if node._right is not None:
                stack.append(node._right)
            if node._left is not None:
                stack.append(node._left)

    @classmethod
    def balanced(cls, leaves: List["Rope"]) -> "Rope":
        """Build a balanced rope over existing leaf nodes (shared, not copied)."""
        if not leaves:
            return _EMPTY
        while len(leaves) > 1:
            paired = [
                cls.concat(leaves[index], leaves[index + 1])
                if index + 1 < len(leaves)
                else leaves[index]
                for index in range(0, len(leaves), 2)
            ]
            leaves = paired
        return leaves[0]

    # ------------------------------------------------------------------ queries

    @property
    def is_leaf(self) -> bool:
        return self._text is not None

    @property
    def leaf_count(self) -> int:
        return self._leaf_count

    def __len__(self) -> int:
        return self._length

    def __add__(self, other: Union[str, "Rope"]) -> "Rope":
        if isinstance(other, str):
            other = Rope.leaf(other)
        if not isinstance(other, Rope):
            return NotImplemented
        return Rope.concat(self, other)

    def __radd__(self, other: Union[str, "Rope"]) -> "Rope":
        if isinstance(other, str):
            return Rope.concat(Rope.leaf(other), self)
        return NotImplemented

    def __eq__(self, other) -> bool:
        if isinstance(other, str):
            return self.flatten() == other
        if isinstance(other, Rope):
            return len(self) == len(other) and self.flatten() == other.flatten()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.flatten())

    def iter_leaves(self) -> Iterator[str]:
        """Yield the text fragments left to right without building the full string."""
        stack: List[Rope] = [self]
        while stack:
            node = stack.pop()
            if node._text is not None:
                if node._text:
                    yield node._text
                continue
            if node._right is not None:
                stack.append(node._right)
            if node._left is not None:
                stack.append(node._left)

    def flatten(self) -> str:
        """Materialize the full string (linear time)."""
        return "".join(self.iter_leaves())

    def depth(self) -> int:
        """Height of the rope tree (iterative; ropes can be very unbalanced)."""
        best = 0
        stack = [(self, 1)]
        while stack:
            node, level = stack.pop()
            best = max(best, level)
            if node._left is not None:
                stack.append((node._left, level + 1))
            if node._right is not None:
                stack.append((node._right, level + 1))
        return best

    def transmission_size(self) -> int:
        """Abstract size in bytes when sent over the network (text plus leaf headers)."""
        return self._length + 4 * self._leaf_count

    def __reduce__(self):
        """Pickle as the flattened text, not as the concat tree.

        Code ropes accumulate one node per emitted fragment, and pickling tens of
        thousands of two-field objects dominates the wire cost of the processes
        substrate.  The flat string *is* the rope's value (ropes are immutable and
        compare by text), so the receiver rebuilds a single-leaf rope in O(length) —
        the concat structure is a sender-side optimization that never needs to cross
        a process boundary.
        """
        return (Rope, (self.flatten(),))

    def __str__(self) -> str:
        return self.flatten()

    def __repr__(self) -> str:
        preview = self.flatten()
        if len(preview) > 32:
            preview = preview[:29] + "..."
        return f"Rope({preview!r}, length={self._length}, leaves={self._leaf_count})"


_EMPTY = Rope(text="")


def rope(text: Union[str, Rope] = "") -> Rope:
    """Coerce a string (or rope) to a :class:`Rope`."""
    if isinstance(text, Rope):
        return text
    return Rope.leaf(text) if text else Rope.empty()
