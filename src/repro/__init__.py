"""repro — Parallel Attribute Grammar Evaluation.

A reproduction of Boehm & Zwaenepoel, "Parallel Attribute Grammar Evaluation"
(ICDCS 1987): attribute grammars, dynamic / static (ordered) / combined evaluators,
interchangeable execution backends (the paper's simulated network multiprocessor plus
real OS-thread and OS-process substrates), tree partitioning, a distributed parallel
compiler driver with string-librarian result propagation, and a Pascal-subset compiler
used as the headline workload.

The front door is :mod:`repro.api` — a language registry plus a unified
``Compiler``/``Session`` API over every workload and substrate::

    from repro import Session

    with Session(backend="threads") as s:
        assert s.compile("exprlang", "let x = 3 in 1 + 2 * x ni").value == 7

New languages plug in by registration (:class:`GrammarLanguage` +
:func:`register_language`) — see ``examples/register_language.py``.

See ``README.md`` at the repository root for the architecture overview and a tour of
the packages, examples and benchmarks.
"""

from repro.grammar import (
    AttributeGrammar,
    AttributeKind,
    GrammarBuilder,
    GrammarError,
    Rule,
    parse_grammar_spec,
)
from repro.analysis import (
    build_evaluation_plan,
    check_noncircular,
    CircularGrammarError,
    NotOrderedError,
)
from repro.evaluation import (
    CombinedEvaluator,
    DynamicEvaluator,
    EvaluationError,
    EvaluationStatistics,
    StaticEvaluator,
)
from repro.backends import (
    BACKEND_NAMES,
    SharedBundle,
    Substrate,
    create_backend,
    create_substrate,
)
from repro.distributed.compiler import (
    CompilationReport,
    CompilerConfiguration,
    ParallelCompiler,
)
from repro.parsing import Lexer, Parser, ParseError, Token, TokenSpec
from repro.service import CompilationJob, CompilationService, ServiceStats
from repro.strings import Rope, rope
from repro.symtab import SymbolTable, st_add, st_create, st_lookup
from repro.exprlang import (
    evaluate_expression,
    evaluate_expression_parallel,
    expression_grammar,
    parse_expression,
)
from repro.server import CompileServer, ServerConfig
from repro.api import (
    ArtifactCache,
    Compiler,
    CompileResult,
    Document,
    DuplicateLanguageError,
    GrammarLanguage,
    IncrementalReport,
    Language,
    LanguageError,
    Session,
    UnknownLanguageError,
    available_languages,
    get_language,
    register_language,
)

__version__ = "1.1.0"

__all__ = [
    "AttributeGrammar",
    "AttributeKind",
    "GrammarBuilder",
    "GrammarError",
    "Rule",
    "parse_grammar_spec",
    "build_evaluation_plan",
    "check_noncircular",
    "CircularGrammarError",
    "NotOrderedError",
    "CombinedEvaluator",
    "DynamicEvaluator",
    "EvaluationError",
    "EvaluationStatistics",
    "StaticEvaluator",
    "BACKEND_NAMES",
    "SharedBundle",
    "Substrate",
    "create_backend",
    "create_substrate",
    "CompilationJob",
    "CompilationReport",
    "CompilationService",
    "CompileServer",
    "ServerConfig",
    "CompilerConfiguration",
    "ParallelCompiler",
    "ServiceStats",
    "Lexer",
    "Parser",
    "ParseError",
    "Token",
    "TokenSpec",
    "Rope",
    "rope",
    "SymbolTable",
    "st_add",
    "st_create",
    "st_lookup",
    "evaluate_expression",
    "evaluate_expression_parallel",
    "expression_grammar",
    "parse_expression",
    "ArtifactCache",
    "Compiler",
    "CompileResult",
    "Document",
    "DuplicateLanguageError",
    "GrammarLanguage",
    "IncrementalReport",
    "Language",
    "LanguageError",
    "Session",
    "UnknownLanguageError",
    "available_languages",
    "get_language",
    "register_language",
    "__version__",
]
