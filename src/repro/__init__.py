"""repro — Parallel Attribute Grammar Evaluation.

A reproduction of Boehm & Zwaenepoel, "Parallel Attribute Grammar Evaluation"
(ICDCS 1987): attribute grammars, dynamic / static (ordered) / combined evaluators, a
simulated network multiprocessor, tree partitioning, a distributed parallel compiler
driver with string-librarian result propagation, and a Pascal-subset compiler used as
the headline workload.

Quick start::

    from repro import evaluate_expression
    assert evaluate_expression("let x = 3 in 1 + 2 * x ni") == 7

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the system inventory
and experiment index, and ``EXPERIMENTS.md`` for paper-versus-measured results.
"""

from repro.grammar import (
    AttributeGrammar,
    AttributeKind,
    GrammarBuilder,
    GrammarError,
    Rule,
    parse_grammar_spec,
)
from repro.analysis import (
    build_evaluation_plan,
    check_noncircular,
    CircularGrammarError,
    NotOrderedError,
)
from repro.evaluation import (
    CombinedEvaluator,
    DynamicEvaluator,
    EvaluationError,
    EvaluationStatistics,
    StaticEvaluator,
)
from repro.parsing import Lexer, Parser, ParseError, Token, TokenSpec
from repro.strings import Rope, rope
from repro.symtab import SymbolTable, st_add, st_create, st_lookup
from repro.exprlang import evaluate_expression, expression_grammar, parse_expression

__version__ = "1.0.0"

__all__ = [
    "AttributeGrammar",
    "AttributeKind",
    "GrammarBuilder",
    "GrammarError",
    "Rule",
    "parse_grammar_spec",
    "build_evaluation_plan",
    "check_noncircular",
    "CircularGrammarError",
    "NotOrderedError",
    "CombinedEvaluator",
    "DynamicEvaluator",
    "EvaluationError",
    "EvaluationStatistics",
    "StaticEvaluator",
    "Lexer",
    "Parser",
    "ParseError",
    "Token",
    "TokenSpec",
    "Rope",
    "rope",
    "SymbolTable",
    "st_add",
    "st_create",
    "st_lookup",
    "evaluate_expression",
    "expression_grammar",
    "parse_expression",
    "__version__",
]
