"""One resilience vocabulary for every layer (see :mod:`repro.resilience.policy`).

* :class:`RetryPolicy` — the exponential-backoff-with-jitter policy shared by
  the cluster coordinator, the server's admission ``Retry-After`` hints and the
  example HTTP client.
* :class:`Deadline` / :class:`DeadlineExceeded` — an absolute budget handed
  down client → server → :meth:`CompilationService.submit(deadline=...)` →
  substrate receive bounds → cluster job timeout.
* :class:`CancelToken` / :class:`CancelledCompilation` — cooperative
  cancellation checked at compilation phase boundaries.
"""

from repro.resilience.policy import (
    CancelledCompilation,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)

__all__ = [
    "CancelledCompilation",
    "CancelToken",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
]
