"""The one resilience policy layer: retry backoff, deadlines, cancellation.

Before this module, every layer had grown its own bespoke copy of the same
three ideas: the cluster coordinator hand-rolled exponential backoff
(``_backoff_delay``), the server's admission controller invented its own
``Retry-After`` estimate, and timeouts were a per-substrate knob that nothing
propagated end to end.  This module is the single vocabulary they now share:

* :class:`RetryPolicy` — exponential backoff with a cap, deterministic jitter
  and a max-attempts bound.  Pure: ``delay(attempt)`` is a function, not a
  stateful iterator, so the coordinator, the admission controller and HTTP
  clients can all consult one policy object without sharing mutable state.
* :class:`Deadline` — an *absolute* point on the monotonic clock.  Layers hand
  the same deadline down (client header → server → service → substrate receive
  bound → cluster job timeout) and each one derives its local timeout with
  :meth:`Deadline.bound`; a deadline can only shrink on the way down, never
  stretch.
* :class:`CancelToken` — cooperative cancellation.  The service attaches one to
  every submitted job; phase boundaries call :meth:`CancelToken.check`, so a
  caller abandoning a future stops the work at the next seam instead of
  compiling into the void.

:class:`DeadlineExceeded` subclasses :class:`TimeoutError`: it is the one typed
error every layer maps "out of time" onto, and the chaos invariant
(`tests/test_faults.py`) accepts exactly it or a typed backend/fault error —
never a hang.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Iterator, Optional, Tuple, Type


class DeadlineExceeded(TimeoutError):
    """An operation ran out of its deadline budget (typed, expected)."""


class CancelledCompilation(RuntimeError):
    """A cooperatively-cancelled compilation (the caller gave up on the future)."""


class Deadline:
    """An absolute monotonic-clock deadline shared down a call stack.

    Create one where the budget is decided (``Deadline.after(2.5)``), pass the
    *object* down, and let each layer derive its local bound::

        deadline = Deadline.after(2.5)
        ...
        fifo.get(timeout=deadline.bound(30.0))   # min(remaining, local cap)
        deadline.check("evaluate")               # raises DeadlineExceeded
    """

    __slots__ = ("expires_at", "label")

    def __init__(self, expires_at: float, label: str = ""):
        self.expires_at = float(expires_at)
        self.label = label

    @classmethod
    def after(cls, seconds: float, label: str = "") -> "Deadline":
        """A deadline ``seconds`` from now (monotonic)."""
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        return cls(time.monotonic() + seconds, label)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def bound(self, timeout: Optional[float] = None) -> float:
        """The tighter of this deadline's remainder and a local ``timeout``.

        This is how a deadline propagates into layers that speak timeouts: the
        substrate's receive bound, the cluster's job timeout, a socket read.
        The result only ever shrinks the local timeout.
        """
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(remaining, timeout)

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            label = f" [{self.label}]" if self.label else ""
            raise DeadlineExceeded(f"{what} exceeded its deadline{label}")

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s{', ' + self.label if self.label else ''})"


class CancelToken:
    """A cooperative cancellation flag checked at phase boundaries.

    Thread-safe by construction (a bool write is atomic under the GIL and the
    flag only ever goes False→True); ``check()`` raises
    :class:`CancelledCompilation` once cancelled.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason = ""

    def cancel(self, reason: str = "cancelled by caller") -> None:
        self.reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def check(self, what: str = "compilation") -> None:
        if self._cancelled:
            raise CancelledCompilation(f"{what} cancelled: {self.reason}")


class RetryPolicy:
    """Exponential backoff + deterministic jitter + a max-attempts bound.

    ``delay(attempt)`` (1-based) is ``base_delay * multiplier**(attempt-1)``
    capped at ``max_delay``, scaled by a jitter factor in
    ``[1-jitter, 1+jitter]`` derived by hashing ``(seed, attempt)`` — the same
    policy object replays the same delays, which keeps chaos tests and the
    cluster coordinator reproducible while still de-synchronising clients that
    use different seeds.
    """

    __slots__ = ("max_attempts", "base_delay", "multiplier", "max_delay", "jitter", "seed")

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed

    def _jitter_factor(self, attempt: int) -> float:
        if self.jitter == 0.0:
            return 1.0
        token = f"{self.seed}:{attempt}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        unit = int.from_bytes(digest, "big") / 2**64  # deterministic [0, 1)
        return 1.0 + self.jitter * (2.0 * unit - 1.0)

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        raw = self.base_delay * (self.multiplier ** (attempt - 1))
        return min(raw, self.max_delay) * self._jitter_factor(attempt)

    def attempts(self) -> Iterator[int]:
        """The attempt numbers this policy allows: 1..max_attempts."""
        return iter(range(1, self.max_attempts + 1))

    def call(
        self,
        fn: Callable[[], Any],
        *,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        deadline: Optional[Deadline] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> Any:
        """Run ``fn`` under this policy: retry on ``retry_on``, honor ``deadline``.

        The last error is re-raised when attempts (or the deadline budget) run
        out; a deadline always wins over a sleep — the policy never sleeps past
        it, and raises :class:`DeadlineExceeded` instead of starting an attempt
        it has no budget for.
        """
        last_error: Optional[BaseException] = None
        for attempt in self.attempts():
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"retry budget exhausted by deadline after {attempt - 1} attempt(s)"
                ) from last_error
            try:
                return fn()
            except retry_on as error:  # noqa: PERF203 — retry loop by definition
                last_error = error
                if attempt >= self.max_attempts:
                    break
                pause = self.delay(attempt)
                if deadline is not None:
                    pause = deadline.bound(pause)
                if on_retry is not None:
                    on_retry(attempt, error, pause)
                if pause > 0:
                    sleep(pause)
        assert last_error is not None
        raise last_error

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, base_delay={self.base_delay:g}, "
            f"multiplier={self.multiplier:g}, max_delay={self.max_delay:g}, "
            f"jitter={self.jitter:g}, seed={self.seed})"
        )
