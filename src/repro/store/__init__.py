"""repro.store — the persistent content-addressed artifact store.

A ``.git/objects``-style blob store (fingerprint → verified payload) that makes
the incremental machinery a fleet-wide asset: region artifacts and cluster
language bundles written by one process warm-start every later process — across
service restarts, pooled workers and hosts — while damage of any kind reads as
a miss, never a wrong answer.  See :mod:`repro.store.objects` for the format.
"""

from repro.store.objects import (
    ArtifactStore,
    BLOB_MAGIC,
    GCReport,
    StoreError,
    StoreStats,
    content_digest,
    decode_blob,
    encode_blob,
    open_store,
)

__all__ = [
    "ArtifactStore",
    "BLOB_MAGIC",
    "GCReport",
    "StoreError",
    "StoreStats",
    "content_digest",
    "decode_blob",
    "encode_blob",
    "open_store",
]
