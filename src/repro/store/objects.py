"""The content-addressed on-disk object store behind warm-start compiles.

PR 5's region artifacts and the cluster's language bundles are both *content*:
they are keyed by fingerprints that depend only on what is being compiled and
how, never on which process computed them.  This module gives that content a
home that survives process death — a ``.git/objects``-style blob store::

    store/
      objects/
        region/                    one namespace per payload kind
          3f/9ab2...e1             fan-out dir = first two key chars
        bundle/
          a0/57c4...99
      quarantine/                  blobs that failed verification, kept for autopsy
      tmp/                         same-filesystem staging for atomic renames

Every blob is framed: an 8-byte magic, the payload length, the payload, and a
``blake2b`` integrity trailer.  Reads verify the whole frame; anything that does
not verify — truncated file, flipped bit, zero-length blob, foreign format — is
**a miss, never a wrong answer**: the damaged file is moved to ``quarantine/``
and the caller re-derives the content from source exactly as if the entry had
never existed.

Concurrency model: writers stage under ``tmp/`` and publish with one atomic
``os.replace``, so two processes writing the same fingerprint race benignly
(last write wins, both wrote identical content by construction, and no reader
ever observes a torn blob).  Readers bump the blob's mtime, which is the LRU
clock :meth:`ArtifactStore.gc` evicts by — pinned (in-flight) entries are never
evicted.

Fault points (:mod:`repro.faults`): ``store.read`` (``corrupt`` feeds the
verifier damaged bytes, ``error`` is an I/O failure → miss, ``delay`` sleeps)
and ``store.write`` (``corrupt`` damages the encoded frame so a later read
quarantines it, ``error`` drops the write, ``delay`` sleeps).
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import struct
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.faults import plan as _faults

#: First bytes of every blob: identifies "a repro store object, format 1".
BLOB_MAGIC = b"RSTORE1\n"

#: blake2b digest size of the integrity trailer, bytes.
TRAILER_BYTES = 16

_LENGTH = struct.Struct(">Q")

#: Characters allowed in namespaces and keys (path-safety: keys become file
#: names, and fingerprints/digests are hex so this never bites in practice).
_SAFE = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


class StoreError(ValueError):
    """A malformed key/namespace or an unusable store root (caller mistakes).

    Subclasses :class:`ValueError` to match the PackedTree/wire hardening
    convention: structural invalidity is a ``ValueError`` everywhere in repro.
    Note that *blob damage* never raises — it surfaces as a quarantined miss.
    """


def encode_blob(payload: bytes) -> bytes:
    """Frame ``payload`` as one store blob (magic + length + payload + trailer)."""
    trailer = hashlib.blake2b(payload, digest_size=TRAILER_BYTES).digest()
    return BLOB_MAGIC + _LENGTH.pack(len(payload)) + payload + trailer


def decode_blob(blob: bytes) -> bytes:
    """Verify one framed blob and return its payload.

    Raises :class:`ValueError` naming the first check that failed — magic,
    announced length vs actual size, or the integrity trailer.  Callers treat
    any such failure as a miss (see :meth:`ArtifactStore.read`).
    """
    if len(blob) < len(BLOB_MAGIC) + _LENGTH.size + TRAILER_BYTES:
        raise ValueError(
            f"store blob of {len(blob)} bytes is shorter than the "
            f"{len(BLOB_MAGIC) + _LENGTH.size + TRAILER_BYTES}-byte frame minimum"
        )
    if blob[: len(BLOB_MAGIC)] != BLOB_MAGIC:
        raise ValueError(
            f"store blob magic {blob[:len(BLOB_MAGIC)]!r} is not {BLOB_MAGIC!r}"
        )
    (length,) = _LENGTH.unpack_from(blob, len(BLOB_MAGIC))
    body_start = len(BLOB_MAGIC) + _LENGTH.size
    expected = body_start + length + TRAILER_BYTES
    if len(blob) != expected:
        raise ValueError(
            f"store blob announces {length} payload bytes "
            f"({expected} framed) but the file holds {len(blob)}"
        )
    payload = blob[body_start : body_start + length]
    trailer = blob[body_start + length :]
    digest = hashlib.blake2b(payload, digest_size=TRAILER_BYTES).digest()
    if trailer != digest:
        raise ValueError("store blob integrity trailer does not match its payload")
    return payload


def content_digest(payload: bytes) -> str:
    """The hex content address of raw payload bytes (cluster bundle keying)."""
    return hashlib.blake2b(payload, digest_size=20).hexdigest()


@dataclass
class StoreStats:
    """Point-in-time counters of one :class:`ArtifactStore`'s lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    corrupt: int = 0          #: blobs that failed verification (quarantined)
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_evicted: int = 0
    gc_runs: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "bytes_evicted": self.bytes_evicted,
            "gc_runs": self.gc_runs,
        }


@dataclass
class GCReport:
    """What one :meth:`ArtifactStore.gc` pass did."""

    examined: int = 0
    evicted: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    pinned_kept: int = 0
    #: Relative blob names removed, oldest first (diagnostics / tests).
    removed: List[str] = field(default_factory=list)

    @property
    def bytes_freed(self) -> int:
        return self.bytes_before - self.bytes_after


class ArtifactStore:
    """A content-addressed blob store: fingerprint → verified payload bytes.

    :param root: directory to mount (created, with subdirectories, on first use).
    :param max_bytes: size budget enforced by :meth:`gc` — and opportunistically
        after writes once the store grows past the budget.  ``None`` disables
        automatic eviction (``gc(max_bytes=...)`` still works on demand).

    Thread-safe; processes sharing a root coordinate purely through atomic
    renames.  All methods treat damage as misses — the only exceptions raised
    are :class:`StoreError` for caller mistakes (bad key, unusable root).
    """

    def __init__(self, root: Any, *, max_bytes: Optional[int] = None):
        self.root = os.path.abspath(os.fspath(root))
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._objects = os.path.join(self.root, "objects")
        self._quarantine = os.path.join(self.root, "quarantine")
        self._tmp = os.path.join(self.root, "tmp")
        for directory in (self._objects, self._quarantine, self._tmp):
            os.makedirs(directory, exist_ok=True)
        if not os.path.isdir(self._objects):  # pragma: no cover — racing rmtree
            raise StoreError(f"store root {self.root!r} is not usable")
        self._lock = threading.Lock()
        self._stats = StoreStats()
        self._pins: Dict[str, int] = {}
        self._seq = 0
        # Approximate live size, maintained incrementally so the post-write
        # budget check never rescans the tree; gc() recomputes it exactly.
        self._approx_bytes = self._scan_bytes()

    # -------------------------------------------------------------------- paths

    def _check_name(self, what: str, name: str) -> str:
        if not name or not set(name) <= _SAFE:
            raise StoreError(
                f"{what} {name!r} is not storable: use non-empty "
                "[A-Za-z0-9._-] names (fingerprints and digests already are)"
            )
        return name

    def path_of(self, namespace: str, key: str) -> str:
        """Where ``(namespace, key)`` lives on disk (whether or not it exists)."""
        namespace = self._check_name("namespace", namespace)
        key = self._check_name("key", key)
        # Git-style fan-out: a two-hex-char shard dir keeps directory entries
        # per dir at ~1/256th of the population.  Short keys land in "_".
        shard, rest = (key[:2], key[2:]) if len(key) > 2 else ("_", key)
        return os.path.join(self._objects, namespace, shard, rest)

    def _relative(self, path: str) -> str:
        return os.path.relpath(path, self._objects)

    # --------------------------------------------------------------------- write

    def write(self, namespace: str, key: str, payload: bytes) -> bool:
        """Publish ``payload`` under ``(namespace, key)``; returns success.

        Atomic: the blob is framed and staged in ``tmp/`` on the same
        filesystem, then ``os.replace``d into place — concurrent writers of the
        same key race benignly and readers never see a torn frame.  Failures
        (disk full, permissions, injected faults) are swallowed into the
        ``write_errors`` counter: persistence is an optimisation, so a failed
        write must never fail the compile that attempted it.
        """
        path = self.path_of(namespace, key)
        blob = encode_blob(payload)
        if _faults.ACTIVE is not None:
            hit = _faults.ACTIVE.check("store.write", f"{namespace}/{key}")
            if hit is not None:
                if hit.action in ("delay", "stall"):
                    hit.sleep()
                elif hit.action == "corrupt":
                    # Damage the *encoded* frame (after the trailer was computed)
                    # so a later read detects it — modelling a torn sector, not a
                    # silently-wrong payload.
                    mutated = bytearray(blob)
                    mutated[len(mutated) // 2] ^= 0xFF
                    blob = bytes(mutated)
                else:
                    with self._lock:
                        self._stats.write_errors += 1
                    return False
        with self._lock:
            self._seq += 1
            staging = os.path.join(
                self._tmp, f"w{os.getpid()}.{threading.get_ident()}.{self._seq}"
            )
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(staging, "wb") as handle:
                handle.write(blob)
            os.replace(staging, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(staging)
            with self._lock:
                self._stats.write_errors += 1
            return False
        with self._lock:
            self._stats.writes += 1
            self._stats.bytes_written += len(blob)
            self._approx_bytes += len(blob)
            over_budget = (
                self.max_bytes is not None and self._approx_bytes > self.max_bytes
            )
        if over_budget:
            self.gc()
        return True

    # ---------------------------------------------------------------------- read

    def read(self, namespace: str, key: str) -> Optional[bytes]:
        """The payload stored under ``(namespace, key)``, or ``None`` (a miss).

        A blob that fails verification — truncation, bit flips, zero length,
        foreign bytes — is moved to ``quarantine/`` and reported as a miss, so
        the caller recomputes the content instead of trusting damaged data.
        Successful reads bump the blob's mtime (the :meth:`gc` LRU clock).
        """
        path = self.path_of(namespace, key)
        injected: Optional[str] = None
        if _faults.ACTIVE is not None:
            hit = _faults.ACTIVE.check("store.read", f"{namespace}/{key}")
            if hit is not None:
                if hit.action in ("delay", "stall"):
                    hit.sleep()
                else:
                    injected = hit.action
        if injected == "error":
            with self._lock:
                self._stats.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            with self._lock:
                self._stats.misses += 1
            return None
        except OSError:
            with self._lock:
                self._stats.misses += 1
            return None
        if injected == "corrupt" and blob:
            mutated = bytearray(blob)
            mutated[len(mutated) // 2] ^= 0xFF
            blob = bytes(mutated)
        try:
            payload = decode_blob(blob)
        except ValueError:
            self._quarantine_blob(namespace, key, path)
            with self._lock:
                self._stats.misses += 1
                self._stats.corrupt += 1
            return None
        with contextlib.suppress(OSError):
            os.utime(path)  # LRU clock: most-recently-read blobs survive gc longest
        with self._lock:
            self._stats.hits += 1
            self._stats.bytes_read += len(payload)
        return payload

    def _quarantine_blob(self, namespace: str, key: str, path: str) -> None:
        with self._lock:
            self._seq += 1
            seq = self._seq
        target = os.path.join(
            self._quarantine, f"{namespace}.{key}.{os.getpid()}.{seq}"
        )
        with contextlib.suppress(OSError):
            os.replace(path, target)

    # ------------------------------------------------------------------ contents

    def contains(self, namespace: str, key: str) -> bool:
        """Existence (not validity — only :meth:`read` verifies the frame)."""
        return os.path.exists(self.path_of(namespace, key))

    def delete(self, namespace: str, key: str) -> bool:
        path = self.path_of(namespace, key)
        try:
            size = os.path.getsize(path)
            os.unlink(path)
        except OSError:
            return False
        with self._lock:
            self._approx_bytes = max(0, self._approx_bytes - size)
        return True

    def keys(self, namespace: str) -> Iterator[str]:
        """Every key currently stored under ``namespace`` (unverified)."""
        base = os.path.join(self._objects, self._check_name("namespace", namespace))
        try:
            shards = sorted(os.listdir(base))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(base, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                yield name if shard == "_" else shard + name

    def verified_keys(self, namespace: str) -> List[str]:
        """Keys whose blobs verify *right now* (quarantining any that do not).

        Used by the cluster worker to advertise which bundle digests it can
        serve from disk — an advertisement must never promise damaged bytes.
        """
        good: List[str] = []
        for key in list(self.keys(namespace)):
            if self.read(namespace, key) is not None:
                good.append(key)
        return good

    # ------------------------------------------------------------------ pinning

    @contextlib.contextmanager
    def pin(self, namespace: str, key: str) -> Iterator[None]:
        """Protect one entry from :meth:`gc` while a caller is using it."""
        relative = self._relative(self.path_of(namespace, key))
        with self._lock:
            self._pins[relative] = self._pins.get(relative, 0) + 1
        try:
            yield
        finally:
            with self._lock:
                remaining = self._pins.get(relative, 1) - 1
                if remaining <= 0:
                    self._pins.pop(relative, None)
                else:
                    self._pins[relative] = remaining

    # ----------------------------------------------------------------------- gc

    def _walk(self) -> Iterator[Tuple[str, os.stat_result]]:
        for dirpath, _dirnames, filenames in os.walk(self._objects):
            for name in filenames:
                path = os.path.join(dirpath, name)
                try:
                    yield path, os.stat(path)
                except OSError:
                    continue  # deleted by a concurrent gc / writer: skip

    def _scan_bytes(self) -> int:
        return sum(stat.st_size for _path, stat in self._walk())

    def size_bytes(self) -> int:
        """Exact current size of the object tree (rescans; also resyncs gc's clock)."""
        total = self._scan_bytes()
        with self._lock:
            self._approx_bytes = total
        return total

    def gc(self, max_bytes: Optional[int] = None) -> GCReport:
        """Evict least-recently-used blobs until the store fits its budget.

        ``max_bytes`` overrides the store's configured budget for this pass.
        Pinned (in-flight) entries are never evicted, even when that leaves the
        store over budget.  Returns a :class:`GCReport`; with no budget at all
        this is a (cheap) no-op scan.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        entries = sorted(
            ((stat.st_mtime, path, stat.st_size) for path, stat in self._walk()),
            key=lambda entry: (entry[0], entry[1]),
        )
        total = sum(size for _mtime, _path, size in entries)
        report = GCReport(examined=len(entries), bytes_before=total)
        report.bytes_after = total
        with self._lock:
            self._stats.gc_runs += 1
            self._approx_bytes = total
            pinned = set(self._pins)
        if budget is None:
            return report
        remaining = total
        for _mtime, path, size in entries:
            if remaining <= budget:
                break
            if self._relative(path) in pinned:
                report.pinned_kept += 1
                continue
            try:
                os.unlink(path)
            except OSError:
                continue  # concurrently removed or locked: count nothing
            remaining -= size
            report.evicted += 1
            report.removed.append(self._relative(path))
        report.bytes_after = remaining
        with self._lock:
            self._stats.evictions += report.evicted
            self._stats.bytes_evicted += report.bytes_before - report.bytes_after
            self._approx_bytes = remaining
        return report

    # -------------------------------------------------------------------- stats

    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(**vars(self._stats))

    def __repr__(self) -> str:
        budget = f", budget {self.max_bytes}B" if self.max_bytes is not None else ""
        return f"ArtifactStore({self.root!r}{budget})"


def open_store(store: Any, *, max_bytes: Optional[int] = None) -> Optional[ArtifactStore]:
    """Coerce ``store`` — a path, an :class:`ArtifactStore`, or ``None`` — to a store.

    The one coercion rule every ``store=`` parameter in the codebase shares
    (:class:`~repro.incremental.cache.ArtifactCache`, ``Session.open``,
    ``CompilationService``, the server and cluster-worker CLIs).
    """
    if store is None:
        return None
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store, max_bytes=max_bytes)
