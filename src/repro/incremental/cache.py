"""The content-addressed cache of per-region evaluation artifacts.

One :class:`RegionArtifact` is everything needed to *stand in* for a region on a
later compilation: the recorded boundary traffic (replayed verbatim to dirty
neighbours and to the string librarian) and the region's evaluator report
(statistics and memory figures, which are content properties).  Artifacts are
keyed by the stable region fingerprints of :mod:`repro.incremental.fingerprint`,
so the cache is shared freely across documents, services and successive builds —
hits are decided by content, not by session identity.

The cache is a thread-safe LRU: the service layer compiles jobs concurrently, and
an editing session only ever needs the last few builds' artifacts.

With a ``store`` (:class:`repro.store.ArtifactStore`, or a path), the in-memory
LRU gains a persistent second tier:

* **read-through** — a memory miss consults the on-disk store; a verified blob
  is promoted into memory and served as a hit, which is what makes a freshly
  restarted process (or a brand-new worker, or another host sharing the store)
  recompile an edited document at warm speed;
* **write-behind** — ``put`` enqueues the artifact to a background writer
  thread, so the compile hot path never waits on disk; :meth:`flush` drains the
  queue for tests and benchmarks that need the store settled.

Damaged store blobs are quarantined misses (the store's integrity trailer), and
a blob that verifies but no longer unpickles — a format drift, not disk damage —
is deleted and treated as a miss too: the store can change time, never results.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from repro.distributed.evaluator_node import EvaluatorReport
from repro.distributed.recording import RegionRecording
from repro.faults import plan as _faults

#: Store namespace holding region artifacts (cluster bundles use ``bundle``).
REGION_NAMESPACE = "region"


@dataclass
class RegionArtifact:
    """One region's cached evaluation: boundary recording + evaluator report."""

    key: str
    recording: RegionRecording
    report: EvaluatorReport


def _poisoned_copy(artifact: RegionArtifact) -> RegionArtifact:
    """A *copy* of ``artifact`` with every output signature flipped.

    Models an artifact from a different build landing under this fingerprint:
    the boundary traffic is intact but its signatures no longer agree with any
    neighbour, so the incremental engine's validation (up-front edge consistency
    or the per-round hole-signature check) must dirty the region and re-run it.
    The cached entry itself is never mutated — the poison evaporates with the
    fault plan.
    """
    recording = artifact.recording
    poisoned = RegionRecording(
        region_id=recording.region_id,
        input_sigs=dict(recording.input_sigs),
        sends=list(recording.sends),
        output_sigs={
            key: bytes(byte ^ 0xFF for byte in signature) or b"\x00"
            for key, signature in recording.output_sigs.items()
        },
    )
    return RegionArtifact(artifact.key, poisoned, artifact.report)


def encode_artifact(artifact: RegionArtifact) -> bytes:
    """The store payload for one artifact (integrity framing is the store's job)."""
    return pickle.dumps(
        (artifact.key, artifact.recording, artifact.report), protocol=4
    )


def decode_artifact(key: str, payload: bytes) -> Optional[RegionArtifact]:
    """Rebuild an artifact from store bytes; ``None`` if it no longer decodes.

    The store already verified the payload byte-for-byte, so a decode failure
    here means the pickled shape drifted (an old store mounted by newer code) —
    served as a miss, exactly like damage.
    """
    try:
        stored_key, recording, report = pickle.loads(payload)
    except Exception:
        return None
    if stored_key != key or not isinstance(recording, RegionRecording):
        return None
    return RegionArtifact(key, recording, report)


class ArtifactCache:
    """Thread-safe LRU of :class:`RegionArtifact` keyed by region fingerprint.

    :param max_entries: in-memory LRU capacity (the store tier is bounded by the
        store's own byte budget, not by this).
    :param store: optional persistent second tier — an
        :class:`repro.store.ArtifactStore` to share, or a path to mount one at.
    """

    def __init__(self, max_entries: int = 512, *, store: Any = None):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, RegionArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0       #: memory misses served by the persistent tier
        self.store_misses = 0     #: misses the persistent tier could not serve
        self.store_drops = 0      #: write-behind entries dropped (queue full)
        if store is not None:
            from repro.store import open_store

            self.store = open_store(store)
        else:
            self.store = None
        self._writer: Optional[threading.Thread] = None
        self._write_queue: Optional["queue_module.Queue"] = None
        if self.store is not None:
            self._write_queue = queue_module.Queue(maxsize=1024)
            self._writer = threading.Thread(
                target=self._write_behind_loop,
                name="repro-artifact-store-writer",
                daemon=True,
            )
            self._writer.start()

    def get(self, key: str) -> Optional[RegionArtifact]:
        promoted = False
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if artifact is None and self.store is not None:
            artifact = self._read_through(key)
            promoted = artifact is not None
        if artifact is None:
            with self._lock:
                self.misses += 1
                if self.store is not None:
                    self.store_misses += 1
            return None
        if promoted:
            with self._lock:
                self.hits += 1
                self.store_hits += 1
                self._entries[key] = artifact
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        if _faults.ACTIVE is not None:
            hit = _faults.ACTIVE.check("cache.get", key)
            if hit is not None:
                if hit.action == "drop":
                    return None  # forced miss: the region recompiles from source
                if hit.action in ("delay", "stall"):
                    hit.sleep()
                else:
                    return _poisoned_copy(artifact)
        return artifact

    def _read_through(self, key: str) -> Optional[RegionArtifact]:
        payload = self.store.read(REGION_NAMESPACE, key)
        if payload is None:
            return None
        artifact = decode_artifact(key, payload)
        if artifact is None:
            # Verified bytes that no longer decode: format drift, not damage.
            # Delete so the slot is rewritten by this build's fresh recording.
            self.store.delete(REGION_NAMESPACE, key)
            return None
        return artifact

    def put(self, artifact: RegionArtifact) -> None:
        with self._lock:
            self._entries[artifact.key] = artifact
            self._entries.move_to_end(artifact.key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        if self._write_queue is not None:
            try:
                self._write_queue.put_nowait(artifact)
            except queue_module.Full:
                with self._lock:
                    self.store_drops += 1

    # ------------------------------------------------------------- write-behind

    def _write_behind_loop(self) -> None:
        assert self._write_queue is not None and self.store is not None
        while True:
            artifact = self._write_queue.get()
            try:
                if artifact is None:
                    return
                self.store.write(
                    REGION_NAMESPACE, artifact.key, encode_artifact(artifact)
                )
            finally:
                self._write_queue.task_done()

    def flush(self, timeout: float = 30.0) -> bool:
        """Wait until every queued write-behind artifact reached the store.

        Returns ``False`` on timeout (the writer keeps going regardless).  A
        cache without a store flushes trivially.
        """
        if self._write_queue is None:
            return True
        deadline = time.monotonic() + timeout
        while self._write_queue.unfinished_tasks:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)
        return True

    def close(self) -> None:
        """Flush and retire the write-behind thread (idempotent)."""
        if self._write_queue is None or self._writer is None:
            return
        self.flush()
        self._write_queue.put(None)
        self._writer.join(timeout=5.0)
        self._writer = None

    # ----------------------------------------------------------------- contents

    def clear(self) -> None:
        """Empty the in-memory tier (the persistent store is left untouched)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        tiered = f", store={self.store!r}" if self.store is not None else ""
        return (
            f"ArtifactCache({len(self)} entries, {self.hits} hits / "
            f"{self.misses} misses{tiered})"
        )
