"""The content-addressed cache of per-region evaluation artifacts.

One :class:`RegionArtifact` is everything needed to *stand in* for a region on a
later compilation: the recorded boundary traffic (replayed verbatim to dirty
neighbours and to the string librarian) and the region's evaluator report
(statistics and memory figures, which are content properties).  Artifacts are
keyed by the stable region fingerprints of :mod:`repro.incremental.fingerprint`,
so the cache is shared freely across documents, services and successive builds —
hits are decided by content, not by session identity.

The cache is a thread-safe LRU: the service layer compiles jobs concurrently, and
an editing session only ever needs the last few builds' artifacts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.distributed.evaluator_node import EvaluatorReport
from repro.distributed.recording import RegionRecording
from repro.faults import plan as _faults


@dataclass
class RegionArtifact:
    """One region's cached evaluation: boundary recording + evaluator report."""

    key: str
    recording: RegionRecording
    report: EvaluatorReport


def _poisoned_copy(artifact: RegionArtifact) -> RegionArtifact:
    """A *copy* of ``artifact`` with every output signature flipped.

    Models an artifact from a different build landing under this fingerprint:
    the boundary traffic is intact but its signatures no longer agree with any
    neighbour, so the incremental engine's validation (up-front edge consistency
    or the per-round hole-signature check) must dirty the region and re-run it.
    The cached entry itself is never mutated — the poison evaporates with the
    fault plan.
    """
    recording = artifact.recording
    poisoned = RegionRecording(
        region_id=recording.region_id,
        input_sigs=dict(recording.input_sigs),
        sends=list(recording.sends),
        output_sigs={
            key: bytes(byte ^ 0xFF for byte in signature) or b"\x00"
            for key, signature in recording.output_sigs.items()
        },
    )
    return RegionArtifact(artifact.key, poisoned, artifact.report)


class ArtifactCache:
    """Thread-safe LRU of :class:`RegionArtifact` keyed by region fingerprint."""

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, RegionArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[RegionArtifact]:
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        if _faults.ACTIVE is not None:
            hit = _faults.ACTIVE.check("cache.get", key)
            if hit is not None:
                if hit.action == "drop":
                    return None  # forced miss: the region recompiles from source
                if hit.action in ("delay", "stall"):
                    hit.sleep()
                else:
                    return _poisoned_copy(artifact)
        return artifact

    def put(self, artifact: RegionArtifact) -> None:
        with self._lock:
            self._entries[artifact.key] = artifact
            self._entries.move_to_end(artifact.key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ArtifactCache({len(self)} entries, {self.hits} hits / "
            f"{self.misses} misses)"
        )
