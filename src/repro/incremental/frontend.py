"""Incremental lexing and damaged-subtree reparsing.

The first two stages of the staged pipeline (``TokenStream`` and ``ParseTree``)
reuse whatever an edit left intact:

* **Token splice** — tokens strictly before the damage are kept verbatim; the
  lexer restarts at the last safe token boundary before the edit and stops as soon
  as a token boundary realigns with the old scan (same offset modulo the edit's
  length delta, on a line unaffected by the edit), after which the old suffix
  tokens are reused — verbatim when the edit changed neither lengths nor line
  structure, otherwise re-stamped with shifted line numbers.  Safe restart points
  exist because the scanner is stateless at token boundaries: every span interval
  (inter-token skip text plus lexeme) tiles the input.  Prefix reuse assumes the
  scanner's rules are local: a rule's match is determined by its lexeme text (no
  lookahead past it), and no delimited rule's opening sequence can occur as
  ordinary adjacent tokens in a *parseable* program (see
  ``GrammarLanguage(lexer=...)``; both built-in languages qualify).

* **Damaged-subtree reparse** — the smallest old subtree whose token span covers
  the damage is re-parsed in isolation with a *subtree LALR table* (the grammar's
  table built with that nonterminal as the start symbol, cached per grammar), and
  the fresh subtree is spliced into a rebuilt root-to-node spine.  Untouched
  siblings are reused **by reference**, which is what lets the fingerprint memo
  prove their regions' content unchanged without re-packing them.  For an
  unambiguous backbone the isolated parse is the unique derivation of that token
  slice, so the spliced tree equals a full reparse; any sub-parse failure falls
  back to the next enclosing candidate and finally to a full parse.
"""

from __future__ import annotations

import bisect
import weakref
from typing import Dict, List, Optional, Tuple

from repro.grammar.grammar import AttributeGrammar
from repro.parsing.lalr import LALRTable, build_lalr_table
from repro.parsing.lexer import Lexer, Token
from repro.parsing.parser import ParseError, Parser
from repro.tree.node import ParseTreeNode, make_node


class EditEnvelope:
    """The merged damage of all edits since the last build.

    Tracks one conservative span in both coordinate systems: ``[old_lo, old_hi)``
    in the previous build's text and ``[new_lo, new_hi)`` in the current text.
    Text outside the envelope is byte-identical between the two (shifted by
    ``delta`` after the envelope).
    """

    __slots__ = ("old_lo", "old_hi", "new_lo", "new_hi")

    def __init__(self) -> None:
        self.old_lo: Optional[int] = None
        self.old_hi = 0
        self.new_lo = 0
        self.new_hi = 0

    @property
    def empty(self) -> bool:
        return self.old_lo is None

    @property
    def delta(self) -> int:
        """Length shift applied to positions after the envelope."""
        if self.old_lo is None:
            return 0
        return (self.new_hi - self.new_lo) - (self.old_hi - self.old_lo)

    def record(self, start: int, end: int, new_length: int) -> None:
        """Fold one ``replace(start, end, <new_length> chars)`` into the envelope.

        ``start``/``end`` are in *current* text coordinates (i.e. after all edits
        recorded so far).
        """
        if self.old_lo is None:
            self.old_lo, self.old_hi = start, end
            self.new_lo, self.new_hi = start, start + new_length
            return
        delta = self.delta
        if start < self.new_lo:
            # Positions before the envelope are identical in both texts.
            self.old_lo = start
        if end > self.new_hi:
            # Positions after the envelope map back through the length shift.
            self.old_hi = end - delta
        lo = min(self.new_lo, start)
        hi = max(self.new_hi, end)
        self.new_lo = lo
        self.new_hi = hi + new_length - (end - start)

    def reset(self) -> None:
        self.old_lo = None
        self.old_hi = self.new_lo = self.new_hi = 0

    def __repr__(self) -> str:
        if self.empty:
            return "EditEnvelope(empty)"
        return (
            f"EditEnvelope(old=[{self.old_lo}:{self.old_hi}), "
            f"new=[{self.new_lo}:{self.new_hi}))"
        )


Span = Tuple[int, int, int]  # (scan_start, start, end)


def incremental_scan(
    lexer: Lexer,
    old_tokens: List[Token],
    old_spans: List[Span],
    old_text: str,
    new_text: str,
    envelope: EditEnvelope,
) -> Tuple[List[Token], List[Span], int, int, int]:
    """Re-lex only the damaged stretch of ``new_text``.

    Returns ``(tokens, spans, first_changed, old_resync, new_resync)``: the new
    token list equals a full scan of ``new_text``; tokens ``[0, first_changed)``
    are shared with the old list, old tokens ``[old_resync:]`` were reused for the
    suffix (re-stamped if lines shifted), and the genuinely re-lexed stretch is
    ``tokens[first_changed:new_resync]``.
    """
    assert not envelope.empty
    old_lo, old_hi = envelope.old_lo, envelope.old_hi
    delta = envelope.delta

    # Prefix: tokens whose lexeme ends strictly before the damage cannot change
    # (maximal munch: the character that stopped them is untouched; token patterns
    # must not look ahead past their lexeme, which holds for every scanner built
    # from plain TokenSpec rules).  A token ending exactly at the damage start
    # rescans — an insertion there can extend it ("v4" + "x1" → "v4x1").
    ends = [span[2] for span in old_spans]
    first_changed = bisect.bisect_left(ends, old_lo)
    if first_changed > 0:
        restart = old_spans[first_changed - 1][2]
        previous = old_tokens[first_changed - 1]
        newlines = previous.text.count("\n")
        line = previous.line + newlines
        if newlines:
            line_start = (
                old_spans[first_changed - 1][1] + previous.text.rfind("\n") + 1
            )
        else:
            line_start = old_spans[first_changed - 1][1] - (previous.column - 1)
    else:
        restart, line, line_start = 0, 1, 0

    # Resynchronisation candidates: old token boundaries past the damage whose
    # line also starts *strictly* past the damage (their columns cannot have
    # shifted).  Strict: a line starting exactly at old_hi was created by a
    # newline at old_hi - 1 — inside the damaged span, so possibly edited away.
    line_delta = new_text[envelope.new_lo : envelope.new_hi].count("\n") - old_text[
        old_lo:old_hi
    ].count("\n")
    candidates: Dict[int, int] = {}
    anchors = [span[0] for span in old_spans]
    for index in range(bisect.bisect_left(anchors, old_hi), len(old_spans)):
        token = old_tokens[index]
        token_line_start = old_spans[index][1] - (token.column - 1)
        if token_line_start > old_hi:
            candidates[old_spans[index][0] + delta] = index

    middle_tokens, middle_spans, stopped = lexer.scan(
        new_text,
        position=restart,
        line=line,
        line_start=line_start,
        resync_offsets=set(candidates) if candidates else None,
        resync_min=envelope.new_hi,
    )

    tokens = old_tokens[:first_changed] + middle_tokens
    spans = old_spans[:first_changed] + middle_spans
    if stopped is None:
        return tokens, spans, first_changed, len(old_tokens), len(tokens)

    old_resync = candidates[stopped]
    new_resync = len(tokens)
    if delta == 0 and line_delta == 0:
        # Same lengths, same line structure: the suffix is reusable verbatim.
        tokens += old_tokens[old_resync:]
        spans += old_spans[old_resync:]
    else:
        tokens += [
            Token(token.kind, token.text, token.line + line_delta, token.column)
            for token in old_tokens[old_resync:]
        ]
        spans += [
            (span[0] + delta, span[1] + delta, span[2] + delta)
            for span in old_spans[old_resync:]
        ]
    return tokens, spans, first_changed, old_resync, new_resync


# ------------------------------------------------------------- subtree reparse

_subtable_cache: "weakref.WeakKeyDictionary[AttributeGrammar, Dict[str, LALRTable]]" = (
    weakref.WeakKeyDictionary()
)


def subtree_table(grammar: AttributeGrammar, symbol: str) -> LALRTable:
    """The LALR table accepting exactly ``symbol``'s language (cached per grammar)."""
    tables = _subtable_cache.get(grammar)
    if tables is None:
        tables = {}
        _subtable_cache[grammar] = tables
    table = tables.get(symbol)
    if table is None:
        table = build_lalr_table(grammar, start=symbol)
        tables[symbol] = table
    return table


def count_tokens(root: ParseTreeNode, counts: Dict[int, int]) -> None:
    """Fill ``counts`` with the terminal-leaf count of every subtree under ``root``.

    Every shifted token becomes exactly one terminal node, so a node's leaf count
    is its token-span length.
    """
    post_order: List[ParseTreeNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        post_order.append(node)
        stack.extend(node.children)
    for node in reversed(post_order):
        if node.is_terminal:
            counts[node.node_id] = 1
        else:
            counts[node.node_id] = sum(
                counts[child.node_id] for child in node.children
            )


def incremental_reparse(
    grammar: AttributeGrammar,
    parser: Parser,
    old_tree: ParseTreeNode,
    counts: Dict[int, int],
    new_tokens: List[Token],
    first_changed: int,
    old_resync: int,
    new_resync: int,
) -> Tuple[ParseTreeNode, str]:
    """Re-parse only the damaged subtree; returns ``(tree, mode)``.

    ``mode`` is ``"reuse"`` (token stream unchanged — the old tree *is* the new
    tree), ``"splice"`` (an enclosing subtree was re-parsed in isolation and
    spliced in, sharing every untouched sibling by reference) or ``"full"``
    (fallback whole-stream parse).  ``counts`` is updated in place for every node
    of a spliced tree.
    """
    if first_changed == old_resync and first_changed == new_resync:
        return old_tree, "reuse"
    token_delta = new_resync - first_changed - (old_resync - first_changed)

    # Walk down from the root, following the unique child whose old token span
    # covers the damage; the visited path is the candidate chain, smallest last.
    path: List[Tuple[ParseTreeNode, int]] = []  # (node, its token-span start)
    node, start = old_tree, 0
    while True:
        path.append((node, start))
        descended = False
        child_start = start
        for child in node.children:
            child_count = counts[child.node_id]
            if (
                child_start <= first_changed
                and old_resync <= child_start + child_count
            ):
                if not child.is_terminal and child.production is not None:
                    node, start = child, child_start
                    descended = True
                break
            child_start += child_count
        if not descended:
            break

    for depth in range(len(path) - 1, 0, -1):  # smallest candidate first; 0 = root
        candidate, span_start = path[depth]
        span_end = span_start + counts[candidate.node_id]
        slice_tokens = new_tokens[span_start : span_end + token_delta]
        try:
            table = subtree_table(grammar, candidate.symbol.name)
            subtree = Parser(grammar, table).parse(slice_tokens)
        except (ParseError, ValueError):
            continue  # climb to the enclosing candidate
        count_tokens(subtree, counts)
        # Rebuild the spine from the candidate's parent up to the root; untouched
        # siblings are the original node objects, reused by reference.
        fresh = subtree
        replaced = candidate
        for ancestor, _ in reversed(path[:depth]):
            children = [
                fresh if child is replaced else child for child in ancestor.children
            ]
            fresh = make_node(ancestor.production, children)
            counts[fresh.node_id] = sum(counts[child.node_id] for child in children)
            replaced = ancestor
        return fresh, "splice"

    tree = parser.parse(new_tokens)
    count_tokens(tree, counts)
    return tree, "full"
