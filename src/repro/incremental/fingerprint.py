"""Stable, content-addressed fingerprints for decomposition regions.

A region's cached evaluation is reusable exactly when everything that determines its
outputs besides its boundary inputs is unchanged:

* the region's *content* — the packed pre-order encoding of its subtree (production
  and terminal codes plus token values), with hole subtrees excluded.  Node ids are
  deliberately left out: they are freshly numbered on every parse and carry no
  content;
* its *wiring* — region id (which also fixes the paper's unique-identifier base),
  parent region, and which child region sits in which hole, in pre-order;
* the *engine* — grammar registration key, evaluator kind and the configuration
  knobs that alter evaluation or the wire protocol, plus the substrate and machine
  count (folded into one engine digest).

Two regions with identical text but different region ids hash differently on
purpose: their evaluators draw unique identifiers (labels, temporaries) from
different bases, so their outputs genuinely differ.

``FingerprintMemo`` lets a :class:`~repro.incremental.document.Document` skip
re-packing regions whose root node object survived the incremental reparse — the
tree splice reuses untouched nodes by reference, so surviving (node id, wiring)
pairs prove the content unchanged.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Dict, Optional, Tuple

from repro.grammar.grammar import AttributeGrammar
from repro.partition.decomposition import DecompositionPlan
from repro.tree.linearize import pack


#: Memo key: (region root node id, sorted (hole node id, child region id) pairs).
MemoKey = Tuple[int, Tuple[Tuple[int, int], ...]]


class FingerprintMemo:
    """Content-hash memo keyed by (region root node id, exact hole placement).

    Node ids are process-unique and never reused, and the incremental reparse
    shares untouched subtrees by reference, so a surviving key proves the packed
    content is identical to the previous build's.
    """

    def __init__(self) -> None:
        self._hashes: Dict[MemoKey, bytes] = {}

    def get(self, key: MemoKey) -> Optional[bytes]:
        return self._hashes.get(key)

    def replace(self, fresh: Dict[MemoKey, bytes]) -> None:
        """Install the new build's hashes (stale node ids never match again anyway)."""
        self._hashes = dict(fresh)

    def __len__(self) -> int:
        return len(self._hashes)


def engine_digest(
    bundle_key: str,
    evaluator: str,
    backend: str,
    machines: int,
    configuration,
) -> str:
    """One digest over everything engine-side that region outputs depend on."""
    payload = "|".join(
        str(part)
        for part in (
            bundle_key,
            evaluator,
            backend,
            machines,
            configuration.use_librarian,
            configuration.librarian_attributes,
            configuration.use_priority,
            configuration.use_precompiled_tables,
            configuration.use_compiled_plans,
            configuration.min_split_size,
            configuration.split_scale,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def region_content_hash(
    grammar: AttributeGrammar,
    region_root,
    holes: Dict[int, int],
) -> bytes:
    """Content hash of one region's subtree, holes excluded, node ids excluded."""
    packed = pack(grammar, region_root, holes)
    digest = hashlib.sha256()
    digest.update(packed.root_symbol.encode())
    digest.update(packed.codes.tobytes())
    # Token values are scanner outputs (strings for every built-in language, but
    # the codec allows any picklable value), so hash their pickled form.
    digest.update(pickle.dumps(packed.values, protocol=4))
    return digest.digest()


def region_keys(
    grammar: AttributeGrammar,
    decomposition: DecompositionPlan,
    engine: str,
    memo: Optional[FingerprintMemo] = None,
) -> Dict[int, str]:
    """Cache keys for every region of ``decomposition``.

    With a ``memo``, regions whose root node (and hole wiring) survived from the
    previous build skip the packing pass entirely — fingerprinting then costs
    O(changed content), not O(tree).
    """
    keys: Dict[int, str] = {}
    fresh_hashes: Dict[MemoKey, bytes] = {}
    for region in decomposition.regions:
        holes = decomposition.holes_of(region.region_id)
        # Hole wiring in pre-order: which child region fills each hole.  holes_of
        # preserves child_regions order, which is the discovery (pre-order) order.
        wiring = tuple(holes.values())
        # The memo key must pin the hole *node ids* too: a threshold shift can
        # move a hole to a different node inside a surviving root while reusing
        # the same child region id, and that changes the packed content.
        memo_key = (region.root.node_id, tuple(sorted(holes.items())))
        content = memo.get(memo_key) if memo is not None else None
        if content is None:
            content = region_content_hash(grammar, region.root, holes)
        fresh_hashes[memo_key] = content
        digest = hashlib.sha256()
        digest.update(engine.encode())
        digest.update(
            f"|{region.region_id}|{region.parent_region}|{wiring}|".encode()
        )
        digest.update(content)
        keys[region.region_id] = digest.hexdigest()
    if memo is not None:
        memo.replace(fresh_hashes)
    return keys
