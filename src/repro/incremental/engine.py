"""Dirty-region scheduling: compile a tree reusing every cached region artifact.

The driver around :class:`~repro.distributed.compiler.ParallelCompiler`'s
replay-and-record mode:

1. plan the decomposition and fingerprint every region
   (:mod:`repro.incremental.fingerprint`);
2. the *dirty* set is the content misses plus all their ancestors — a region's
   evaluation consumes its children's synthesized boundary attributes, so dirtiness
   propagates root-ward; the root region is always dirty (it delivers the final
   result and assembly requests).  Clean-clean region boundaries whose cached
   signatures disagree (artifacts from different builds) are dirtied up front;
3. run the session: dirty regions are shipped and evaluated (recording their
   boundary traffic), clean regions are replayed from the cache;
4. every replayed region checks the inherited values its dirty parent actually
   sent against its cached *hole signatures*.  A mismatch means a root-context
   change propagated into a content-clean region — that region joins the dirty set
   and the session re-runs.  The loop is monotone (dirty only grows) and therefore
   terminates; at the fixed point every cached input signature matches the live
   boundary values, so the result is identical to a cold compile of the same tree.

Validation compares exact value signatures, never timings, which is what makes
edit-then-recompile results equal to cold compiles byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.backends.base import BackendError, SharedBundle, Substrate
from repro.distributed.compiler import CompilationReport, ParallelCompiler
from repro.distributed.recording import IncrementalSessionPlan, RegionRecording
from repro.incremental.cache import ArtifactCache, RegionArtifact
from repro.incremental.fingerprint import FingerprintMemo, engine_digest, region_keys
from repro.partition.decomposition import DecompositionPlan, plan_decomposition


@dataclass
class IncrementalReport:
    """What one incremental compilation reused, re-evaluated and why."""

    regions_total: int = 0
    regions_evaluated: int = 0
    regions_reused: int = 0
    dirty_regions: List[str] = field(default_factory=list)   # labels, e.g. ["a", "c"]
    content_misses: int = 0
    validation_rounds: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    #: How the parse tree was obtained: "cold" (first build), "reuse" (tokens
    #: unchanged), "splice" (damaged-subtree reparse) or "full" (full reparse).
    frontend: str = "cold"

    @property
    def reuse_fraction(self) -> float:
        if self.regions_total == 0:
            return 0.0
        return self.regions_reused / self.regions_total

    def summary(self) -> str:
        return (
            f"incremental: {self.regions_evaluated}/{self.regions_total} region(s) "
            f"evaluated ({self.regions_reused} replayed from cache), "
            f"dirty={self.dirty_regions}, {self.validation_rounds} round(s), "
            f"frontend={self.frontend}"
        )


def _edge_consistent(parent: RegionRecording, child: RegionRecording,
                     parent_id: int, child_id: int) -> bool:
    """Do two cached artifacts agree about their shared boundary?

    Needed because the cache is content-addressed across builds: a parent artifact
    from build A and a child artifact from build B may both match current content
    while disagreeing about the attribute values that crossed between them.
    """
    for (source, direction, name), signature in child.input_sigs.items():
        if source != parent_id or direction != "down":
            continue
        if parent.output_sigs.get((child_id, "down", name)) != signature:
            return False
    for (source, direction, name), signature in parent.input_sigs.items():
        if source != child_id or direction != "up":
            continue
        if child.output_sigs.get((parent_id, "up", name)) != signature:
            return False
    return True


class IncrementalCompiler:
    """Compile trees through a :class:`ParallelCompiler`, reusing region artifacts.

    Stateless apart from the cache reference: safe to construct per call.  The same
    cache may back many incremental compilers (documents, service jobs) — artifacts
    are keyed by content and engine digest, never by session identity.
    """

    def __init__(self, engine: ParallelCompiler, cache: ArtifactCache):
        self.engine = engine
        self.cache = cache
        bundle = engine._grammar_bundle
        if isinstance(bundle, SharedBundle):
            self._bundle_key = bundle.key
        else:
            # Unregistered grammar: fall back to object identity, which is exactly
            # the lifetime for which its fingerprints are comparable.
            self._bundle_key = f"grammar@{id(engine.grammar)}"

    def compile_tree(
        self,
        tree,
        machines: int,
        *,
        root_inherited: Optional[Dict[str, Any]] = None,
        backend: Optional[str] = None,
        substrate: Optional[Substrate] = None,
        memo: Optional[FingerprintMemo] = None,
        receive_timeout: Optional[float] = None,
    ) -> Tuple[CompilationReport, IncrementalReport]:
        config = self.engine.configuration
        decomposition = plan_decomposition(
            tree,
            machines,
            min_size=config.min_split_size,
            scale=config.split_scale,
        )
        if substrate is not None:
            backend_name = substrate.name
        elif backend is not None:
            backend_name = backend
        elif self.engine.substrate is not None:
            backend_name = self.engine.substrate.name
        else:
            backend_name = self.engine.backend
        digest = engine_digest(
            self._bundle_key, config.evaluator, backend_name, machines, config
        )
        keys = region_keys(self.engine.grammar, decomposition, digest, memo)

        parent_of = {
            region.region_id: region.parent_region for region in decomposition.regions
        }
        children_of = {
            region.region_id: list(region.child_regions)
            for region in decomposition.regions
        }
        labels = {
            region.region_id: region.label or str(region.region_id)
            for region in decomposition.regions
        }

        artifacts: Dict[int, RegionArtifact] = {}
        for region_id, key in keys.items():
            if region_id == 0:
                continue  # the root region always re-evaluates; skip the lookup
            artifact = self.cache.get(key)
            if artifact is not None:
                artifacts[region_id] = artifact

        content_misses = sum(
            1 for region_id in keys if region_id != 0 and region_id not in artifacts
        )
        dirty = {0}
        dirty.update(
            region_id for region_id in keys if region_id != 0 and region_id not in artifacts
        )
        self._close_over_ancestors(dirty, parent_of)
        self._dirty_inconsistent_edges(artifacts, dirty, parent_of)

        rounds = 0
        plan: Optional[IncrementalSessionPlan] = None
        report: Optional[CompilationReport] = None
        while True:
            rounds += 1
            if rounds > len(keys) + 1:  # pragma: no cover — monotone loop safety net
                raise BackendError("incremental validation did not converge")
            reuse = {
                region_id: artifact
                for region_id, artifact in artifacts.items()
                if region_id not in dirty
            }
            plan = IncrementalSessionPlan(reuse=reuse, record=True)
            report = self.engine.compile_tree(
                tree,
                machines,
                root_inherited=root_inherited,
                backend=backend,
                substrate=substrate,
                decomposition=decomposition,
                incremental=plan,
                receive_timeout=receive_timeout,
            )
            if not plan.mismatches:
                break
            # A replayed region saw live inherited values that differ from its
            # cached hole signatures: its outputs are stale.  Re-run with it
            # evaluated for real — and with its whole region subtree, because a
            # changed inherited context (symbol tables accumulate) almost always
            # flows further down; dirtying descendants up front turns a
            # chain-depth cascade of rounds into one.
            for region_id, _key in plan.mismatches:
                self._close_over_descendants(region_id, dirty, children_of)
            self._close_over_ancestors(dirty, parent_of)

        # Refresh the cache with the final round's recordings (region 0 excluded:
        # it can never be replayed, so caching it would only occupy an LRU slot).
        reports_by_region = {
            evaluator_report.region_id: evaluator_report
            for evaluator_report in report.evaluator_reports
        }
        for region_id, recording in plan.recordings.items():
            if region_id == 0:
                continue
            self.cache.put(
                RegionArtifact(keys[region_id], recording, reports_by_region[region_id])
            )

        reused = len(keys) - len(dirty)
        report.region_cache_hits = reused
        report.region_cache_misses = len(dirty)
        incremental_report = IncrementalReport(
            regions_total=len(keys),
            regions_evaluated=len(dirty),
            regions_reused=reused,
            dirty_regions=sorted(labels[region_id] for region_id in dirty),
            content_misses=content_misses,
            validation_rounds=rounds,
            cache_hits=reused,
            cache_misses=len(dirty),
        )
        return report, incremental_report

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def _close_over_ancestors(dirty, parent_of) -> None:
        """A dirty region's outputs feed its parent: dirtiness propagates root-ward."""
        for region_id in list(dirty):
            parent = parent_of.get(region_id)
            while parent is not None and parent not in dirty:
                dirty.add(parent)
                parent = parent_of.get(parent)

    @staticmethod
    def _close_over_descendants(region_id, dirty, children_of) -> None:
        stack = [region_id]
        while stack:
            current = stack.pop()
            if current in dirty:
                continue
            dirty.add(current)
            stack.extend(children_of.get(current, ()))

    @staticmethod
    def _dirty_inconsistent_edges(artifacts, dirty, parent_of) -> None:
        """Dirty any clean region whose cached boundary disagrees with its clean parent's.

        Dirty-parent boundaries are validated live by the replay bodies instead.
        """
        changed = True
        while changed:
            changed = False
            for region_id, artifact in artifacts.items():
                if region_id in dirty:
                    continue
                parent = parent_of.get(region_id)
                if parent is None or parent in dirty:
                    continue
                parent_artifact = artifacts.get(parent)
                if parent_artifact is None or not _edge_consistent(
                    parent_artifact.recording,
                    artifact.recording,
                    parent,
                    region_id,
                ):
                    dirty.add(region_id)
                    IncrementalCompiler._close_over_ancestors(dirty, parent_of)
                    changed = True
