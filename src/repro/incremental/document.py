"""The :class:`Document` session: edit source text, recompile only what changed.

A document is the staged-pipeline counterpart of ``Compiler.compile``: it keeps
every intermediate artifact of the previous build — the rope source, the token
stream with spans, the parse tree, the fingerprint memo and (through the shared
:class:`~repro.incremental.cache.ArtifactCache`) the per-region evaluation
recordings — and reuses each stage across edits::

    from repro import Session

    with Session(backend="processes") as session:
        doc = session.open("pascal", source)
        cold = doc.recompile()                  # full build, artifacts recorded
        doc.edit(start, end, "x := x + 2")      # one keystroke-sized change
        warm = doc.recompile()                  # re-lexes the damage, re-parses one
                                                # subtree, evaluates dirty regions
        print(warm.incremental.summary())

Guarantees:

* ``recompile()`` after any edit sequence returns the same value, errors and
  assembled code as a cold ``Compiler.compile`` of the current text (the artifact
  cache affects time, never results — stale cached inputs are detected by
  hole-signature validation and re-evaluated);
* edits are plain text operations (``edit``/``insert``/``delete``) in current
  document coordinates; the rope representation shares all untouched text.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple, Union

from repro.backends.base import Substrate
from repro.distributed.compiler import CompilerConfiguration
from repro.incremental.cache import ArtifactCache
from repro.incremental.engine import IncrementalCompiler
from repro.incremental.fingerprint import FingerprintMemo
from repro.incremental.frontend import (
    EditEnvelope,
    count_tokens,
    incremental_reparse,
    incremental_scan,
)
from repro.parsing.lexer import LexerError
from repro.parsing.parser import ParseError
from repro.strings.rope import Rope, rope
from repro.tree.node import ParseTreeNode


class Document:
    """One editable source text bound to a language, a substrate and a cache.

    Usually created via :meth:`repro.api.Session.open`, which supplies the
    session's substrate and its shared artifact cache.
    """

    def __init__(
        self,
        language,
        source: Union[str, Rope],
        *,
        machines: int = 2,
        evaluator: Optional[str] = None,
        configuration: Optional[CompilerConfiguration] = None,
        backend: Optional[str] = None,
        substrate: Optional[Substrate] = None,
        cache: Optional[ArtifactCache] = None,
        store: Any = None,
        root_inherited: Optional[Dict[str, Any]] = None,
    ):
        # Late imports: repro.api builds its Session on top of this module.
        from repro.api.language import engine_for, get_language

        self.language = get_language(language)
        self.machines = machines
        self.backend = backend
        self.substrate = substrate
        if cache is not None and store is not None:
            raise ValueError(
                "pass either cache= (a possibly store-backed ArtifactCache) or "
                "store= (a path/ArtifactStore to mount a fresh cache on), not both"
            )
        if cache is not None:
            self.cache = cache
        elif store is not None:
            # A persistent tier of its own: artifacts recorded by any earlier
            # process that mounted this store warm-start this document's builds.
            self.cache = ArtifactCache(store=store)
        else:
            self.cache = ArtifactCache()
        self._root_inherited = root_inherited
        self._engine = engine_for(self.language, evaluator or "combined", configuration)
        self._incremental = IncrementalCompiler(self._engine, self.cache)
        self._memo = FingerprintMemo()
        frontend = getattr(self.language, "frontend", None)
        self._frontend: Optional[Tuple[Any, Any]] = frontend() if frontend else None

        self._rope = rope(source)
        self._text: Optional[str] = None
        self._envelope = EditEnvelope()
        self._tokens = None
        self._spans = None
        self._tree: Optional[ParseTreeNode] = None
        self._counts: Dict[int, int] = {}
        self._built_text: Optional[str] = None
        self.last_result = None

    # ------------------------------------------------------------------ editing

    @property
    def text(self) -> str:
        """The current source text (flattened lazily from the rope)."""
        if self._text is None:
            self._text = self._rope.flatten()
        return self._text

    @property
    def source(self) -> Rope:
        """The current source as a rope (untouched stretches shared across edits)."""
        return self._rope

    def edit(self, start: int, end: int, text: str) -> "Document":
        """Replace ``[start, end)`` of the current text with ``text``."""
        self._rope = self._rope.replace(start, end, text)
        self._envelope.record(start, end, len(text))
        self._text = None
        return self

    def insert(self, position: int, text: str) -> "Document":
        return self.edit(position, position, text)

    def delete(self, start: int, end: int) -> "Document":
        return self.edit(start, end, "")

    def __len__(self) -> int:
        return len(self._rope)

    # ---------------------------------------------------------------- compiling

    def recompile(self):
        """Compile the current text, reusing every artifact the edits left intact.

        Returns a :class:`repro.api.CompileResult` whose ``incremental`` field
        reports what was reused: regions replayed vs evaluated, validation rounds
        and the front-end mode (``cold``/``reuse``/``splice``/``full``).
        """
        from repro.api.compiler import CompileResult

        started = time.perf_counter()
        tree, mode = self._front_end()
        wall_parse = time.perf_counter() - started

        report, incremental = self._incremental.compile_tree(
            tree,
            self.machines,
            root_inherited=self._root_inherited,
            backend=self.backend,
            substrate=self.substrate,
            memo=self._memo,
        )
        incremental.frontend = mode
        report.wall_parse_seconds = wall_parse
        result = CompileResult(
            language=self.language.name,
            value=self.language.result(report),
            errors=self.language.errors(report),
            report=report,
            wall_parse_seconds=wall_parse,
            wall_compile_seconds=report.wall_time_seconds,
            incremental=incremental,
        )
        self.last_result = result
        return result

    # ---------------------------------------------------------------- internals

    def _front_end(self) -> Tuple[ParseTreeNode, str]:
        """Produce the parse tree for the current text, incrementally if possible."""
        text = self.text
        if self._tree is not None and self._envelope.empty:
            return self._tree, "reuse"

        if self._frontend is None:
            # No lexer/parser pair exposed: full parse; region-level reuse still
            # applies through content-addressed fingerprints.
            mode = "cold" if self._tree is None else "full"
            tree = self.language.parse(text)
            self._commit_front_end(text, None, None, tree)
            return tree, mode

        lexer, parser = self._frontend
        if self._tree is None or self._built_text is None:
            tokens, spans, _ = lexer.scan(text)
            tree = parser.parse(tokens)
            self._counts = {}
            count_tokens(tree, self._counts)
            self._commit_front_end(text, tokens, spans, tree)
            return tree, "cold"

        try:
            tokens, spans, first_changed, old_resync, new_resync = incremental_scan(
                lexer, self._tokens, self._spans, self._built_text, text, self._envelope
            )
            tree, mode = incremental_reparse(
                self._engine.grammar,
                parser,
                self._tree,
                self._counts,
                tokens,
                first_changed,
                old_resync,
                new_resync,
            )
        except (LexerError, ParseError):
            # Invalid source must surface exactly as it would on a cold compile;
            # rebuilding from scratch also re-validates the splice machinery.
            tokens, spans, _ = lexer.scan(text)
            tree = parser.parse(tokens)
            mode = "full"
            self._counts = {}
            count_tokens(tree, self._counts)
        self._commit_front_end(text, tokens, spans, tree)
        return tree, mode

    def _commit_front_end(self, text, tokens, spans, tree) -> None:
        self._built_text = text
        self._tokens = tokens
        self._spans = spans
        self._tree = tree
        self._envelope.reset()
        # Splices only add count entries (node ids are never reused), so a long
        # editing session accumulates entries for dead subtrees; rebuild from the
        # live tree once the dict clearly outgrows it (amortised O(1) per edit).
        if tokens is not None and len(self._counts) > 8 * max(64, len(tokens)):
            self._counts = {}
            count_tokens(tree, self._counts)

    def __repr__(self) -> str:
        state = "built" if self._tree is not None else "new"
        return (
            f"Document({self.language.name!r}, {len(self._rope)} chars, "
            f"machines={self.machines}, {state})"
        )
