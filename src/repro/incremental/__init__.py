"""``repro.incremental`` — content-addressed region artifacts and document sessions.

The paper's central move — decomposing the parse tree into regions evaluated in
parallel — implies something the one-shot pipeline never exploited: when a source
edit touches one region, every other region's evaluation is still valid.  This
package turns that observation into an interactive edit-recompile workload:

* :mod:`~repro.incremental.fingerprint` — stable, content-addressed region keys
  built on the packed tree codec;
* :mod:`~repro.incremental.cache` — the :class:`ArtifactCache` of per-region
  boundary recordings and evaluator reports;
* :mod:`~repro.incremental.engine` — dirty-region scheduling with
  hole-signature validation rounds, driving :class:`repro.distributed.compiler.
  ParallelCompiler` in replay-and-record mode;
* :mod:`~repro.incremental.frontend` — incremental re-lexing (token prefix/suffix
  splice) and damaged-subtree reparsing (nonterminal-rooted LALR sub-tables);
* :mod:`~repro.incremental.document` — the :class:`Document` session API:
  ``Session.open(language, source)`` → ``doc.edit(start, end, text)`` →
  ``doc.recompile()``.

The compile pipeline is staged into explicit artifacts — ``TokenStream →
ParseTree → DecompositionPlan → per-region recordings → CompileResult`` — and each
stage reuses whatever the edit left intact.  Full builds are byte-identical with
the cache on or off, on every substrate; an edit-then-recompile equals a cold
compile of the edited source.
"""

from repro.incremental.cache import ArtifactCache, RegionArtifact
from repro.incremental.document import Document
from repro.incremental.engine import IncrementalCompiler, IncrementalReport

__all__ = [
    "ArtifactCache",
    "Document",
    "IncrementalCompiler",
    "IncrementalReport",
    "RegionArtifact",
]
