"""Bump-allocation arena accounting.

The paper notes that "storage allocation is extremely fast throughout since we make no
provision for reusing memory".  CPython manages memory for us, so the substantive part
of that design decision — how much memory a dynamic versus a combined evaluator touches
— is reproduced as *accounting*: an :class:`~repro.alloc.arena.Arena` charges an
abstract byte count per allocation class, and the evaluators report their allocation
profile through it so the memory comparison between evaluation strategies can be made.
"""

from repro.alloc.arena import Arena, AllocationStats

__all__ = ["Arena", "AllocationStats"]
