"""Arena allocation accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class AllocationStats:
    """Totals for one allocation class."""

    allocations: int = 0
    bytes_allocated: int = 0


class Arena:
    """A no-reuse bump allocator model.

    ``allocate(kind, size)`` never frees anything; :meth:`high_water_mark` therefore
    equals the total bytes ever allocated, which is exactly the memory behaviour of the
    paper's evaluators.  The per-kind breakdown lets benchmarks compare e.g. the
    dependency-graph storage of the dynamic evaluator against the visit-sequence-only
    storage of the combined evaluator.
    """

    def __init__(self):
        self._by_kind: Dict[str, AllocationStats] = {}
        self._total_bytes = 0
        self._total_allocations = 0

    def allocate(self, kind: str, size: int) -> int:
        """Record an allocation of ``size`` abstract bytes; returns the new total."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        stats = self._by_kind.setdefault(kind, AllocationStats())
        stats.allocations += 1
        stats.bytes_allocated += size
        self._total_allocations += 1
        self._total_bytes += size
        return self._total_bytes

    def high_water_mark(self) -> int:
        """Total bytes allocated (nothing is ever reused)."""
        return self._total_bytes

    @property
    def total_allocations(self) -> int:
        return self._total_allocations

    def by_kind(self) -> Dict[str, AllocationStats]:
        return dict(self._by_kind)

    def merge(self, other: "Arena") -> None:
        for kind, stats in other._by_kind.items():
            mine = self._by_kind.setdefault(kind, AllocationStats())
            mine.allocations += stats.allocations
            mine.bytes_allocated += stats.bytes_allocated
        self._total_bytes += other._total_bytes
        self._total_allocations += other._total_allocations

    def __repr__(self) -> str:
        return (
            f"Arena(total_bytes={self._total_bytes}, allocations={self._total_allocations}, "
            f"kinds={sorted(self._by_kind)})"
        )
