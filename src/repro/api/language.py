"""The :class:`Language` protocol and the process-wide language registry.

The paper's architecture is workload-agnostic — any attributed tree can be
partitioned and evaluated in parallel — so the front door treats a workload as a
*language*: a name, an attribute grammar, a parse function from source text to an
attributed tree, and hooks that extract the interesting result (generated code, a
computed value, error lists) from a finished :class:`CompilationReport`.

New workloads plug in by registration, not by copying compiler glue::

    from repro import GrammarLanguage, register_language, Compiler

    register_language(GrammarLanguage("mylang", my_grammar, tokenize=my_tokenizer,
                                      result_attribute="value"))
    print(Compiler("mylang").compile("...").value)

Registration also names the language's grammar+plan bundle for the pooled processes
substrate (:class:`~repro.backends.base.SharedBundle`): every compiler created for a
registered language shares one worker-side cache entry, so the grammar crosses to
each pooled worker once ever — not once per caller.
"""

from __future__ import annotations

import abc
import threading
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.analysis.visit_sequences import OrderedEvaluationPlan, build_evaluation_plan
from repro.distributed.compiler import (
    CompilationReport,
    CompilerConfiguration,
    ParallelCompiler,
)
from repro.grammar.grammar import AttributeGrammar
from repro.parsing.parser import Parser
from repro.strings.rope import Rope
from repro.tree.node import ParseTreeNode


class LanguageError(ValueError):
    """Base error for language-registry misuse."""


class DuplicateLanguageError(LanguageError):
    """Raised when registering a name that is already taken (without ``replace``)."""


class UnknownLanguageError(LanguageError):
    """Raised when looking up a name nothing was registered under."""


def attribute_value(report: CompilationReport, name: str) -> Any:
    """The final value of a root attribute, librarian-assembled text included.

    Code attributes routed through the string librarian land in ``report.assembled``
    rather than ``report.root_attributes``; ropes are flattened to plain strings
    either way, while non-string values (e.g. the expression language's integer
    ``value``) come back unchanged.
    """
    if name in report.assembled:
        return report.assembled[name].flatten()
    value = report.root_attributes.get(name)
    if isinstance(value, Rope):
        return value.flatten()
    return value


class Language(abc.ABC):
    """Everything the front door needs to know about one workload.

    Subclasses define a ``name``, build the attribute grammar, and parse source text
    into a tree attributed by that grammar.  The two extraction hooks have useful
    defaults: ``result`` returns the full root-attribute dict and ``errors`` reads a
    root ``errs`` attribute when the grammar declares one.
    """

    #: Registry name; must be unique per process.
    name: str = ""

    @abc.abstractmethod
    def grammar(self) -> AttributeGrammar:
        """The language's attribute grammar.

        The registry calls this once per registration and caches the instance, so
        implementations may build eagerly; everything downstream (plans, engines,
        bundles) sees one grammar object.
        """

    @abc.abstractmethod
    def parse(self, source: str) -> ParseTreeNode:
        """Scan and parse ``source`` into a tree attributed by :meth:`grammar`."""

    def plan(self) -> Optional[OrderedEvaluationPlan]:
        """Optional hook: a precomputed ordered-evaluation plan for the combined
        evaluator.  Return ``None`` (the default) to have the registry build one
        from :meth:`grammar`; override to share a plan another cache already built.
        """
        return None

    def frontend(self) -> Optional[Tuple[Any, Any]]:
        """Optional hook: the language's ``(lexer, parser)`` pair.

        Incremental documents (:class:`repro.incremental.Document`) use the pair
        for damage-bounded re-lexing and subtree reparsing; languages that return
        ``None`` (the default) still get region-level artifact reuse, but pay a
        full ``parse()`` per recompile.  The lexer must be a
        :class:`repro.parsing.lexer.Lexer` and the parser a
        :class:`repro.parsing.parser.Parser` over :meth:`grammar`.
        """
        return None

    def result(self, report: CompilationReport) -> Any:
        """Extract the language's payload from a finished compilation."""
        return dict(report.root_attributes)

    def errors(self, report: CompilationReport) -> Tuple[str, ...]:
        """Extract the language's error list (default: a root ``errs`` attribute)."""
        errs = report.root_attributes.get("errs")
        return tuple(errs) if errs else ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class GrammarLanguage(Language):
    """Define a language from a grammar and a tokenizer — enough for most workloads.

    :param name: registry name.
    :param grammar: the :class:`AttributeGrammar`, or a zero-argument factory for it
        (built lazily, once).
    :param tokenize: ``source -> List[Token]`` scanner; the LALR parse table is
        generated from the grammar and cached on first parse.
    :param result_attribute: root attribute returned as the compile result (rope
        values are flattened, librarian-assembled text is used when present); when
        ``None`` the result is the full root-attribute dict.
    :param error_attribute: root attribute holding the error list, or ``None`` for
        a language without one.
    :param lexer: optional :class:`repro.parsing.lexer.Lexer` behind ``tokenize``;
        providing it enables the incremental document front end (damage-bounded
        re-lexing and subtree reparsing) for this language.  Constraint: every
        token rule's matches must be determined by the lexeme text alone — no
        lookahead past the lexeme, and no delimited rule (block comment, string)
        whose *opening* delimiter can appear as ordinary adjacent tokens in a
        parseable program (an edit that later closes such a delimiter would
        retroactively change how the untouched prefix lexes).  Both built-in
        languages satisfy this; when in doubt, omit ``lexer`` — documents then
        re-lex in full but still reuse region evaluations.
    """

    def __init__(
        self,
        name: str,
        grammar: Union[AttributeGrammar, Callable[[], AttributeGrammar]],
        *,
        tokenize: Callable[[str], Any],
        result_attribute: Optional[str] = None,
        error_attribute: Optional[str] = "errs",
        lexer: Optional[Any] = None,
    ):
        if not name:
            raise LanguageError("a language needs a non-empty name")
        self.name = name
        self._grammar_source = grammar
        self._tokenize = tokenize
        self._lexer = lexer
        self.result_attribute = result_attribute
        self.error_attribute = error_attribute
        self._grammar: Optional[AttributeGrammar] = None
        self._parser: Optional[Parser] = None
        self._lock = threading.Lock()

    def grammar(self) -> AttributeGrammar:
        with self._lock:
            if self._grammar is None:
                source = self._grammar_source
                self._grammar = source() if callable(source) else source
            return self._grammar

    def parse(self, source: str) -> ParseTreeNode:
        return self._shared_parser().parse(self._tokenize(source))

    def frontend(self) -> Optional[Tuple[Any, Any]]:
        if self._lexer is None:
            return None
        return self._lexer, self._shared_parser()

    def _shared_parser(self) -> Parser:
        grammar = self.grammar()
        with self._lock:
            if self._parser is None:
                self._parser = Parser(grammar)
            return self._parser

    def result(self, report: CompilationReport) -> Any:
        if self.result_attribute is None:
            return dict(report.root_attributes)
        return attribute_value(report, self.result_attribute)

    def errors(self, report: CompilationReport) -> Tuple[str, ...]:
        if self.error_attribute is None:
            return ()
        errs = report.root_attributes.get(self.error_attribute)
        return tuple(errs) if errs else ()


# ------------------------------------------------------------------------ registry


class _LanguageRuntime:
    """Per-registration cache: grammar, ordered plan, shared compiler engines.

    One runtime per ``register_language`` call.  ``generation`` is baked into the
    bundle key so that re-registering a name (``replace=True``) never collides with
    payloads an older registration already shipped to pooled workers.
    """

    def __init__(self, language: Language, generation: int):
        self.language = language
        self.generation = generation
        self._lock = threading.Lock()
        self._grammar: Optional[AttributeGrammar] = None
        self._plans: Dict[str, Optional[OrderedEvaluationPlan]] = {}
        self._engines: Dict[str, ParallelCompiler] = {}

    def bundle_key(self, evaluator: str) -> str:
        return f"language:{self.language.name}#{self.generation}/{evaluator}"

    def grammar(self) -> AttributeGrammar:
        """The language's grammar, built once per registration.

        Caching here (not just inside the language) guarantees one grammar object
        per registration even for languages whose ``grammar()`` builds afresh —
        which keeps the name-keyed :class:`SharedBundle` contract honest: one key,
        one payload, forever.
        """
        with self._lock:
            if self._grammar is None:
                self._grammar = self.language.grammar()
            return self._grammar

    def plan(self, evaluator: str) -> Optional[OrderedEvaluationPlan]:
        with self._lock:
            if evaluator not in self._plans:
                plan = None
                if evaluator == "combined":
                    plan = self.language.plan()
                    if plan is None:
                        plan = build_evaluation_plan(self._grammar_locked())
                self._plans[evaluator] = plan
            return self._plans[evaluator]

    def _grammar_locked(self) -> AttributeGrammar:
        """Grammar access for callers already holding ``self._lock``."""
        if self._grammar is None:
            self._grammar = self.language.grammar()
        return self._grammar

    def engine(
        self, evaluator: str, configuration: Optional[CompilerConfiguration]
    ) -> ParallelCompiler:
        """A :class:`ParallelCompiler` with the language's name-keyed bundle.

        Default-configured engines are cached per evaluator kind; a custom
        configuration gets a fresh engine (still sharing the cached grammar, plan and
        bundle key, so pooled workers never see a duplicate grammar shipment).
        """
        if configuration is not None:
            return ParallelCompiler(
                self.grammar(),
                configuration,
                plan=self.plan(configuration.evaluator),
                bundle_key=self.bundle_key(configuration.evaluator),
            )
        with self._lock:
            engine = self._engines.get(evaluator)
        if engine is None:
            engine = ParallelCompiler(
                self.grammar(),
                CompilerConfiguration(evaluator=evaluator),
                plan=self.plan(evaluator),
                bundle_key=self.bundle_key(evaluator),
            )
            with self._lock:
                engine = self._engines.setdefault(evaluator, engine)
        return engine


_REGISTRY: Dict[str, _LanguageRuntime] = {}
_REGISTRY_LOCK = threading.Lock()
_GENERATION = 0


def register_language(language: Language, *, replace: bool = False) -> Language:
    """Add ``language`` to the process-wide registry under ``language.name``.

    Raises :class:`DuplicateLanguageError` if the name is taken, unless
    ``replace=True`` (which supersedes the old registration; compilers already built
    from it keep working but new lookups see the replacement).  Returns the language
    for chaining.
    """
    global _GENERATION
    if not isinstance(language, Language):
        raise LanguageError(
            f"register_language expects a Language instance, got {language!r}"
        )
    if not language.name:
        raise LanguageError("a language needs a non-empty name")
    with _REGISTRY_LOCK:
        if language.name in _REGISTRY and not replace:
            raise DuplicateLanguageError(
                f"a language named {language.name!r} is already registered; "
                "pass replace=True to supersede it"
            )
        _GENERATION += 1
        _REGISTRY[language.name] = _LanguageRuntime(language, _GENERATION)
    return language


def unregister_language(name: str) -> None:
    """Remove a registered language (no-op if absent).  Intended for tests."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def get_language(language: Union[str, Language]) -> Language:
    """Resolve a registry name to its :class:`Language` (identity on instances)."""
    if isinstance(language, Language):
        return language
    runtime = _runtime(language)
    return runtime.language


def available_languages() -> Tuple[str, ...]:
    """The registered language names, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def _runtime(language: Union[str, Language]) -> _LanguageRuntime:
    """The registry runtime for a name or a registered Language instance."""
    with _REGISTRY_LOCK:
        if isinstance(language, Language):
            for runtime in _REGISTRY.values():
                if runtime.language is language:
                    return runtime
            raise UnknownLanguageError(
                f"language {language.name!r} is not registered; call register_language"
            )
        runtime = _REGISTRY.get(language)
    if runtime is None:
        raise UnknownLanguageError(
            f"no language named {language!r} is registered; "
            f"available: {', '.join(available_languages()) or '(none)'}"
        )
    return runtime


def engine_for(
    language: Union[str, Language],
    evaluator: str = "combined",
    configuration: Optional[CompilerConfiguration] = None,
) -> ParallelCompiler:
    """The shared, name-key-bundled :class:`ParallelCompiler` for a language.

    This is the engine behind :class:`repro.api.Compiler` and the service layer's
    ``(language, source)`` jobs; grammar analyses run once per process and the
    grammar+plan bundle ships to each pooled process worker once ever.
    """
    return _runtime(language).engine(evaluator, configuration)
