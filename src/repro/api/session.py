"""The :class:`Session` context manager: substrate lifecycle behind one front door.

A session owns (or borrows) one persistent execution substrate and hands out
compilers and services bound to it, replacing the manual
``create_substrate``/``start``/``try``/``finally``/``shutdown`` dance::

    from repro import Session

    with Session(backend="processes") as s:
        pascal = s.compiler("pascal", machines=4)
        expr = s.compiler("exprlang")
        print(pascal.compile(pascal_source).value[:120])
        print(expr.compile("let x = 3 in 1 + 2 * x ni").value)

``close()``/``shutdown()`` are idempotent and safe in any combination with the
``with`` block — exiting the block after an explicit ``shutdown()`` (or calling
``shutdown()`` twice) is a no-op, and a borrowed substrate is never shut down.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Union

from repro.api.compiler import Compiler, CompileResult
from repro.api.language import Language
from repro.backends import create_substrate
from repro.backends.base import BackendError, Substrate
from repro.distributed.compiler import CompilerConfiguration


class Session:
    """One persistent worker pool, many languages, uniform lifecycle.

    :param backend: substrate name — ``"simulated"``, ``"threads"`` (default),
        ``"processes"`` or ``"sockets"`` (a loopback compile cluster of separate
        worker host processes) — for a substrate the session creates, starts and
        owns.
    :param substrate: an already-created :class:`Substrate` to borrow instead; the
        session starts it if needed but never shuts it down.
    :param workers: initial pool size for an owned substrate (pools grow on demand).
    :param receive_timeout: blocking-receive bound (seconds) for an owned substrate.
    :param machines: default machine count for compilers handed out by this session.
    :param store: optional persistent artifact store for the session's shared
        region-artifact cache — a path or a :class:`repro.store.ArtifactStore`.
        Documents opened on the session then warm-start from artifacts recorded
        by earlier processes (and persist their own for later ones).
    """

    def __init__(
        self,
        backend: str = "threads",
        *,
        substrate: Optional[Substrate] = None,
        workers: int = 0,
        receive_timeout: Optional[float] = None,
        machines: int = 2,
        store: Optional[Any] = None,
    ):
        if substrate is not None:
            self._substrate: Optional[Substrate] = substrate
            self._owns_substrate = False
            self.backend = substrate.name
        else:
            self._substrate = None
            self._owns_substrate = True
            self.backend = backend
        self._workers = workers
        self._receive_timeout = receive_timeout
        self.machines = machines
        self._store = store
        self._lock = threading.Lock()
        self._closed = False
        self._artifact_cache: Optional[Any] = None

    # ----------------------------------------------------------------- lifecycle

    def start(self) -> "Session":
        """Bring the substrate up (idempotent; returns ``self`` for chaining)."""
        with self._lock:
            if self._closed:
                raise BackendError("session has been closed")
            if self._substrate is None:
                self._substrate = create_substrate(
                    self.backend,
                    workers=self._workers,
                    receive_timeout=self._receive_timeout,
                )
        self._substrate.start()
        return self

    def close(self) -> None:
        """Tear the session down (idempotent; borrowed substrates are left running)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            substrate = self._substrate
        if substrate is not None and self._owns_substrate:
            substrate.shutdown()

    #: ``shutdown()`` is an alias of :meth:`close`, matching the substrate vocabulary.
    shutdown = close

    def __enter__(self) -> "Session":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def substrate(self) -> Substrate:
        """The session's started substrate (starting the session on first use)."""
        self.start()
        assert self._substrate is not None
        return self._substrate

    # ------------------------------------------------------------------ factories

    def compiler(
        self,
        language: Union[str, Language],
        *,
        machines: Optional[int] = None,
        evaluator: Optional[str] = None,
        configuration: Optional[CompilerConfiguration] = None,
    ) -> Compiler:
        """A :class:`Compiler` for ``language`` bound to this session's pool."""
        return Compiler(
            language,
            machines=machines or self.machines,
            evaluator=evaluator,
            substrate=self.substrate,
            configuration=configuration,
        )

    def compile(
        self,
        language: Union[str, Language],
        source: str,
        *,
        machines: Optional[int] = None,
        root_inherited: Optional[Dict[str, Any]] = None,
    ) -> CompileResult:
        """One-call convenience: ``session.compile("pascal", source)``."""
        return self.compiler(language, machines=machines).compile(
            source, root_inherited=root_inherited
        )

    def open(
        self,
        language: Union[str, Language],
        source: str,
        *,
        machines: Optional[int] = None,
        evaluator: Optional[str] = None,
        configuration: Optional[CompilerConfiguration] = None,
        root_inherited: Optional[Dict[str, Any]] = None,
        store: Optional[Any] = None,
    ) -> "Any":
        """Open an editable :class:`~repro.incremental.Document` on this session's pool.

        Documents opened on one session share its artifact cache: regions with
        identical content (and engine) are replayed from cache across documents and
        across successive builds of the same document::

            with Session(backend="processes") as s:
                doc = s.open("pascal", source, machines=8)
                doc.recompile()                     # cold build, artifacts recorded
                doc.edit(120, 125, "x + 1")
                print(doc.recompile().incremental.summary())

        ``store`` (a path or :class:`repro.store.ArtifactStore`) overrides the
        session's store for this document: its cache reads through to (and
        persists into) that store, so a brand-new process recompiles an edited
        document at warm speed — the on-disk artifacts stand in for everything
        the process restart forgot.  Without it the document shares the
        session-wide cache (store-backed iff the session was given a ``store``).
        """
        from repro.incremental.document import Document

        if store is not None:
            # A dedicated store-backed cache: sharing with other documents then
            # happens through the store tier, which is the point of mounting one.
            from repro.incremental.cache import ArtifactCache

            cache = ArtifactCache(store=store)
        else:
            cache = self.artifact_cache
        return Document(
            language,
            source,
            machines=machines or self.machines,
            evaluator=evaluator,
            configuration=configuration,
            substrate=self.substrate,
            cache=cache,
            root_inherited=root_inherited,
        )

    @property
    def artifact_cache(self) -> "Any":
        """The session-wide region-artifact cache shared by its documents.

        Mounted on the session's persistent store when one was configured
        (``Session(store=...)``), in-memory-only otherwise.
        """
        with self._lock:
            if self._artifact_cache is None:
                from repro.incremental.cache import ArtifactCache

                self._artifact_cache = ArtifactCache(store=self._store)
            return self._artifact_cache

    def service(self, *, max_in_flight: int = 4) -> "Any":
        """A :class:`~repro.service.CompilationService` borrowing this session's pool.

        The service keeps up to ``max_in_flight`` compilations running concurrently;
        shutting the service down leaves the session's substrate running.
        """
        from repro.service import CompilationService

        return CompilationService(self.substrate, max_in_flight=max_in_flight)

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("started" if self._substrate else "new")
        return f"Session(backend={self.backend!r}, {state})"
