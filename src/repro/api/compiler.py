"""The unified :class:`Compiler` facade: one ``compile(source)`` for every language.

Where the historical entry points hard-wired one workload each
(``PascalCompiler.compile_parallel``, ``evaluate_expression_parallel``), the facade
is parameterised by a registered language and a substrate choice, and always returns
the same :class:`CompileResult` shape::

    from repro import Compiler

    result = Compiler("exprlang").compile("let x = 3 in 1 + 2 * x ni")
    assert result.value == 7

    result = Compiler("pascal", backend="threads", machines=4).compile(source)
    print(result.value[:200])          # generated code text
    print(result.report.summary())     # the full CompilationReport underneath
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.language import Language, engine_for, get_language
from repro.backends.base import Substrate
from repro.distributed.compiler import (
    CompilationReport,
    CompilerConfiguration,
    ParallelCompiler,
)
from repro.tree.node import ParseTreeNode


@dataclass
class CompileResult:
    """The uniform outcome of one front-door compilation, on any substrate.

    ``value`` is whatever the language's result hook extracts — generated code text
    for ``pascal``, an integer for ``exprlang`` — and ``report`` is the full
    :class:`CompilationReport` (timings, decomposition, message statistics) for
    callers that want the paper's measurements.  ``wall_parse_seconds`` and
    ``wall_compile_seconds`` decompose the real wall-clock cost by phase on every
    substrate, simulated included.
    """

    language: str
    value: Any
    errors: Tuple[str, ...]
    report: CompilationReport
    wall_parse_seconds: float
    wall_compile_seconds: float
    #: Reuse accounting when this result came from an incremental recompilation
    #: (:class:`repro.incremental.Document`): which regions were replayed from the
    #: artifact cache vs evaluated, validation rounds and the front-end mode.
    #: ``None`` for plain one-shot compilations.
    incremental: Optional["Any"] = None

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def code(self) -> str:
        """The result as text (identical to ``value`` for code-producing languages)."""
        return self.value if isinstance(self.value, str) else str(self.value)

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock cost of this call: parse plus compile."""
        return self.wall_parse_seconds + self.wall_compile_seconds

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} error(s)"
        return (
            f"{self.language}: {status} on {self.report.machines} machine(s) "
            f"[{self.report.backend}], wall {self.wall_seconds * 1000:.1f}ms "
            f"(parse {self.wall_parse_seconds * 1000:.1f}ms, "
            f"compile {self.wall_compile_seconds * 1000:.1f}ms)"
        )


class Compiler:
    """Compile any registered language on any substrate through one front door.

    :param language: a registered language name (or a registered
        :class:`~repro.api.language.Language` instance).
    :param machines: default machine count per compilation.
    :param evaluator: ``"combined"`` (default) or ``"dynamic"``.
    :param backend: one-shot substrate name (``"simulated"`` when neither ``backend``
        nor ``substrate`` is given).
    :param substrate: a started persistent :class:`Substrate` to borrow — usually
        provided by :class:`repro.api.Session` rather than by hand.
    :param configuration: full :class:`CompilerConfiguration` override for callers
        tuning librarian/priority/cost-model knobs; its ``evaluator`` wins over the
        ``evaluator`` argument.
    """

    def __init__(
        self,
        language: Union[str, Language],
        *,
        machines: int = 2,
        evaluator: Optional[str] = None,
        backend: Optional[str] = None,
        substrate: Optional[Substrate] = None,
        configuration: Optional[CompilerConfiguration] = None,
    ):
        if machines < 1:
            raise ValueError("machines must be at least 1")
        if configuration is not None and evaluator is not None:
            if configuration.evaluator != evaluator:
                raise ValueError(
                    f"evaluator={evaluator!r} conflicts with "
                    f"configuration.evaluator={configuration.evaluator!r}"
                )
        self.language = get_language(language)
        self.machines = machines
        self.backend = backend
        self.substrate = substrate
        self._engine = engine_for(
            self.language, evaluator or "combined", configuration
        )

    @property
    def engine(self) -> ParallelCompiler:
        """The underlying :class:`ParallelCompiler` (shared across facades)."""
        return self._engine

    def parse(self, source: str) -> ParseTreeNode:
        """Parse ``source`` with the language's front end (no evaluation)."""
        return self.language.parse(source)

    def compile(
        self,
        source: str,
        *,
        machines: Optional[int] = None,
        root_inherited: Optional[Dict[str, Any]] = None,
    ) -> CompileResult:
        """Parse and compile ``source``; returns the uniform :class:`CompileResult`."""
        started = time.perf_counter()
        tree = self.language.parse(source)
        wall_parse = time.perf_counter() - started
        return self.compile_tree(
            tree,
            machines=machines,
            root_inherited=root_inherited,
            wall_parse_seconds=wall_parse,
        )

    def compile_tree(
        self,
        tree: ParseTreeNode,
        *,
        machines: Optional[int] = None,
        root_inherited: Optional[Dict[str, Any]] = None,
        wall_parse_seconds: float = 0.0,
    ) -> CompileResult:
        """Compile an already-parsed tree (for machine-count sweeps over one program)."""
        report = self._engine.compile_tree(
            tree,
            machines or self.machines,
            root_inherited=root_inherited,
            backend=self.backend,
            substrate=self.substrate,
        )
        report.wall_parse_seconds = wall_parse_seconds
        return CompileResult(
            language=self.language.name,
            value=self.language.result(report),
            errors=self.language.errors(report),
            report=report,
            wall_parse_seconds=wall_parse_seconds,
            wall_compile_seconds=report.wall_time_seconds,
        )

    def compile_many(self, sources: Iterable[str]) -> List[CompileResult]:
        """Compile a batch of sources sequentially on this compiler's substrate.

        For concurrent streams, submit :class:`repro.service.CompilationJob`\\ s to a
        :class:`repro.service.CompilationService` (see :meth:`repro.api.Session.service`).
        """
        return [self.compile(source) for source in sources]

    def __repr__(self) -> str:
        where = (
            f"substrate={self.substrate.name!r}"
            if self.substrate is not None
            else f"backend={(self.backend or 'simulated')!r}"
        )
        return f"Compiler({self.language.name!r}, machines={self.machines}, {where})"
