"""The two built-in languages, registered when :mod:`repro.api` is imported.

* ``pascal`` — the paper's headline workload: the Pascal-subset compiler.  The
  compile result is the generated VAX-style assembly text (librarian-assembled when
  the librarian ran), errors come from the root ``errs`` attribute.  The language
  reuses the per-process caches the original entry points built — the lru-cached
  grammar, the shared LALR parser and the shared ordered-evaluation plan — so
  mixing old and new API in one process never duplicates the grammar analyses (and
  never double-ships a Pascal bundle to pooled workers).
* ``exprlang`` — the appendix expression language; the compile result is the
  integer value of the expression.  Built as a :class:`GrammarLanguage`, which
  caches its grammar and parse table once per registration.
"""

from __future__ import annotations

from typing import Any

from repro.api.language import GrammarLanguage, Language, attribute_value, register_language
from repro.distributed.compiler import CompilationReport
from repro.grammar.grammar import AttributeGrammar
from repro.tree.node import ParseTreeNode


class PascalLanguage(Language):
    """The Pascal-subset compiler as a registry language (result = generated code)."""

    name = "pascal"

    def grammar(self) -> AttributeGrammar:
        from repro.pascal.grammar import pascal_grammar

        return pascal_grammar()  # lru-cached: one instance per process

    def plan(self):
        from repro.pascal.compiler import _shared_plan

        return _shared_plan()  # the same cached plan the sequential compiler uses

    def parse(self, source: str) -> ParseTreeNode:
        from repro.pascal.compiler import _shared_parser
        from repro.pascal.lexer import tokenize_pascal

        return _shared_parser().parse(tokenize_pascal(source))

    def frontend(self):
        from repro.pascal.compiler import _shared_parser
        from repro.pascal.lexer import _LEXER

        return _LEXER, _shared_parser()

    def result(self, report: CompilationReport) -> Any:
        return attribute_value(report, "code")


class ExprLanguage(GrammarLanguage):
    """The appendix expression language (result = the expression's integer value)."""

    def __init__(self):
        from repro.exprlang.frontend import _LEXER, tokenize_expression
        from repro.exprlang.grammar import expression_grammar

        super().__init__(
            "exprlang",
            expression_grammar,
            tokenize=tokenize_expression,
            result_attribute="value",
            error_attribute=None,
            lexer=_LEXER,
        )


def register_builtin_languages() -> None:
    """Register ``pascal`` and ``exprlang`` (idempotent across re-imports)."""
    from repro.api.language import available_languages

    registered = available_languages()
    if "pascal" not in registered:
        register_language(PascalLanguage())
    if "exprlang" not in registered:
        register_language(ExprLanguage())
