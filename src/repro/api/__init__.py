"""``repro.api`` — the one front door over every workload and substrate.

The paper's system is workload-agnostic: any attributed tree can be partitioned and
evaluated in parallel.  This package makes the public API match:

* :class:`Language` / :class:`GrammarLanguage` + ``register_language`` /
  ``get_language`` / ``available_languages`` — a process-wide registry where new
  languages plug in without touching ``repro`` internals (``pascal`` and
  ``exprlang`` are registered at import);
* :class:`Compiler` — one ``compile(source)`` facade whose :class:`CompileResult`
  (value/code, errors, :class:`CompilationReport`, per-phase wall-clock) is uniform
  across the simulated, threads and processes substrates;
* :class:`Session` — a context manager owning substrate lifecycle, so
  ``with Session(backend="processes") as s: s.compiler("pascal").compile(src)``
  replaces the manual ``create_substrate``/``finally``-``shutdown`` dance.

Registration also names each language's grammar+plan bundle, so the pooled
processes substrate ships it to each worker once ever — not once per call site.
"""

from repro.api.builtin import ExprLanguage, PascalLanguage, register_builtin_languages
from repro.api.compiler import Compiler, CompileResult
from repro.api.language import (
    DuplicateLanguageError,
    GrammarLanguage,
    Language,
    LanguageError,
    UnknownLanguageError,
    attribute_value,
    available_languages,
    engine_for,
    get_language,
    register_language,
    unregister_language,
)
from repro.api.session import Session
from repro.incremental import ArtifactCache, Document, IncrementalReport

register_builtin_languages()

__all__ = [
    "ArtifactCache",
    "Compiler",
    "CompileResult",
    "Document",
    "DuplicateLanguageError",
    "ExprLanguage",
    "GrammarLanguage",
    "IncrementalReport",
    "Language",
    "LanguageError",
    "PascalLanguage",
    "Session",
    "UnknownLanguageError",
    "attribute_value",
    "available_languages",
    "engine_for",
    "get_language",
    "register_language",
    "unregister_language",
]
